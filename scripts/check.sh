#!/usr/bin/env bash
# Tier-1 gate: everything here must pass before a change lands.
# Usage: scripts/check.sh (from the repo root or anywhere inside it).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --all -- --check =="
cargo fmt --all -- --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test --workspace -q =="
cargo test --workspace -q

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."

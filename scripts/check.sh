#!/usr/bin/env bash
# Tier-1 gate: everything here must pass before a change lands.
# Usage: scripts/check.sh (from the repo root or anywhere inside it).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "All checks passed."

#!/usr/bin/env bash
# Chain smoke with a shared persistent completion cache: run the same
# `catdb run --beta 3` invocation twice against one --llm-cache file and
# assert that the warm run (a) produces byte-identical stdout, (b)
# records >0 cache hits, and (c) bills zero tokens. Prints one summary
# line consumed by scripts/bench_quick.sh; also used directly as a CI
# gate (any violated assertion exits nonzero).
set -euo pipefail
cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Deterministic toy CSV — no checked-in data needed.
{
  echo "age,income,segment,label"
  for i in $(seq 0 239); do
    echo "$((20 + i % 47)),$((1000 + (i * 37) % 900)).$((i % 10)),s$((i % 5)),$((i % 2))"
  done
} > "$TMP/smoke.csv"

run() {
  cargo run -q -p catdb-serve --bin catdb -- run \
    --csv "$TMP/smoke.csv" --target label --task binary \
    --beta 3 --seed 7 --llm-concurrency 4 --llm-cache "$TMP/cache.jsonl" \
    > "$1" 2> "$2"
}

run "$TMP/out1.txt" "$TMP/err1.txt"
run "$TMP/out2.txt" "$TMP/err2.txt"

if ! diff "$TMP/out1.txt" "$TMP/out2.txt" > /dev/null; then
  echo "chain_cache_smoke: warm run diverged from cold run" >&2
  diff "$TMP/out1.txt" "$TMP/out2.txt" >&2 || true
  exit 1
fi

hits="$(sed -n 's/.*\[llm cache: \([0-9][0-9]*\) hit(s).*/\1/p' "$TMP/err2.txt")"
warm_tokens="$(sed -n 's/^tokens: \([0-9][0-9]*\) |.*/\1/p' "$TMP/err2.txt")"

if [ -z "${hits:-}" ] || [ "$hits" -eq 0 ]; then
  echo "chain_cache_smoke: warm run recorded no cache hits" >&2
  cat "$TMP/err2.txt" >&2
  exit 1
fi
if [ -z "${warm_tokens:-}" ] || [ "$warm_tokens" -ne 0 ]; then
  echo "chain_cache_smoke: warm run billed ${warm_tokens:-?} token(s), expected 0" >&2
  cat "$TMP/err2.txt" >&2
  exit 1
fi

echo "chain_cache_smoke hits=$hits warm_tokens=$warm_tokens identical=1"

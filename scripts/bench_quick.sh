#!/usr/bin/env bash
# Quick perf snapshot: run the criterion micro benches with a reduced
# per-bench budget and record the profiling / training / chain-scheduler /
# CSV-ingest hot-path numbers in results/BENCH_perf.json, alongside the
# pre-runtime baselines measured on the same container class. The CSV
# entry compares against the frozen seed reader benched live in the same
# run, so its speedup is an apples-to-apples same-machine figure. Also runs the chain
# cache smoke (cold + warm CLI run sharing one --llm-cache file) and
# folds its hit/zero-billing figures into the snapshot. Intended as a
# non-blocking CI step — failures here report a regression but never
# break the build.
#
# Usage: scripts/bench_quick.sh [budget_ms]   (default 120)
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGET_MS="${1:-120}"
OUT="results/BENCH_perf.json"
mkdir -p results
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== cargo bench -p catdb-bench --bench micro (budget ${BUDGET_MS} ms/bench) =="
CATDB_BENCH_BUDGET_MS="$BUDGET_MS" cargo bench -p catdb-bench --bench micro | tee "$RAW"

echo "== chain cache smoke (cold + warm run sharing one cache file) =="
SMOKE_LINE="$(scripts/chain_cache_smoke.sh | tail -1)"
echo "$SMOKE_LINE"
SMOKE_HITS="${SMOKE_LINE#*hits=}"; SMOKE_HITS="${SMOKE_HITS%% *}"
SMOKE_WARM_TOKENS="${SMOKE_LINE#*warm_tokens=}"; SMOKE_WARM_TOKENS="${SMOKE_WARM_TOKENS%% *}"

echo "== serve roundtrip (in-process transport, cold vs warm cache) =="
SERVE_LINE="$(cargo run -q -p catdb-serve --bin serve_roundtrip | tail -1)"
echo "$SERVE_LINE"
SERVE_CLIENTS="${SERVE_LINE#*clients=}"; SERVE_CLIENTS="${SERVE_CLIENTS%% *}"
SERVE_COLD_MS="${SERVE_LINE#*cold_batch_ms=}"; SERVE_COLD_MS="${SERVE_COLD_MS%% *}"
SERVE_WARM_MS="${SERVE_LINE#*warm_batch_ms=}"; SERVE_WARM_MS="${SERVE_WARM_MS%% *}"
SERVE_WARM_RPS="${SERVE_LINE#*warm_rps=}"; SERVE_WARM_RPS="${SERVE_WARM_RPS%% *}"

echo "== out-of-core sketch profiling (10M rows via spill file) =="
SKETCH_LINE="$(cargo run -q --release -p catdb-bench --bin sketch_bench bench 10000000 | tail -1)"
echo "$SKETCH_LINE"
SKETCH_INGEST_MS="${SKETCH_LINE#*ingest_ms=}"; SKETCH_INGEST_MS="${SKETCH_INGEST_MS%% *}"
SKETCH_PROFILE_MS="${SKETCH_LINE#*profile_ms=}"; SKETCH_PROFILE_MS="${SKETCH_PROFILE_MS%% *}"
SKETCH_RPS="${SKETCH_LINE#*profile_rows_per_sec=}"; SKETCH_RPS="${SKETCH_RPS%% *}"
SKETCH_BYTES="${SKETCH_LINE#*csv_bytes=}"; SKETCH_BYTES="${SKETCH_BYTES%% *}"

echo "== DAG executor vs sequential (65-step pipeline, 8 threads) =="
DAG_LINE="$(CATDB_THREADS=8 cargo run -q --release -p catdb-bench --bin dag_bench | tail -1)"
echo "$DAG_LINE"
DAG_STEPS="${DAG_LINE#*steps=}"; DAG_STEPS="${DAG_STEPS%% *}"
DAG_SEQ_MS="${DAG_LINE#*seq_ms=}"; DAG_SEQ_MS="${DAG_SEQ_MS%% *}"
DAG_DAG_MS="${DAG_LINE#*dag_ms=}"; DAG_DAG_MS="${DAG_DAG_MS%% *}"
DAG_SPEEDUP="${DAG_LINE#*speedup=}"; DAG_SPEEDUP="${DAG_SPEEDUP%% *}"

# Pre-PR baselines (300 ms budget, same machine class): mean ms/iter before
# the shared runtime, profile memo, and incremental tree-split scan landed.
BASE_PROFILING_MS=240.818
BASE_FOREST_MS=29.803

awk -v out="$OUT" -v budget_ms="$BUDGET_MS" \
    -v base_prof="$BASE_PROFILING_MS" -v base_forest="$BASE_FOREST_MS" \
    -v smoke_hits="$SMOKE_HITS" -v smoke_warm_tokens="$SMOKE_WARM_TOKENS" \
    -v serve_clients="$SERVE_CLIENTS" -v serve_cold_ms="$SERVE_COLD_MS" \
    -v serve_warm_ms="$SERVE_WARM_MS" -v serve_warm_rps="$SERVE_WARM_RPS" \
    -v sketch_ingest_ms="$SKETCH_INGEST_MS" -v sketch_profile_ms="$SKETCH_PROFILE_MS" \
    -v sketch_rps="$SKETCH_RPS" -v sketch_bytes="$SKETCH_BYTES" \
    -v dag_steps="$DAG_STEPS" -v dag_seq_ms="$DAG_SEQ_MS" \
    -v dag_dag_ms="$DAG_DAG_MS" -v dag_speedup="$DAG_SPEEDUP" '
  # Convert a criterion duration token ("4.508ms", "127.3µs", "1.2s") to ms.
  function to_ms(s,  v) {
    v = s; gsub(/[^0-9.]/, "", v); v += 0
    if (index(s, "µs") > 0 || index(s, "us") > 0) return v / 1000
    if (index(s, "ns") > 0) return v / 1000000
    if (index(s, "ms") > 0) return v
    return v * 1000  # plain seconds
  }
  $1 == "gas-drift_2000rows" { prof_ms = to_ms($2) }
  $1 == "random_forest_20trees_1000x20" { forest_ms = to_ms($2) }
  $1 == "random_forest_binned_20trees_1000x20" { binned_ms = to_ms($2) }
  $1 == "knn_blocked_1000x20" { knn_ms = to_ms($2) }
  $1 == "chain_gen_beta4_seq" { chain_seq_ms = to_ms($2) }
  $1 == "chain_gen_beta4_conc4" { chain_conc_ms = to_ms($2) }
  $1 == "cache_cold_miss" { cache_cold_ms = to_ms($2) }
  $1 == "cache_warm_hit" { cache_warm_ms = to_ms($2) }
  $1 == "ingest_50k_mixed" { csv_ingest_ms = to_ms($2) }
  $1 == "seed_ingest_50k_mixed" { csv_seed_ms = to_ms($2) }
  $1 == "write_roundtrip_50k_mixed" { csv_rt_ms = to_ms($2) }
  END {
    if (prof_ms == 0 || forest_ms == 0 || binned_ms == 0 || knn_ms == 0 ||
        chain_seq_ms == 0 || chain_conc_ms == 0 ||
        cache_cold_ms == 0 || cache_warm_ms == 0 ||
        csv_ingest_ms == 0 || csv_seed_ms == 0 || csv_rt_ms == 0) {
      print "bench_quick: missing bench lines in output" > "/dev/stderr"
      exit 1
    }
    prof_rows_s = 2000 / (prof_ms / 1000)
    forest_rows_s = 1000 / (forest_ms / 1000)
    printf "{\n" > out
    printf "  \"budget_ms\": %d,\n", budget_ms >> out
    printf "  \"benches\": {\n" >> out
    printf "    \"profiling/gas-drift_2000rows\": {\n" >> out
    printf "      \"mean_ms\": %.3f,\n", prof_ms >> out
    printf "      \"rows_per_sec\": %.0f,\n", prof_rows_s >> out
    printf "      \"baseline_ms\": %.3f,\n", base_prof >> out
    printf "      \"speedup\": %.2f\n", base_prof / prof_ms >> out
    printf "    },\n" >> out
    printf "    \"models/random_forest_20trees_1000x20\": {\n" >> out
    printf "      \"mean_ms\": %.3f,\n", forest_ms >> out
    printf "      \"rows_per_sec\": %.0f,\n", forest_rows_s >> out
    printf "      \"baseline_ms\": %.3f,\n", base_forest >> out
    printf "      \"speedup\": %.2f\n", base_forest / forest_ms >> out
    printf "    },\n" >> out
    printf "    \"models/random_forest_binned\": {\n" >> out
    printf "      \"mean_ms\": %.3f,\n", binned_ms >> out
    printf "      \"rows_per_sec\": %.0f,\n", 1000 / (binned_ms / 1000) >> out
    printf "      \"exact_ms\": %.3f,\n", forest_ms >> out
    printf "      \"speedup_vs_exact\": %.2f\n", forest_ms / binned_ms >> out
    printf "    },\n" >> out
    printf "    \"models/knn_blocked\": {\n" >> out
    printf "      \"mean_ms\": %.3f,\n", knn_ms >> out
    printf "      \"queries_per_sec\": %.0f\n", 1000 / (knn_ms / 1000) >> out
    printf "    },\n" >> out
    printf "    \"chain/generate_beta4_3ms_latency\": {\n" >> out
    printf "      \"sequential_ms\": %.3f,\n", chain_seq_ms >> out
    printf "      \"concurrency4_ms\": %.3f,\n", chain_conc_ms >> out
    printf "      \"speedup\": %.2f\n", chain_seq_ms / chain_conc_ms >> out
    printf "    },\n" >> out
    printf "    \"cache/completion_lookup\": {\n" >> out
    printf "      \"cold_miss_ms\": %.4f,\n", cache_cold_ms >> out
    printf "      \"warm_hit_ms\": %.4f,\n", cache_warm_ms >> out
    printf "      \"speedup\": %.2f\n", cache_cold_ms / cache_warm_ms >> out
    printf "    },\n" >> out
    printf "    \"cache/chain_smoke_warm_run\": {\n" >> out
    printf "      \"cache_hits\": %d,\n", smoke_hits >> out
    printf "      \"billed_tokens\": %d,\n", smoke_warm_tokens >> out
    printf "      \"identical_output\": true\n" >> out
    printf "    },\n" >> out
    printf "    \"csv/ingest_50k_mixed\": {\n" >> out
    printf "      \"median_ms\": %.3f,\n", csv_ingest_ms >> out
    printf "      \"rows_per_sec\": %.0f,\n", 50000 / (csv_ingest_ms / 1000) >> out
    printf "      \"seed_reader_ms\": %.3f,\n", csv_seed_ms >> out
    printf "      \"speedup\": %.2f\n", csv_seed_ms / csv_ingest_ms >> out
    printf "    },\n" >> out
    printf "    \"csv/write_roundtrip_50k_mixed\": {\n" >> out
    printf "      \"median_ms\": %.3f\n", csv_rt_ms >> out
    printf "    },\n" >> out
    printf "    \"serve/roundtrip_in_proc\": {\n" >> out
    printf "      \"clients\": %d,\n", serve_clients >> out
    printf "      \"cold_batch_ms\": %.3f,\n", serve_cold_ms >> out
    printf "      \"warm_batch_ms\": %.3f,\n", serve_warm_ms >> out
    printf "      \"warm_req_per_sec\": %.1f,\n", serve_warm_rps >> out
    printf "      \"speedup\": %.2f\n", serve_cold_ms / serve_warm_ms >> out
    printf "    },\n" >> out
    printf "    \"profiler/sketch_10m_rows\": {\n" >> out
    printf "      \"csv_bytes\": %d,\n", sketch_bytes >> out
    printf "      \"ingest_ms\": %.1f,\n", sketch_ingest_ms >> out
    printf "      \"profile_ms\": %.1f,\n", sketch_profile_ms >> out
    printf "      \"profile_rows_per_sec\": %.0f\n", sketch_rps >> out
    printf "    },\n" >> out
    printf "    \"pipeline/dag_parallel\": {\n" >> out
    printf "      \"steps\": %d,\n", dag_steps >> out
    printf "      \"seq_ms\": %.1f,\n", dag_seq_ms >> out
    printf "      \"dag_ms\": %.1f,\n", dag_dag_ms >> out
    printf "      \"speedup\": %.2f\n", dag_speedup >> out
    printf "    }\n" >> out
    printf "  }\n" >> out
    printf "}\n" >> out
    printf "profiling : %.3f ms/iter (baseline %.3f, %.2fx)\n", prof_ms, base_prof, base_prof / prof_ms
    printf "forest    : %.3f ms/iter (baseline %.3f, %.2fx)\n", forest_ms, base_forest, base_forest / forest_ms
    printf "binned    : %.3f ms/iter (exact %.3f, %.2fx)\n", binned_ms, forest_ms, forest_ms / binned_ms
    printf "knn       : %.3f ms/iter fit+predict 1000x20 (blocked kernel)\n", knn_ms
    printf "chain     : %.3f ms seq vs %.3f ms conc4 (%.2fx)\n", chain_seq_ms, chain_conc_ms, chain_seq_ms / chain_conc_ms
    printf "cache     : %.4f ms miss vs %.4f ms hit (%.2fx); warm smoke %d hit(s), %d billed token(s)\n", cache_cold_ms, cache_warm_ms, cache_cold_ms / cache_warm_ms, smoke_hits, smoke_warm_tokens
    printf "csv       : %.3f ms ingest vs %.3f ms seed reader (%.2fx); %.3f ms write+read roundtrip\n", csv_ingest_ms, csv_seed_ms, csv_seed_ms / csv_ingest_ms, csv_rt_ms
    printf "serve     : %d clients, %.1f ms cold vs %.1f ms warm batch (%.1f req/sec warm)\n", serve_clients, serve_cold_ms, serve_warm_ms, serve_warm_rps
    printf "sketch    : 10M rows out-of-core, %.1f ms ingest + %.1f ms profile (%.0f rows/sec)\n", sketch_ingest_ms, sketch_profile_ms, sketch_rps
    printf "dag       : %d-step pipeline, %.1f ms seq vs %.1f ms dag at 8 threads (%.2fx)\n", dag_steps, dag_seq_ms, dag_dag_ms, dag_speedup
  }
' "$RAW"

echo "Wrote $OUT"

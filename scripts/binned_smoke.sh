#!/usr/bin/env bash
# Binned-training smoke: run the same seeded `catdb run` pipeline four
# times — --split-mode exact at CATDB_THREADS 1 and 8, then
# --split-mode binned at CATDB_THREADS 1 and 8 — and assert:
#   (a) the two exact runs are byte-identical on stdout (the histogram
#       refactor must not perturb the default path, at any thread count),
#   (b) the two binned runs are byte-identical to each other (binned
#       split search is deterministic across thread counts),
#   (c) summed tree_fit span time (from --trace-out) is strictly smaller
#       for binned than for exact — histogram training must actually be
#       faster on the same workload, not just equivalent.
# Used directly as a CI gate (any violated assertion exits nonzero).
set -euo pipefail
cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Deterministic toy CSV, sized so tree training is the dominant model
# cost: numeric features with thousands of distinct values, so exact
# split search has real threshold-scanning work to do.
{
  echo "f1,f2,f3,f4,f5,f6,f7,f8,label"
  for i in $(seq 0 2999); do
    a=$((i * 37 % 9973)); b=$((i * 53 % 9967)); c=$((i * 71 % 9949)); d=$((i * 89 % 9941))
    e=$((i * 101 % 9931)); f=$((i * 113 % 9929)); g=$((i * 127 % 9923)); h=$((i * 139 % 9907))
    echo "$a.$((i % 10)),$b.$((i % 7)),$c.$((i % 3)),$d.$((i % 9)),$e.$((i % 8)),$f.$((i % 6)),$g.$((i % 4)),$h.$((i % 5)),$(((a + b) % 2))"
  done
} > "$TMP/smoke.csv"

# The timing assertion needs optimized code; a debug binary distorts the
# exact-vs-binned ratio.
cargo build -q --release -p catdb-serve --bin catdb

run() { # $1 split mode, $2 threads, $3 stdout, $4 stderr, $5 trace file
  CATDB_THREADS="$2" ./target/release/catdb run \
    --csv "$TMP/smoke.csv" --target label --task binary \
    --seed 7 --split-mode "$1" --trace-out "$5" > "$3" 2> "$4"
}

# Sum the closed tree_fit spans in a --trace-out snapshot, in micros.
tree_fit_micros() {
  python3 - "$1" <<'PY'
import json, sys
trace = json.load(open(sys.argv[1]))
total = sum(
    s["end_micros"] - s["start_micros"]
    for s in trace["spans"]
    if s["name"] == "tree_fit" and s["end_micros"] is not None
)
print(total)
PY
}

run exact 1 "$TMP/exact-1.out" "$TMP/exact-1.err" "$TMP/exact-1.trace"
run exact 8 "$TMP/exact-8.out" "$TMP/exact-8.err" "$TMP/exact-8.trace"
run binned 1 "$TMP/binned-1.out" "$TMP/binned-1.err" "$TMP/binned-1.trace"
run binned 8 "$TMP/binned-8.out" "$TMP/binned-8.err" "$TMP/binned-8.trace"

if ! diff "$TMP/exact-1.out" "$TMP/exact-8.out" > /dev/null; then
  echo "binned_smoke: exact runs diverged between 1 and 8 threads" >&2
  diff "$TMP/exact-1.out" "$TMP/exact-8.out" >&2 || true
  exit 1
fi
if ! diff "$TMP/binned-1.out" "$TMP/binned-8.out" > /dev/null; then
  echo "binned_smoke: binned runs diverged between 1 and 8 threads" >&2
  diff "$TMP/binned-1.out" "$TMP/binned-8.out" >&2 || true
  exit 1
fi

exact_us="$(tree_fit_micros "$TMP/exact-1.trace")"
binned_us="$(tree_fit_micros "$TMP/binned-1.trace")"
if [ -z "$exact_us" ] || [ "$exact_us" -eq 0 ]; then
  echo "binned_smoke: exact run recorded no closed tree_fit spans" >&2
  exit 1
fi
if [ -z "$binned_us" ] || [ "$binned_us" -eq 0 ]; then
  echo "binned_smoke: binned run recorded no closed tree_fit spans" >&2
  exit 1
fi
if [ "$binned_us" -ge "$exact_us" ]; then
  echo "binned_smoke: binned tree_fit ${binned_us}us not below exact ${exact_us}us" >&2
  exit 1
fi

echo "binned_smoke: ok (tree_fit exact=${exact_us}us binned=${binned_us}us, both modes thread-invariant)"

#!/usr/bin/env bash
# Routed-run smoke: for each of two --route configs, run the same seeded
# `catdb run` twice against a per-config --llm-cache file — the cold run
# at CATDB_THREADS=1, the warm run at CATDB_THREADS=8 — and assert:
#   (a) stdout is byte-identical within a config (routing must not leak
#       scheduling order or thread count into the output),
#   (b) the warm run bills zero upstream LLM calls (cache keys include
#       the routed model, so every repeat is a hit),
#   (c) the cheap-refine routing's cold run bills strictly less than the
#       all-gpt-4o routing's cold run.
# Used directly as a CI gate (any violated assertion exits nonzero).
set -euo pipefail
cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Deterministic toy CSV — no checked-in data needed.
{
  echo "age,income,segment,label"
  for i in $(seq 0 239); do
    echo "$((20 + i % 47)),$((1000 + (i * 37) % 900)).$((i % 10)),s$((i % 5)),$((i % 2))"
  done
} > "$TMP/smoke.csv"

STRONG_ROUTE="refine=gpt-4o,generate=gpt-4o,select=gpt-4o,fix=gpt-4o"
CHEAP_ROUTE="refine=llama,generate=gpt-4o,select=mini,fix=mini"

run() { # $1 route spec, $2 cache file, $3 stdout, $4 stderr, $5 threads
  CATDB_THREADS="$5" cargo run -q -p catdb-serve --bin catdb -- run \
    --csv "$TMP/smoke.csv" --target label --task binary \
    --beta 2 --seed 7 --llm-concurrency 4 \
    --route "$1" --llm-cache "$2" > "$3" 2> "$4"
}

billed_usd() { sed -n 's/^billed: \([0-9.][0-9.]*\) USD.*/\1/p' "$1"; }
billed_calls() { sed -n 's/^billed: .* USD | \([0-9][0-9]*\) billed call(s).*/\1/p' "$1"; }

for cfg in strong cheap; do
  case "$cfg" in
    strong) route="$STRONG_ROUTE" ;;
    cheap) route="$CHEAP_ROUTE" ;;
  esac
  run "$route" "$TMP/cache-$cfg.jsonl" "$TMP/$cfg-1.out" "$TMP/$cfg-1.err" 1
  run "$route" "$TMP/cache-$cfg.jsonl" "$TMP/$cfg-2.out" "$TMP/$cfg-2.err" 8

  if ! diff "$TMP/$cfg-1.out" "$TMP/$cfg-2.out" > /dev/null; then
    echo "route_smoke: $cfg warm run diverged from cold run" >&2
    diff "$TMP/$cfg-1.out" "$TMP/$cfg-2.out" >&2 || true
    exit 1
  fi

  warm_calls="$(billed_calls "$TMP/$cfg-2.err")"
  if [ -z "$warm_calls" ]; then
    echo "route_smoke: $cfg warm run printed no billed-cost line" >&2
    cat "$TMP/$cfg-2.err" >&2
    exit 1
  fi
  if [ "$warm_calls" -ne 0 ]; then
    echo "route_smoke: $cfg warm run billed $warm_calls upstream call(s), expected 0" >&2
    exit 1
  fi
done

strong_usd="$(billed_usd "$TMP/strong-1.err")"
cheap_usd="$(billed_usd "$TMP/cheap-1.err")"
if [ -z "$strong_usd" ] || [ -z "$cheap_usd" ]; then
  echo "route_smoke: missing billed-cost line (strong='$strong_usd' cheap='$cheap_usd')" >&2
  exit 1
fi
if ! awk -v cheap="$cheap_usd" -v strong="$strong_usd" 'BEGIN { exit !(cheap + 0 < strong + 0) }'; then
  echo "route_smoke: cheap routing billed $cheap_usd USD, not below strong $strong_usd USD" >&2
  exit 1
fi

echo "route_smoke: ok (strong=$strong_usd USD, cheap=$cheap_usd USD, warm runs identical and fully cached)"

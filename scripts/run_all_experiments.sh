#!/usr/bin/env bash
# Regenerate every table and figure of the paper's evaluation.
# Usage: scripts/run_all_experiments.sh [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."

EXTRA=${1:-}
BINS=(
  fig9_profiling
  fig10_metadata
  tab2_errors
  tab4_refinement
  tab5_cleaning
  tab6_runtime
  fig11_iterations
  fig12_cost
  tab7_single
  fig13_tokens
  tab8_e2e
  fig14_robustness
)

cargo build --release -p catdb-bench
mkdir -p results
for bin in "${BINS[@]}"; do
  echo "==> $bin"
  ./target/release/"$bin" $EXTRA | tee "results/$bin.txt"
done
echo "All experiment outputs are under results/"

#!/usr/bin/env bash
# Out-of-core profiling smoke: generate a synthetic CSV at least 4× a
# hard `ulimit -v` address-space cap, then assert:
#   (a) `catdb profile --profile-mode sketch` succeeds under the cap at
#       CATDB_THREADS 1 and 8 — the chunked spill-file path keeps peak
#       memory O(chunk), far below the file size,
#   (b) the two sketch runs are byte-identical on stdout (after
#       dropping the wall-clock "profiled in" line) — chunk-ordered
#       sketch merging is deterministic across thread counts,
#   (c) exact mode under the same cap fails (non-zero exit) — it
#       materializes the whole table, which cannot fit, proving the
#       sketch path is doing real out-of-core work rather than hiding
#       headroom.
# Used directly as a CI gate (any violated assertion exits nonzero).
set -uo pipefail
cd "$(dirname "$0")/.."

# 128 MiB of address space; the CSV below is ~534 MB (≥4× the cap).
CAP_KB=131072
ROWS=20000000

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cargo build -q --release -p catdb-serve --bin catdb
cargo build -q --release -p catdb-bench --bin sketch_bench
./target/release/sketch_bench gen "$TMP/big.csv" "$ROWS"

CSV_BYTES=$(stat -c %s "$TMP/big.csv" 2>/dev/null || stat -f %z "$TMP/big.csv")
MIN_BYTES=$((CAP_KB * 1024 * 4))
if [ "$CSV_BYTES" -lt "$MIN_BYTES" ]; then
  echo "outofcore_smoke: CSV is ${CSV_BYTES} bytes, below 4x the ${CAP_KB} KiB cap" >&2
  exit 1
fi

# MALLOC_ARENA_MAX=1 keeps glibc from reserving per-thread arenas that
# would count against the *virtual* cap without being real usage.
capped_profile() { # $1 threads, $2 mode, $3 stdout file
  (
    ulimit -v "$CAP_KB"
    MALLOC_ARENA_MAX=1 CATDB_THREADS="$1" ./target/release/catdb profile \
      --csv "$TMP/big.csv" --profile-mode "$2" > "$3" 2> "$3.err"
  )
}

if ! capped_profile 1 sketch "$TMP/sketch-1.out"; then
  echo "outofcore_smoke: sketch profile failed under the cap at 1 thread" >&2
  cat "$TMP/sketch-1.out.err" >&2
  exit 1
fi
if ! capped_profile 8 sketch "$TMP/sketch-8.out"; then
  echo "outofcore_smoke: sketch profile failed under the cap at 8 threads" >&2
  cat "$TMP/sketch-8.out.err" >&2
  exit 1
fi

if ! diff <(grep -v "profiled in" "$TMP/sketch-1.out") \
          <(grep -v "profiled in" "$TMP/sketch-8.out") > /dev/null; then
  echo "outofcore_smoke: sketch profiles diverged between 1 and 8 threads" >&2
  diff "$TMP/sketch-1.out" "$TMP/sketch-8.out" >&2 || true
  exit 1
fi

if capped_profile 1 exact "$TMP/exact.out"; then
  echo "outofcore_smoke: exact profile unexpectedly fit a ${CSV_BYTES}-byte CSV under a ${CAP_KB} KiB cap" >&2
  exit 1
fi

echo "outofcore_smoke: ok (${CSV_BYTES}-byte CSV sketch-profiled under a ${CAP_KB} KiB cap, thread-invariant; exact mode OOM-failed as expected)"

#!/usr/bin/env bash
# DAG executor smoke: one multi-step generated pipeline run under
# --exec-mode seq and --exec-mode dag at CATDB_THREADS 1 and 8, then:
#   (a) all four runs are byte-identical on stdout (the final pipeline
#       code) — DAG scheduling leaks neither mode nor thread count into
#       results,
#   (b) --dag-out writes a JSON step DAG with nodes and edges,
#   (c) the pipeline/dag_parallel bench shows the DAG executor strictly
#       faster than sequential at 8 threads.
# Used directly as a CI gate (any violated assertion exits nonzero).
set -uo pipefail
cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cargo build -q --release -p catdb-serve --bin catdb
cargo build -q --release -p catdb-bench --bin dag_bench

# A small mixed-type dataset: two numerics with gaps, two categoricals,
# a binary target — enough surface for a multi-step generated pipeline.
awk 'BEGIN {
  print "age,income,city,plan,churn"
  for (i = 0; i < 400; i++) {
    age = (i % 11 == 0) ? "" : 20 + (i * 7) % 50
    income = (i % 13 == 0) ? "" : 20000 + (i * 137) % 60000
    city = (i % 3 == 0) ? "york" : ((i % 3 == 1) ? "leeds" : "bath")
    plan = (i % 2 == 0) ? "basic" : "pro"
    churn = ((i * 29) % 97 < 48) ? "no" : "yes"
    print age "," income "," city "," plan "," churn
  }
}' > "$TMP/churn.csv"

run_catdb() { # $1 threads, $2 exec mode, $3 stdout file, extra args...
  local threads="$1" mode="$2" out="$3"
  shift 3
  CATDB_THREADS="$threads" ./target/release/catdb run \
    --csv "$TMP/churn.csv" --target churn --task binary \
    --seed 7 --exec-mode "$mode" "$@" > "$out" 2> "$out.err"
}

if ! run_catdb 1 seq "$TMP/seq-1.out"; then
  echo "dag_smoke: sequential run failed at 1 thread" >&2
  cat "$TMP/seq-1.out.err" >&2
  exit 1
fi
for variant in "1 dag" "8 seq" "8 dag"; do
  set -- $variant
  if ! run_catdb "$1" "$2" "$TMP/$2-$1.out"; then
    echo "dag_smoke: $2 run failed at $1 thread(s)" >&2
    cat "$TMP/$2-$1.out.err" >&2
    exit 1
  fi
  if ! diff "$TMP/seq-1.out" "$TMP/$2-$1.out" > /dev/null; then
    echo "dag_smoke: $2 at $1 thread(s) diverged from sequential at 1 thread" >&2
    diff "$TMP/seq-1.out" "$TMP/$2-$1.out" >&2 || true
    exit 1
  fi
done

if [ ! -s "$TMP/seq-1.out" ]; then
  echo "dag_smoke: run produced no pipeline code on stdout" >&2
  exit 1
fi

run_catdb 8 dag "$TMP/export.out" --dag-out "$TMP/dag.json"
if ! grep -q '"nodes"' "$TMP/dag.json" || ! grep -q '"deps"' "$TMP/dag.json"; then
  echo "dag_smoke: --dag-out did not write a step DAG with nodes and deps" >&2
  cat "$TMP/dag.json" >&2 || true
  exit 1
fi

BENCH_LINE="$(CATDB_THREADS=8 ./target/release/dag_bench | tail -1)"
echo "$BENCH_LINE"
SEQ_MS="${BENCH_LINE#*seq_ms=}"; SEQ_MS="${SEQ_MS%% *}"
DAG_MS="${BENCH_LINE#*dag_ms=}"; DAG_MS="${DAG_MS%% *}"
if ! awk -v s="$SEQ_MS" -v d="$DAG_MS" 'BEGIN { exit !(d < s) }'; then
  echo "dag_smoke: DAG executor not faster than sequential at 8 threads (seq ${SEQ_MS} ms vs dag ${DAG_MS} ms)" >&2
  exit 1
fi

echo "dag_smoke: ok (stdout byte-identical across {seq,dag} x CATDB_THREADS {1,8}; DAG exported; dag ${DAG_MS} ms vs seq ${SEQ_MS} ms at 8 threads)"

//! Token accounting.
//!
//! The paper's cost analysis (Section 4.1, Eq. 1–2 and Figures 12–13) is
//! denominated in tokens. The simulator uses the standard ≈4 characters per
//! token heuristic, which is accurate enough for relative comparisons
//! between systems (the quantity every experiment reports).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Estimated token count of a text (≈ 4 chars/token, minimum 1 for
/// non-empty text).
pub fn estimate_tokens(text: &str) -> usize {
    if text.is_empty() {
        0
    } else {
        text.len().div_ceil(4)
    }
}

/// Input/output token usage of one or more LLM calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenUsage {
    pub input: usize,
    pub output: usize,
}

impl TokenUsage {
    pub fn new(input: usize, output: usize) -> TokenUsage {
        TokenUsage { input, output }
    }

    pub fn total(&self) -> usize {
        self.input + self.output
    }
}

impl Add for TokenUsage {
    type Output = TokenUsage;
    fn add(self, rhs: TokenUsage) -> TokenUsage {
        TokenUsage { input: self.input + rhs.input, output: self.output + rhs.output }
    }
}

impl AddAssign for TokenUsage {
    fn add_assign(&mut self, rhs: TokenUsage) {
        self.input += rhs.input;
        self.output += rhs.output;
    }
}

/// Running ledger of LLM interactions for one session, split by purpose so
/// Figure 13 can separate initial-prompt cost from error-management cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostLedger {
    pub generation: TokenUsage,
    pub error_fixing: TokenUsage,
    pub refinement: TokenUsage,
    pub n_calls: usize,
}

impl CostLedger {
    pub fn total(&self) -> TokenUsage {
        self.generation + self.error_fixing + self.refinement
    }

    pub fn record_generation(&mut self, usage: TokenUsage) {
        self.generation += usage;
        self.n_calls += 1;
    }

    pub fn record_error_fix(&mut self, usage: TokenUsage) {
        self.error_fixing += usage;
        self.n_calls += 1;
    }

    pub fn record_refinement(&mut self, usage: TokenUsage) {
        self.refinement += usage;
        self.n_calls += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_estimate_is_quarter_of_chars() {
        assert_eq!(estimate_tokens(""), 0);
        assert_eq!(estimate_tokens("abcd"), 1);
        assert_eq!(estimate_tokens("abcde"), 2);
        assert_eq!(estimate_tokens(&"x".repeat(400)), 100);
    }

    #[test]
    fn ledger_separates_purposes() {
        let mut ledger = CostLedger::default();
        ledger.record_generation(TokenUsage::new(100, 50));
        ledger.record_error_fix(TokenUsage::new(200, 30));
        ledger.record_refinement(TokenUsage::new(10, 5));
        assert_eq!(ledger.n_calls, 3);
        assert_eq!(ledger.total().input, 310);
        assert_eq!(ledger.total().output, 85);
        assert_eq!(ledger.error_fixing.total(), 230);
    }
}

//! Prompt representation and the structured prompt grammar.
//!
//! CatDB prompts are plain text, but — like the original's carefully
//! engineered templates (Figure 3) — they carry structured sections the
//! model can recognize: a task tag, dataset attributes, schema lines, rule
//! lines, and optional `<CODE>` / `<ERROR>` blocks for chaining and error
//! correction. The simulator *parses the text* (it has no side channel),
//! subject to the model's context window and attention budget, which is
//! how over-long prompts lose rules and columns exactly as Figure 10(c)
//! describes.

use crate::tokens::estimate_tokens;
use std::collections::HashMap;
use std::sync::OnceLock;

/// A rendered prompt (system + user messages).
///
/// The token estimate is memoized on first use: retries, fault-injected
/// replays, and cache fingerprinting all re-ask for the same count, and
/// large catalog prompts should be scanned once, not once per attempt.
/// The messages are immutable after construction (every call site goes
/// through [`Prompt::new`]), so the memo can never go stale.
#[derive(Debug, Clone)]
pub struct Prompt {
    pub system: String,
    pub user: String,
    token_len: OnceLock<usize>,
}

impl Prompt {
    pub fn new(system: impl Into<String>, user: impl Into<String>) -> Prompt {
        Prompt { system: system.into(), user: user.into(), token_len: OnceLock::new() }
    }

    pub fn token_len(&self) -> usize {
        *self.token_len.get_or_init(|| estimate_tokens(&self.system) + estimate_tokens(&self.user))
    }
}

impl PartialEq for Prompt {
    /// Equality is over the rendered messages only — whether the token
    /// estimate has been materialized yet is not observable.
    fn eq(&self, other: &Prompt) -> bool {
        self.system == other.system && self.user == other.user
    }
}

/// The task a prompt asks for, recognized from its `<TASK>` tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlmTaskKind {
    /// Full single-prompt pipeline generation (CatDB, β = 1).
    PipelineGeneration,
    /// Chain stage: data pre-processing steps only.
    Preprocessing,
    /// Chain stage: feature engineering steps only.
    FeatureEngineering,
    /// Chain stage: model selection on top of prior `<CODE>`.
    ModelSelection,
    /// Repair the pipeline in `<CODE>` given `<ERROR>`.
    ErrorFix,
    /// Catalog refinement: infer feature types from name + samples.
    FeatureTypeInference,
    /// Catalog refinement: map semantically-equivalent categorical values.
    CategoricalRefinement,
    /// Anything else (free-form); the simulator answers generically.
    Unknown,
}

impl LlmTaskKind {
    pub fn tag(self) -> &'static str {
        match self {
            LlmTaskKind::PipelineGeneration => "pipeline_generation",
            LlmTaskKind::Preprocessing => "preprocessing",
            LlmTaskKind::FeatureEngineering => "feature_engineering",
            LlmTaskKind::ModelSelection => "model_selection",
            LlmTaskKind::ErrorFix => "error_fix",
            LlmTaskKind::FeatureTypeInference => "feature_type_inference",
            LlmTaskKind::CategoricalRefinement => "categorical_refinement",
            LlmTaskKind::Unknown => "unknown",
        }
    }

    /// Inverse of [`LlmTaskKind::tag`]; unrecognized tags map to `Unknown`.
    pub fn parse(s: &str) -> LlmTaskKind {
        match s {
            "pipeline_generation" => LlmTaskKind::PipelineGeneration,
            "preprocessing" => LlmTaskKind::Preprocessing,
            "feature_engineering" => LlmTaskKind::FeatureEngineering,
            "model_selection" => LlmTaskKind::ModelSelection,
            "error_fix" => LlmTaskKind::ErrorFix,
            "feature_type_inference" => LlmTaskKind::FeatureTypeInference,
            "categorical_refinement" => LlmTaskKind::CategoricalRefinement,
            _ => LlmTaskKind::Unknown,
        }
    }
}

/// Parsed `key="value"` attributes of a line.
pub fn parse_attrs(line: &str) -> HashMap<String, String> {
    let mut attrs = HashMap::new();
    let mut rest = line;
    while let Some(eq) = rest.find("=\"") {
        let key_start = rest[..eq].rfind(|c: char| c.is_whitespace()).map(|p| p + 1).unwrap_or(0);
        let key = rest[key_start..eq].trim().to_string();
        let after = &rest[eq + 2..];
        let Some(end) = after.find('"') else { break };
        attrs.insert(key, after[..end].to_string());
        rest = &after[end + 1..];
    }
    attrs
}

/// What a prompt says about the dataset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DatasetInfo {
    pub name: Option<String>,
    pub target: Option<String>,
    pub task: Option<String>,
    pub n_rows: Option<usize>,
    pub format: Option<String>,
    pub delimiter: Option<String>,
}

/// What a prompt says about one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnInfo {
    pub name: String,
    pub dtype: Option<String>,
    pub feature: Option<String>,
    pub missing: Option<f64>,
    pub distinct_ratio: Option<f64>,
    pub distinct_count: Option<usize>,
    pub values: Option<Vec<String>>,
    pub separator: Option<String>,
    pub has_stats: bool,
    pub target_correlation: Option<f64>,
    /// Token offset of this line inside the prompt (for attention decay).
    pub token_pos: usize,
}

/// One rule line: `rule <stage> <name> key="v" ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleInfo {
    pub stage: String,
    pub name: String,
    pub attrs: HashMap<String, String>,
    pub token_pos: usize,
}

impl RuleInfo {
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(|s| s.as_str())
    }
}

/// Everything the simulator understood from a prompt.
#[derive(Debug, Clone, Default)]
pub struct PromptSpec {
    pub task: Option<LlmTaskKind>,
    pub dataset: DatasetInfo,
    pub columns: Vec<ColumnInfo>,
    pub rules: Vec<RuleInfo>,
    pub code: Option<String>,
    pub error: Option<String>,
    /// Total prompt tokens (before any truncation).
    pub total_tokens: usize,
    /// True when the prompt exceeded the window and was truncated.
    pub truncated: bool,
}

impl PromptSpec {
    /// Parse a prompt, reading at most `max_tokens` tokens of it (the
    /// model's context window). Content past the limit is simply unseen.
    pub fn parse(prompt: &Prompt, max_tokens: usize) -> PromptSpec {
        let full = format!("{}\n{}", prompt.system, prompt.user);
        let total_tokens = estimate_tokens(&full);
        let mut spec = PromptSpec { total_tokens, ..Default::default() };
        let char_limit = max_tokens * 4;
        let visible: &str = if full.len() > char_limit {
            spec.truncated = true;
            &full[..char_limit]
        } else {
            &full
        };

        let mut consumed = 0usize; // bytes, for token positions
        let mut section: Option<&str> = None;
        let mut block = String::new();
        for line in visible.lines() {
            let token_pos = consumed / 4;
            consumed += line.len() + 1;
            let trimmed = line.trim();
            match section {
                Some("CODE") => {
                    if trimmed == "</CODE>" {
                        spec.code = Some(std::mem::take(&mut block));
                        section = None;
                    } else {
                        block.push_str(line);
                        block.push('\n');
                    }
                    continue;
                }
                Some("ERROR") => {
                    if trimmed == "</ERROR>" {
                        spec.error = Some(std::mem::take(&mut block).trim().to_string());
                        section = None;
                    } else {
                        block.push_str(line);
                        block.push('\n');
                    }
                    continue;
                }
                _ => {}
            }
            if let Some(rest) = trimmed.strip_prefix("<TASK>") {
                if let Some(tag) = rest.strip_suffix("</TASK>") {
                    spec.task = Some(LlmTaskKind::parse(tag.trim()));
                }
            } else if trimmed.starts_with("<DATASET") {
                let attrs = parse_attrs(trimmed);
                spec.dataset = DatasetInfo {
                    name: attrs.get("name").cloned(),
                    target: attrs.get("target").cloned(),
                    task: attrs.get("task").cloned(),
                    n_rows: attrs.get("rows").and_then(|s| s.parse().ok()),
                    format: attrs.get("format").cloned(),
                    delimiter: attrs.get("delimiter").cloned(),
                };
            } else if trimmed.starts_with("col ") {
                let attrs = parse_attrs(trimmed);
                if let Some(name) = attrs.get("name") {
                    spec.columns.push(ColumnInfo {
                        name: name.clone(),
                        dtype: attrs.get("type").cloned(),
                        feature: attrs.get("feature").cloned(),
                        missing: attrs.get("missing").and_then(|s| s.parse().ok()),
                        distinct_ratio: attrs.get("distinct").and_then(|s| s.parse().ok()),
                        distinct_count: attrs.get("distinct_count").and_then(|s| s.parse().ok()),
                        values: attrs
                            .get("values")
                            .map(|v| v.split('|').map(|s| s.to_string()).collect()),
                        separator: attrs.get("sep").cloned(),
                        has_stats: attrs.contains_key("min") || attrs.contains_key("median"),
                        target_correlation: attrs.get("corr_target").and_then(|s| s.parse().ok()),
                        token_pos,
                    });
                }
            } else if trimmed.starts_with("rule ") {
                let mut parts = trimmed.splitn(4, ' ');
                parts.next(); // "rule"
                let stage = parts.next().unwrap_or("").to_string();
                let name = parts.next().unwrap_or("").to_string();
                let attrs = parts.next().map(parse_attrs).unwrap_or_default();
                if !stage.is_empty() && !name.is_empty() {
                    spec.rules.push(RuleInfo { stage, name, attrs, token_pos });
                }
            } else if trimmed == "<CODE>" {
                section = Some("CODE");
                block.clear();
            } else if trimmed == "<ERROR>" {
                section = Some("ERROR");
                block.clear();
            }
        }
        spec
    }

    /// Look up a rule by name (any stage).
    pub fn rule(&self, name: &str) -> Option<&RuleInfo> {
        self.rules.iter().find(|r| r.name == name)
    }

    pub fn column(&self, name: &str) -> Option<&ColumnInfo> {
        self.columns.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_prompt() -> Prompt {
        Prompt::new(
            "You are a data science assistant.",
            r#"<TASK>pipeline_generation</TASK>
<DATASET name="salary" format="csv" delimiter="," rows="1000" target="income" task="regression" />
<SCHEMA>
col name="age" type="float" feature="numerical" missing="0.05" distinct="0.2" min="20" max="60" median="40"
col name="gender" type="string" feature="categorical" missing="0" distinct="0.01" values="Male|Female"
col name="skills" type="string" feature="list" sep="," distinct="0.9"
</SCHEMA>
<RULES>
rule preprocessing impute_missing
rule fe feature_selection k="20"
rule model model_selection
</RULES>
"#,
        )
    }

    #[test]
    fn parses_task_dataset_columns_rules() {
        let spec = PromptSpec::parse(&sample_prompt(), 100_000);
        assert_eq!(spec.task, Some(LlmTaskKind::PipelineGeneration));
        assert_eq!(spec.dataset.target.as_deref(), Some("income"));
        assert_eq!(spec.dataset.n_rows, Some(1000));
        assert_eq!(spec.columns.len(), 3);
        let age = spec.column("age").unwrap();
        assert_eq!(age.missing, Some(0.05));
        assert!(age.has_stats);
        let gender = spec.column("gender").unwrap();
        assert_eq!(gender.values.as_ref().unwrap().len(), 2);
        let skills = spec.column("skills").unwrap();
        assert_eq!(skills.separator.as_deref(), Some(","));
        assert_eq!(spec.rules.len(), 3);
        assert_eq!(spec.rule("feature_selection").unwrap().attr("k"), Some("20"));
        assert!(!spec.truncated);
    }

    #[test]
    fn truncation_drops_late_content() {
        let prompt = sample_prompt();
        // A window that covers the header but not the rules.
        let spec = PromptSpec::parse(&prompt, 60);
        assert!(spec.truncated);
        assert!(spec.rules.len() < 3);
    }

    #[test]
    fn code_and_error_blocks_are_captured() {
        let prompt = Prompt::new(
            "",
            "<TASK>error_fix</TASK>\n<CODE>\npipeline {\n  drop_constant;\n}\n</CODE>\n<ERROR>\n[RE] line 2: column 'x' not found (column_not_found)\n</ERROR>\n",
        );
        let spec = PromptSpec::parse(&prompt, 100_000);
        assert_eq!(spec.task, Some(LlmTaskKind::ErrorFix));
        assert!(spec.code.as_ref().unwrap().contains("drop_constant;"));
        assert!(spec.error.as_ref().unwrap().contains("column_not_found"));
    }

    #[test]
    fn token_positions_increase() {
        let spec = PromptSpec::parse(&sample_prompt(), 100_000);
        assert!(spec.columns[0].token_pos < spec.columns[2].token_pos);
        assert!(spec.columns[2].token_pos < spec.rules[0].token_pos);
    }

    #[test]
    fn attr_parser_handles_adjacent_pairs() {
        let attrs = parse_attrs(r#"col name="a b" type="string" values="x|y""#);
        assert_eq!(attrs.get("name").map(|s| s.as_str()), Some("a b"));
        assert_eq!(attrs.get("values").map(|s| s.as_str()), Some("x|y"));
    }
}

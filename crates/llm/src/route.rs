//! Per-role model routing: send each pipeline role to its own model.
//!
//! CatDB's prompt stream is not homogeneous — catalog refinement asks
//! short classification questions, chain-stage generation writes whole
//! pipeline programs, model selection picks a learner, and fix re-prompts
//! repair a failing program. The paper runs every role on one model per
//! experiment; SNIPPETS.md Snippet 3 and the prompt-generation literature
//! argue for a registry that assigns a cheap model to the mechanical
//! roles and a strong model where errors are expensive. [`RouteSpec`]
//! parses the `--route refine=llama,generate=gpt-4o,fix=gpt-4o-mini`
//! syntax, [`RoutedLlm`] dispatches each prompt by its `<TASK>` tag, and
//! [`RouteOptimizer`] enumerates assignments to find the cheapest one
//! meeting a target end-to-end accuracy, using the same Table-2 fault
//! frequencies that drive the simulator.
//!
//! Routing composes with everything below it unchanged: each role's
//! backend is a full [`ResilientClient`] (retry, breaker, degradation
//! ladder), and the scheduler keys its completion cache on
//! [`LanguageModel::model_for`], so identical prompts routed to
//! different models never share a cache entry while re-runs of the same
//! route stay warm.

use crate::client::{Completion, LanguageModel, LlmError};
use crate::fault::FaultSpec;
use crate::profile::ModelProfile;
use crate::prompt::{LlmTaskKind, Prompt};
use crate::resilient::{ResilientClient, RetryPolicy};
use catdb_trace::{Trace, TraceEvent};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// The four routable pipeline roles, in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// Catalog refinement: feature-type inference and categorical-value
    /// deduplication prompts (Section 3.2).
    Refine,
    /// Pipeline generation: the single CatDB prompt or the chain's
    /// preprocessing / feature-engineering stage prompts (Algorithm 3).
    Generate,
    /// Model-selection prompts (the chain's final stage).
    Select,
    /// Error-fix re-prompts from the error-management loop (Algorithm 4).
    Fix,
}

impl Role {
    pub const ALL: [Role; 4] = [Role::Refine, Role::Generate, Role::Select, Role::Fix];

    /// The `--route` key for this role.
    pub fn name(self) -> &'static str {
        match self {
            Role::Refine => "refine",
            Role::Generate => "generate",
            Role::Select => "select",
            Role::Fix => "fix",
        }
    }

    /// Parse a `--route` key.
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "refine" => Some(Role::Refine),
            "generate" => Some(Role::Generate),
            "select" => Some(Role::Select),
            "fix" => Some(Role::Fix),
            _ => None,
        }
    }

    /// The role that owns a prompt task.
    pub fn of_task(task: LlmTaskKind) -> Role {
        match task {
            LlmTaskKind::FeatureTypeInference | LlmTaskKind::CategoricalRefinement => Role::Refine,
            LlmTaskKind::ModelSelection => Role::Select,
            LlmTaskKind::ErrorFix => Role::Fix,
            LlmTaskKind::PipelineGeneration
            | LlmTaskKind::Preprocessing
            | LlmTaskKind::FeatureEngineering
            | LlmTaskKind::Unknown => Role::Generate,
        }
    }

    /// Classify a prompt by scanning for its `<TASK>` tag. Prompts
    /// without a recognizable tag route as [`Role::Generate`] — the
    /// conservative default, since generation carries the strongest
    /// model in every sensible route.
    pub fn of_prompt(prompt: &Prompt) -> Role {
        for text in [&prompt.system, &prompt.user] {
            for line in text.lines() {
                let trimmed = line.trim();
                if let Some(rest) = trimmed.strip_prefix("<TASK>") {
                    if let Some(tag) = rest.strip_suffix("</TASK>") {
                        return Role::of_task(LlmTaskKind::parse(tag.trim()));
                    }
                }
            }
        }
        Role::Generate
    }
}

/// A structured `--route` parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The spec string was empty (or all-whitespace/commas).
    EmptySpec,
    /// An entry had no `=` separator.
    MissingSeparator { entry: String },
    /// The key before `=` is not one of `refine|generate|select|fix`.
    UnknownRole { role: String },
    /// The value after `=` is not a known model or alias.
    UnknownModel { model: String },
    /// The same role was assigned twice.
    DuplicateRole { role: String },
    /// A `:N` concurrency suffix was present but not a positive integer.
    InvalidLimit { entry: String },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::EmptySpec => {
                write!(f, "empty --route spec; expected role=model[,role=model...]")
            }
            RouteError::MissingSeparator { entry } => {
                write!(f, "route entry '{entry}' has no '='; expected role=model")
            }
            RouteError::UnknownRole { role } => {
                write!(f, "unknown route role '{role}'; roles are refine, generate, select, fix")
            }
            RouteError::UnknownModel { model } => write!(
                f,
                "unknown route model '{model}'; known models: gpt-4o, gemini-1.5-pro, \
                 llama3.1-70b, gpt-4o-mini (aliases: gemini, llama, mini)"
            ),
            RouteError::DuplicateRole { role } => {
                write!(f, "route role '{role}' assigned more than once")
            }
            RouteError::InvalidLimit { entry } => {
                write!(
                    f,
                    "route entry '{entry}' has a bad concurrency suffix; \
                     expected role=model:N with N a positive integer"
                )
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A parsed role → model assignment. Roles left out of the spec fall
/// back to the run's default model when the route is materialized.
/// Entries may carry a `:N` suffix capping that role's in-flight
/// completions; the cap is enforced *inside* the shared
/// `--llm-concurrency` fan-out, so a role waiting on its own limit
/// still occupies one of the scheduler's slots.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteSpec {
    assigned: Vec<(Role, ModelProfile)>,
    limits: Vec<(Role, usize)>,
}

impl RouteSpec {
    /// Parse `role=model[:N][,role=model[:N]...]`. Models accept the
    /// aliases of [`ModelProfile::resolve_alias`]; the optional `:N`
    /// suffix caps the role at `N` concurrent completions. Every
    /// failure is a structured [`RouteError`] naming the offending
    /// entry.
    pub fn parse(spec: &str) -> Result<RouteSpec, RouteError> {
        let entries: Vec<&str> = spec.split(',').map(str::trim).filter(|e| !e.is_empty()).collect();
        if entries.is_empty() {
            return Err(RouteError::EmptySpec);
        }
        let mut assigned: Vec<(Role, ModelProfile)> = Vec::new();
        let mut limits: Vec<(Role, usize)> = Vec::new();
        for entry in entries {
            let (role_s, value_s) = entry
                .split_once('=')
                .ok_or_else(|| RouteError::MissingSeparator { entry: entry.to_string() })?;
            let role = Role::parse(role_s.trim())
                .ok_or_else(|| RouteError::UnknownRole { role: role_s.trim().to_string() })?;
            // No known model name contains ':', so any colon starts a
            // concurrency suffix; a malformed one is an error, not part
            // of the model name.
            let (model_s, limit) =
                match value_s.split_once(':') {
                    Some((model_s, limit_s)) => {
                        let limit =
                            limit_s.trim().parse::<usize>().ok().filter(|n| *n >= 1).ok_or_else(
                                || RouteError::InvalidLimit { entry: entry.to_string() },
                            )?;
                        (model_s, Some(limit))
                    }
                    None => (value_s, None),
                };
            let model = ModelProfile::by_name(model_s.trim())
                .ok_or_else(|| RouteError::UnknownModel { model: model_s.trim().to_string() })?;
            if assigned.iter().any(|(r, _)| *r == role) {
                return Err(RouteError::DuplicateRole { role: role.name().to_string() });
            }
            assigned.push((role, model));
            if let Some(limit) = limit {
                limits.push((role, limit));
            }
        }
        Ok(RouteSpec { assigned, limits })
    }

    /// A spec assigning `model` to every role.
    pub fn uniform(model: ModelProfile) -> RouteSpec {
        RouteSpec {
            assigned: Role::ALL.iter().map(|r| (*r, model.clone())).collect(),
            limits: Vec::new(),
        }
    }

    /// The model assigned to `role`, if the spec names one.
    pub fn model(&self, role: Role) -> Option<&ModelProfile> {
        self.assigned.iter().find(|(r, _)| *r == role).map(|(_, m)| m)
    }

    /// The in-flight completion cap for `role`, if the spec set one.
    pub fn limit(&self, role: Role) -> Option<usize> {
        self.limits.iter().find(|(r, _)| *r == role).map(|(_, n)| *n)
    }

    /// Full per-role table with `default` filling unassigned roles,
    /// in [`Role::ALL`] order.
    pub fn resolve(&self, default: &ModelProfile) -> Vec<(Role, ModelProfile)> {
        Role::ALL
            .iter()
            .map(|r| (*r, self.model(*r).cloned().unwrap_or_else(|| default.clone())))
            .collect()
    }

    /// Canonical `role=model[:N],...` string in [`Role::ALL`] order,
    /// with unassigned roles resolved against `default`. Two specs
    /// that route (and cap) identically render identically.
    pub fn canonical(&self, default: &ModelProfile) -> String {
        self.resolve(default)
            .iter()
            .map(|(r, m)| match self.limit(*r) {
                Some(n) => format!("{}={}:{n}", r.name(), m.name),
                None => format!("{}={}", r.name(), m.name),
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// A plain counting semaphore (`Mutex` + `Condvar`), used to cap a
/// role's in-flight completions without pulling in an async runtime.
#[derive(Debug)]
struct RoleGate {
    permits: Mutex<usize>,
    available: Condvar,
}

impl RoleGate {
    fn new(permits: usize) -> RoleGate {
        RoleGate { permits: Mutex::new(permits), available: Condvar::new() }
    }

    fn acquire(&self) -> RoleGateGuard<'_> {
        let mut permits = self.permits.lock().expect("role gate poisoned");
        while *permits == 0 {
            permits = self.available.wait(permits).expect("role gate poisoned");
        }
        *permits -= 1;
        RoleGateGuard { gate: self }
    }
}

struct RoleGateGuard<'a> {
    gate: &'a RoleGate,
}

impl Drop for RoleGateGuard<'_> {
    fn drop(&mut self) {
        let mut permits = self.gate.permits.lock().expect("role gate poisoned");
        *permits += 1;
        self.gate.available.notify_one();
    }
}

/// A [`LanguageModel`] that dispatches each prompt to the backend its
/// role is routed to. Roles sharing a model share one backend (and
/// therefore one circuit breaker and one seeded fault stream), so a
/// route is exactly as deterministic as its distinct backends — backend
/// responses depend only on (seed, prompt), never on arrival order.
pub struct RoutedLlm {
    /// One backend per distinct routed model, creation order.
    backends: Vec<Arc<dyn LanguageModel>>,
    /// `Role::ALL`-indexed backend index and routed model name.
    by_role: [usize; 4],
    names: [String; 4],
    /// `Role::ALL`-indexed in-flight caps; `None` = unbounded. Enforced
    /// inside [`LanguageModel::complete`], so a capped role's waiters
    /// still hold their slot of the shared `--llm-concurrency` bound.
    limits: [Option<Arc<RoleGate>>; 4],
}

impl RoutedLlm {
    /// Build from explicit per-role backends, deduplicated by
    /// `model_name()`. `table` must cover all four roles (use
    /// [`RouteSpec::resolve`]).
    pub fn from_backends(table: Vec<(Role, Arc<dyn LanguageModel>)>) -> RoutedLlm {
        let mut backends: Vec<Arc<dyn LanguageModel>> = Vec::new();
        let mut by_role = [0usize; 4];
        let mut names: [String; 4] = Default::default();
        for (role, backend) in table {
            let name = backend.model_name().to_string();
            let idx = match backends.iter().position(|b| b.model_name() == name) {
                Some(i) => i,
                None => {
                    backends.push(backend);
                    backends.len() - 1
                }
            };
            let slot = Role::ALL.iter().position(|r| *r == role).expect("role in ALL");
            by_role[slot] = idx;
            names[slot] = name;
        }
        assert!(names.iter().all(|n| !n.is_empty()), "route table must cover all roles");
        RoutedLlm { backends, by_role, names, limits: [None, None, None, None] }
    }

    /// Apply the spec's per-role `:N` caps. Each capped role gets its
    /// own gate — two roles routed to the same backend are capped
    /// independently.
    pub fn with_role_limits(mut self, spec: &RouteSpec) -> RoutedLlm {
        for (slot, role) in Role::ALL.iter().enumerate() {
            self.limits[slot] = spec.limit(*role).map(|n| Arc::new(RoleGate::new(n)));
        }
        self
    }

    /// The standard simulated stack for a route: one
    /// [`ResilientClient::simulated`] per distinct routed model, all
    /// seeded with the same base `seed` and fault surface. Shared
    /// seeding keeps routed runs byte-deterministic at any concurrency:
    /// a backend's response depends only on (seed, prompt), so the set
    /// of distinct models — not their call interleaving — fixes the
    /// output.
    pub fn simulated(
        default: &ModelProfile,
        spec: &RouteSpec,
        faults: FaultSpec,
        policy: RetryPolicy,
        seed: u64,
    ) -> RoutedLlm {
        let mut built: Vec<(String, Arc<dyn LanguageModel>)> = Vec::new();
        let mut table: Vec<(Role, Arc<dyn LanguageModel>)> = Vec::new();
        for (role, profile) in spec.resolve(default) {
            let backend = match built.iter().find(|(n, _)| *n == profile.name) {
                Some((_, b)) => b.clone(),
                None => {
                    let b: Arc<dyn LanguageModel> = Arc::new(ResilientClient::simulated(
                        profile.clone(),
                        faults,
                        policy.clone(),
                        seed,
                    ));
                    built.push((profile.name.clone(), b.clone()));
                    b
                }
            };
            table.push((role, backend));
        }
        RoutedLlm::from_backends(table).with_role_limits(spec)
    }

    /// The routed model name for each role, [`Role::ALL`] order.
    pub fn routed_names(&self) -> &[String; 4] {
        &self.names
    }

    fn slot(&self, prompt: &Prompt) -> usize {
        let role = Role::of_prompt(prompt);
        Role::ALL.iter().position(|r| *r == role).expect("role in ALL")
    }
}

impl LanguageModel for RoutedLlm {
    /// The generate-role model: the identity shown in error traces and
    /// degradation events, since generation is the role they concern.
    fn model_name(&self) -> &str {
        let generate = Role::ALL.iter().position(|r| *r == Role::Generate).expect("in ALL");
        &self.names[generate]
    }

    fn context_window(&self) -> usize {
        let generate = Role::ALL.iter().position(|r| *r == Role::Generate).expect("in ALL");
        self.backends[self.by_role[generate]].context_window()
    }

    fn complete(&self, prompt: &Prompt) -> Result<Completion, LlmError> {
        let slot = self.slot(prompt);
        let _permit = self.limits[slot].as_ref().map(|gate| gate.acquire());
        self.backends[self.by_role[slot]].complete(prompt)
    }

    fn model_for(&self, prompt: &Prompt) -> &str {
        &self.names[self.slot(prompt)]
    }
}

/// Default `--route-target-accuracy` for `--route auto`.
pub const DEFAULT_ROUTE_TARGET_ACCURACY: f64 = 0.95;

/// Default per-role `(input, output)` token volumes used when the
/// optimizer has no observed trace — rough fig12-workload shapes.
const DEFAULT_VOLUME: [(f64, f64); 4] =
    [(2_400.0, 500.0), (6_000.0, 1_600.0), (1_200.0, 300.0), (3_000.0, 900.0)];

/// Error-fix rounds Algorithm 4 grants before falling back.
const FIX_ROUNDS: i32 = 3;

/// One enumerated route with its predicted quality and price.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteCandidate {
    pub route: String,
    pub spec: RouteSpec,
    pub expected_accuracy: f64,
    pub expected_cost_usd: f64,
}

/// Enumerates every assignment of known models to roles and picks the
/// cheapest one whose predicted end-to-end accuracy meets the target.
///
/// The accuracy model composes the same per-model frequencies the
/// simulator draws from: a role's first-try error rate comes from its
/// routed profile (instruction following for refinement, the Table-2
/// fault mix for generation, selection quality for model choice), and
/// the fix role's `fix_skill` discounts every other role's error by the
/// chance [`FIX_ROUNDS`] repair rounds all fail. The cost model prices
/// per-role token volumes — observed ones when a trace is supplied,
/// fig12-shaped defaults otherwise — at each routed model's API rates,
/// with fix volume scaled by the generation error it exists to repair.
pub struct RouteOptimizer {
    pub target_accuracy: f64,
    candidates: Vec<ModelProfile>,
    volumes: [(f64, f64); 4],
}

impl RouteOptimizer {
    pub fn new(target_accuracy: f64) -> RouteOptimizer {
        RouteOptimizer {
            target_accuracy,
            candidates: ModelProfile::known_models(),
            volumes: DEFAULT_VOLUME,
        }
    }

    /// Scale the default per-role volumes by a trace's observed
    /// `llm_tokens_by_task()`, so the optimizer prices the workload the
    /// run actually sends. Roles absent from the trace keep defaults.
    pub fn with_observed(mut self, trace: &Trace) -> RouteOptimizer {
        let mut observed = [(0.0f64, 0.0f64); 4];
        for (task, (input, output)) in trace.llm_tokens_by_task() {
            let role = Role::of_task(LlmTaskKind::parse(&task));
            let slot = Role::ALL.iter().position(|r| *r == role).expect("in ALL");
            observed[slot].0 += input as f64;
            observed[slot].1 += output as f64;
        }
        for (slot, (input, output)) in observed.iter().enumerate() {
            if *input > 0.0 || *output > 0.0 {
                self.volumes[slot] = (*input, *output);
            }
        }
        self
    }

    /// A role's first-try failure probability under `profile`.
    fn role_error(role: Role, profile: &ModelProfile) -> f64 {
        match role {
            Role::Refine => 1.0 - profile.instruction_following,
            Role::Generate => {
                1.0 - (1.0 - profile.semantic_fault_rate)
                    * (1.0 - profile.syntax_fault_rate)
                    * (1.0 - profile.env_fault_rate)
            }
            Role::Select => 1.0 - profile.quality,
            // The fix role has no first-try slot of its own; it enters
            // the model as every other role's recovery channel.
            Role::Fix => 0.0,
        }
    }

    /// Predicted end-to-end success probability of a full route table.
    pub fn predicted_accuracy(table: &[(Role, ModelProfile)]) -> f64 {
        let fix_rel =
            table.iter().find(|(r, _)| *r == Role::Fix).map(|(_, m)| m.fix_skill).unwrap_or(0.0);
        let unrecovered = (1.0 - fix_rel).powi(FIX_ROUNDS);
        table
            .iter()
            .filter(|(r, _)| *r != Role::Fix)
            .map(|(r, m)| 1.0 - Self::role_error(*r, m) * unrecovered)
            .product()
    }

    /// Predicted billed cost of a route table at the given volumes.
    fn predicted_cost(&self, table: &[(Role, ModelProfile)]) -> f64 {
        let gen_error = table
            .iter()
            .find(|(r, _)| *r == Role::Generate)
            .map(|(_, m)| Self::role_error(Role::Generate, m))
            .unwrap_or(0.0);
        table
            .iter()
            .map(|(role, m)| {
                let slot = Role::ALL.iter().position(|r| r == role).expect("in ALL");
                let (input, output) = self.volumes[slot];
                // Fix prompts only exist in proportion to generation
                // failures; an error-free generator bills no fix tokens.
                let weight = if *role == Role::Fix { gen_error * FIX_ROUNDS as f64 } else { 1.0 };
                m.cost_usd((input * weight) as usize, (output * weight) as usize)
            })
            .sum()
    }

    fn candidate_for(&self, table: Vec<(Role, ModelProfile)>) -> RouteCandidate {
        let spec = RouteSpec { assigned: table.clone(), limits: Vec::new() };
        // Every role is explicitly assigned, so the default is unused;
        // gpt-4o is passed only to satisfy the signature.
        let route = spec.canonical(&ModelProfile::gpt_4o());
        RouteCandidate {
            route,
            spec,
            expected_accuracy: Self::predicted_accuracy(&table),
            expected_cost_usd: self.predicted_cost(&table),
        }
    }

    /// Enumerate all `models^roles` assignments, keep those meeting the
    /// target, and return the cheapest (ties broken by canonical route
    /// string, so the choice is deterministic). The all-gpt-4o route is
    /// the baseline. Emits a [`TraceEvent::RouteDecision`] with the
    /// feasible shortlist. Returns `None` when no assignment reaches
    /// the target.
    pub fn optimize(&self) -> Option<RouteCandidate> {
        let n = self.candidates.len();
        let mut feasible: Vec<RouteCandidate> = Vec::new();
        let mut considered = 0usize;
        // Mixed-radix counter over candidate indices — deterministic
        // enumeration order, no recursion.
        let mut idx = [0usize; 4];
        loop {
            let table: Vec<(Role, ModelProfile)> = Role::ALL
                .iter()
                .enumerate()
                .map(|(slot, role)| (*role, self.candidates[idx[slot]].clone()))
                .collect();
            considered += 1;
            let cand = self.candidate_for(table);
            if cand.expected_accuracy >= self.target_accuracy {
                feasible.push(cand);
            }
            let mut slot = 0;
            loop {
                idx[slot] += 1;
                if idx[slot] < n {
                    break;
                }
                idx[slot] = 0;
                slot += 1;
                if slot == 4 {
                    break;
                }
            }
            if slot == 4 {
                break;
            }
        }
        feasible.sort_by(|a, b| {
            a.expected_cost_usd
                .partial_cmp(&b.expected_cost_usd)
                .expect("finite costs")
                .then_with(|| a.route.cmp(&b.route))
        });
        let baseline =
            self.candidate_for(Role::ALL.iter().map(|r| (*r, ModelProfile::gpt_4o())).collect());
        let chosen = feasible.first().cloned();
        if let Some(chosen) = &chosen {
            catdb_trace::emit(TraceEvent::RouteDecision {
                target_accuracy: self.target_accuracy,
                considered,
                candidates: feasible
                    .iter()
                    .take(5)
                    .map(|c| (c.route.clone(), c.expected_accuracy, c.expected_cost_usd))
                    .collect(),
                route: chosen.route.clone(),
                expected_accuracy: chosen.expected_accuracy,
                expected_cost_usd: chosen.expected_cost_usd,
                baseline_cost_usd: baseline.expected_cost_usd,
            });
        }
        chosen
    }
}

/// Resolve a `--route` value: an explicit spec parses directly, the
/// literal `auto` runs the optimizer at `target_accuracy`. When no
/// assignment reaches the target, `auto` falls back to the uniform
/// strong route (all gpt-4o) — the best-accuracy assignment available —
/// rather than failing the run.
pub fn resolve_route(spec: &str, target_accuracy: f64) -> Result<RouteSpec, RouteError> {
    if spec.trim() == "auto" {
        return Ok(RouteOptimizer::new(target_accuracy)
            .optimize()
            .map(|c| c.spec)
            .unwrap_or_else(|| RouteSpec::uniform(ModelProfile::gpt_4o())));
    }
    RouteSpec::parse(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimLlm;

    fn tagged(task: LlmTaskKind) -> Prompt {
        Prompt::new("system", format!("<TASK>{}</TASK>\nbody", task.tag()))
    }

    #[test]
    fn roles_classify_prompts_by_task_tag() {
        assert_eq!(Role::of_prompt(&tagged(LlmTaskKind::FeatureTypeInference)), Role::Refine);
        assert_eq!(Role::of_prompt(&tagged(LlmTaskKind::CategoricalRefinement)), Role::Refine);
        assert_eq!(Role::of_prompt(&tagged(LlmTaskKind::PipelineGeneration)), Role::Generate);
        assert_eq!(Role::of_prompt(&tagged(LlmTaskKind::Preprocessing)), Role::Generate);
        assert_eq!(Role::of_prompt(&tagged(LlmTaskKind::FeatureEngineering)), Role::Generate);
        assert_eq!(Role::of_prompt(&tagged(LlmTaskKind::ModelSelection)), Role::Select);
        assert_eq!(Role::of_prompt(&tagged(LlmTaskKind::ErrorFix)), Role::Fix);
        assert_eq!(Role::of_prompt(&Prompt::new("no", "tags here")), Role::Generate);
    }

    #[test]
    fn parse_accepts_aliases_and_partial_specs() {
        let spec = RouteSpec::parse("refine=llama,generate=gpt-4o,fix=mini").unwrap();
        assert_eq!(spec.model(Role::Refine).unwrap().name, "llama3.1-70b");
        assert_eq!(spec.model(Role::Generate).unwrap().name, "gpt-4o");
        assert_eq!(spec.model(Role::Fix).unwrap().name, "gpt-4o-mini");
        assert!(spec.model(Role::Select).is_none());
        assert!(Role::ALL.iter().all(|r| spec.limit(*r).is_none()));
        let table = spec.resolve(&ModelProfile::gemini_1_5_pro());
        assert_eq!(table[2].1.name, "gemini-1.5-pro");
        assert_eq!(
            spec.canonical(&ModelProfile::gemini_1_5_pro()),
            "refine=llama3.1-70b,generate=gpt-4o,select=gemini-1.5-pro,fix=gpt-4o-mini"
        );
    }

    #[test]
    fn parse_accepts_per_role_concurrency_suffixes() {
        let spec = RouteSpec::parse("refine=llama:2,generate=gpt-4o,fix=mini:1").unwrap();
        assert_eq!(spec.model(Role::Refine).unwrap().name, "llama3.1-70b");
        assert_eq!(spec.limit(Role::Refine), Some(2));
        assert_eq!(spec.limit(Role::Generate), None);
        assert_eq!(spec.limit(Role::Fix), Some(1));
        assert_eq!(
            spec.canonical(&ModelProfile::gpt_4o()),
            "refine=llama3.1-70b:2,generate=gpt-4o,select=gpt-4o,fix=gpt-4o-mini:1"
        );
    }

    #[test]
    fn parse_rejects_malformed_specs_with_structured_errors() {
        assert_eq!(RouteSpec::parse(""), Err(RouteError::EmptySpec));
        assert_eq!(RouteSpec::parse(" , ,"), Err(RouteError::EmptySpec));
        assert_eq!(
            RouteSpec::parse("refine"),
            Err(RouteError::MissingSeparator { entry: "refine".into() })
        );
        assert_eq!(
            RouteSpec::parse("profile=gpt-4o"),
            Err(RouteError::UnknownRole { role: "profile".into() })
        );
        assert_eq!(
            RouteSpec::parse("refine=claude"),
            Err(RouteError::UnknownModel { model: "claude".into() })
        );
        assert_eq!(
            RouteSpec::parse("refine=llama,refine=gpt-4o"),
            Err(RouteError::DuplicateRole { role: "refine".into() })
        );
        assert_eq!(
            RouteSpec::parse("refine=llama:0"),
            Err(RouteError::InvalidLimit { entry: "refine=llama:0".into() })
        );
        assert_eq!(
            RouteSpec::parse("refine=llama:two"),
            Err(RouteError::InvalidLimit { entry: "refine=llama:two".into() })
        );
        assert_eq!(
            RouteSpec::parse("refine=llama:"),
            Err(RouteError::InvalidLimit { entry: "refine=llama:".into() })
        );
    }

    #[test]
    fn routed_llm_dispatches_by_role_and_reports_routed_model() {
        let spec = RouteSpec::parse("refine=llama,generate=gpt-4o").unwrap();
        let table: Vec<(Role, Arc<dyn LanguageModel>)> = spec
            .resolve(&ModelProfile::gpt_4o())
            .into_iter()
            .map(|(role, profile)| {
                (role, Arc::new(SimLlm::new(profile, 7)) as Arc<dyn LanguageModel>)
            })
            .collect();
        let routed = RoutedLlm::from_backends(table);
        // gpt-4o serves generate, select, fix — three roles, one backend.
        assert_eq!(routed.backends.len(), 2);
        assert_eq!(routed.model_name(), "gpt-4o");
        assert_eq!(routed.model_for(&tagged(LlmTaskKind::FeatureTypeInference)), "llama3.1-70b");
        assert_eq!(routed.model_for(&tagged(LlmTaskKind::PipelineGeneration)), "gpt-4o");
        assert_eq!(routed.model_for(&tagged(LlmTaskKind::ErrorFix)), "gpt-4o");
        assert!(routed.complete(&tagged(LlmTaskKind::PipelineGeneration)).is_ok());
    }

    #[test]
    fn routed_completion_matches_direct_backend_call() {
        // The router must be a pure dispatcher: a routed completion is
        // byte-identical to calling the role's backend directly.
        let spec = RouteSpec::parse("refine=llama").unwrap();
        let routed = RoutedLlm::simulated(
            &ModelProfile::gpt_4o(),
            &spec,
            FaultSpec::none(),
            RetryPolicy::default(),
            42,
        );
        let direct = ResilientClient::simulated(
            ModelProfile::llama3_1_70b(),
            FaultSpec::none(),
            RetryPolicy::default(),
            42,
        );
        let prompt = tagged(LlmTaskKind::FeatureTypeInference);
        assert_eq!(routed.complete(&prompt).unwrap().text, direct.complete(&prompt).unwrap().text);
    }

    /// A backend that records how many completions are in flight at
    /// once, so a test can prove the role gate actually bounds them.
    struct InFlightProbe {
        current: std::sync::atomic::AtomicUsize,
        peak: std::sync::atomic::AtomicUsize,
    }

    impl InFlightProbe {
        fn new() -> InFlightProbe {
            InFlightProbe {
                current: std::sync::atomic::AtomicUsize::new(0),
                peak: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl LanguageModel for InFlightProbe {
        fn model_name(&self) -> &str {
            "probe"
        }

        fn context_window(&self) -> usize {
            128_000
        }

        fn complete(&self, _prompt: &Prompt) -> Result<Completion, LlmError> {
            use std::sync::atomic::Ordering;
            let now = self.current.fetch_add(1, Ordering::SeqCst) + 1;
            self.peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            self.current.fetch_sub(1, Ordering::SeqCst);
            Ok(Completion {
                text: "ok".into(),
                usage: crate::tokens::TokenUsage::new(1, 1),
                latency_seconds: 0.0,
            })
        }
    }

    #[test]
    fn role_limits_bound_in_flight_completions() {
        let spec = RouteSpec::parse("refine=llama:2").unwrap();
        let probe = Arc::new(InFlightProbe::new());
        let table: Vec<(Role, Arc<dyn LanguageModel>)> =
            Role::ALL.iter().map(|r| (*r, probe.clone() as Arc<dyn LanguageModel>)).collect();
        let routed = Arc::new(RoutedLlm::from_backends(table).with_role_limits(&spec));
        let prompt = tagged(LlmTaskKind::FeatureTypeInference);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let routed = routed.clone();
                let prompt = prompt.clone();
                scope.spawn(move || routed.complete(&prompt).unwrap());
            }
        });
        let peak = probe.peak.load(std::sync::atomic::Ordering::SeqCst);
        assert!(peak <= 2, "refine gate of 2 let {peak} completions run at once");
        // Uncapped roles on the same route are not throttled: the
        // generate role has no gate, so 8 threads can overlap freely.
        probe.peak.store(0, std::sync::atomic::Ordering::SeqCst);
        let open = tagged(LlmTaskKind::PipelineGeneration);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let routed = routed.clone();
                let open = open.clone();
                scope.spawn(move || routed.complete(&open).unwrap());
            }
        });
        assert!(probe.peak.load(std::sync::atomic::Ordering::SeqCst) >= 2);
    }

    #[test]
    fn optimizer_meets_target_with_a_cheaper_route_than_all_strong() {
        let opt = RouteOptimizer::new(0.95);
        let chosen = opt.optimize().expect("0.95 is feasible");
        assert!(chosen.expected_accuracy >= 0.95);
        let baseline = Role::ALL.iter().map(|r| (*r, ModelProfile::gpt_4o())).collect::<Vec<_>>();
        let baseline_cost = opt.predicted_cost(&baseline);
        assert!(
            chosen.expected_cost_usd < baseline_cost,
            "chosen {} at {} not under baseline {}",
            chosen.route,
            chosen.expected_cost_usd,
            baseline_cost
        );
        // A cheap route only clears the target because its fixer
        // recovers the extra first-try failures: llama's fix skill is
        // not enough, so the fixer must be a stronger tier.
        assert_ne!(chosen.spec.model(Role::Fix).unwrap().name, "llama3.1-70b");
    }

    #[test]
    fn a_tight_target_forces_the_strong_fixer() {
        // At 0.999 only gpt-4o's fix skill leaves little enough
        // unrecovered error; the other roles can still go cheap, so the
        // chosen route beats the uniform-strong baseline on price.
        let opt = RouteOptimizer::new(0.999);
        let chosen = opt.optimize().expect("0.999 is feasible");
        assert_eq!(chosen.spec.model(Role::Fix).unwrap().name, "gpt-4o");
        assert!(chosen.spec.model(Role::Refine).unwrap().name != "gpt-4o");
        let baseline = Role::ALL.iter().map(|r| (*r, ModelProfile::gpt_4o())).collect::<Vec<_>>();
        assert!(chosen.expected_cost_usd < opt.predicted_cost(&baseline));
    }

    #[test]
    fn optimizer_emits_route_decision_event() {
        let sink = std::sync::Arc::new(catdb_trace::TraceSink::new());
        let _guard = catdb_trace::install(sink.clone());
        RouteOptimizer::new(0.95).optimize().unwrap();
        let t = sink.snapshot();
        let decisions: Vec<_> =
            t.events.iter().filter(|r| r.event.kind() == "route_decision").collect();
        assert_eq!(decisions.len(), 1);
        if let TraceEvent::RouteDecision {
            considered,
            candidates,
            expected_cost_usd,
            baseline_cost_usd,
            ..
        } = &decisions[0].event
        {
            assert_eq!(*considered, 256); // 4 known models ^ 4 roles
            assert!(!candidates.is_empty());
            assert!(expected_cost_usd < baseline_cost_usd);
        } else {
            unreachable!()
        }
    }

    #[test]
    fn an_impossible_target_falls_back_to_uniform_strong() {
        let spec = resolve_route("auto", 1.1).unwrap();
        assert_eq!(
            spec.canonical(&ModelProfile::gpt_4o()),
            "refine=gpt-4o,generate=gpt-4o,select=gpt-4o,fix=gpt-4o"
        );
    }

    #[test]
    fn observed_volumes_rescale_costs() {
        let sink = std::sync::Arc::new(catdb_trace::TraceSink::new());
        sink.emit(TraceEvent::PromptBuilt { task: "feature_type_inference".into(), tokens: 10 });
        sink.emit(TraceEvent::LlmCall {
            model: "gpt-4o".into(),
            prompt_tokens: 50_000,
            completion_tokens: 9_000,
            cost: 0.2,
        });
        let t = sink.snapshot();
        let base = RouteOptimizer::new(0.95);
        let scaled = RouteOptimizer::new(0.95).with_observed(&t);
        let table: Vec<(Role, ModelProfile)> =
            Role::ALL.iter().map(|r| (*r, ModelProfile::gpt_4o())).collect();
        // Refinement dominated the observed run, so its priced volume
        // (and with it the total) must grow past the default shape.
        assert!(scaled.predicted_cost(&table) > base.predicted_cost(&table));
    }
}

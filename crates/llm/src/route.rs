//! Per-role model routing: send each pipeline role to its own model.
//!
//! CatDB's prompt stream is not homogeneous — catalog refinement asks
//! short classification questions, chain-stage generation writes whole
//! pipeline programs, model selection picks a learner, and fix re-prompts
//! repair a failing program. The paper runs every role on one model per
//! experiment; SNIPPETS.md Snippet 3 and the prompt-generation literature
//! argue for a registry that assigns a cheap model to the mechanical
//! roles and a strong model where errors are expensive. [`RouteSpec`]
//! parses the `--route refine=llama,generate=gpt-4o,fix=gpt-4o-mini`
//! syntax, [`RoutedLlm`] dispatches each prompt by its `<TASK>` tag, and
//! [`RouteOptimizer`] enumerates assignments to find the cheapest one
//! meeting a target end-to-end accuracy, using the same Table-2 fault
//! frequencies that drive the simulator.
//!
//! Routing composes with everything below it unchanged: each role's
//! backend is a full [`ResilientClient`] (retry, breaker, degradation
//! ladder), and the scheduler keys its completion cache on
//! [`LanguageModel::model_for`], so identical prompts routed to
//! different models never share a cache entry while re-runs of the same
//! route stay warm.

use crate::client::{Completion, LanguageModel, LlmError};
use crate::fault::FaultSpec;
use crate::profile::ModelProfile;
use crate::prompt::{LlmTaskKind, Prompt};
use crate::resilient::{ResilientClient, RetryPolicy};
use catdb_trace::{Trace, TraceEvent};
use std::fmt;
use std::sync::Arc;

/// The four routable pipeline roles, in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// Catalog refinement: feature-type inference and categorical-value
    /// deduplication prompts (Section 3.2).
    Refine,
    /// Pipeline generation: the single CatDB prompt or the chain's
    /// preprocessing / feature-engineering stage prompts (Algorithm 3).
    Generate,
    /// Model-selection prompts (the chain's final stage).
    Select,
    /// Error-fix re-prompts from the error-management loop (Algorithm 4).
    Fix,
}

impl Role {
    pub const ALL: [Role; 4] = [Role::Refine, Role::Generate, Role::Select, Role::Fix];

    /// The `--route` key for this role.
    pub fn name(self) -> &'static str {
        match self {
            Role::Refine => "refine",
            Role::Generate => "generate",
            Role::Select => "select",
            Role::Fix => "fix",
        }
    }

    /// Parse a `--route` key.
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "refine" => Some(Role::Refine),
            "generate" => Some(Role::Generate),
            "select" => Some(Role::Select),
            "fix" => Some(Role::Fix),
            _ => None,
        }
    }

    /// The role that owns a prompt task.
    pub fn of_task(task: LlmTaskKind) -> Role {
        match task {
            LlmTaskKind::FeatureTypeInference | LlmTaskKind::CategoricalRefinement => Role::Refine,
            LlmTaskKind::ModelSelection => Role::Select,
            LlmTaskKind::ErrorFix => Role::Fix,
            LlmTaskKind::PipelineGeneration
            | LlmTaskKind::Preprocessing
            | LlmTaskKind::FeatureEngineering
            | LlmTaskKind::Unknown => Role::Generate,
        }
    }

    /// Classify a prompt by scanning for its `<TASK>` tag. Prompts
    /// without a recognizable tag route as [`Role::Generate`] — the
    /// conservative default, since generation carries the strongest
    /// model in every sensible route.
    pub fn of_prompt(prompt: &Prompt) -> Role {
        for text in [&prompt.system, &prompt.user] {
            for line in text.lines() {
                let trimmed = line.trim();
                if let Some(rest) = trimmed.strip_prefix("<TASK>") {
                    if let Some(tag) = rest.strip_suffix("</TASK>") {
                        return Role::of_task(LlmTaskKind::parse(tag.trim()));
                    }
                }
            }
        }
        Role::Generate
    }
}

/// A structured `--route` parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The spec string was empty (or all-whitespace/commas).
    EmptySpec,
    /// An entry had no `=` separator.
    MissingSeparator { entry: String },
    /// The key before `=` is not one of `refine|generate|select|fix`.
    UnknownRole { role: String },
    /// The value after `=` is not a known model or alias.
    UnknownModel { model: String },
    /// The same role was assigned twice.
    DuplicateRole { role: String },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::EmptySpec => {
                write!(f, "empty --route spec; expected role=model[,role=model...]")
            }
            RouteError::MissingSeparator { entry } => {
                write!(f, "route entry '{entry}' has no '='; expected role=model")
            }
            RouteError::UnknownRole { role } => {
                write!(f, "unknown route role '{role}'; roles are refine, generate, select, fix")
            }
            RouteError::UnknownModel { model } => write!(
                f,
                "unknown route model '{model}'; known models: gpt-4o, gemini-1.5-pro, \
                 llama3.1-70b, gpt-4o-mini (aliases: gemini, llama, mini)"
            ),
            RouteError::DuplicateRole { role } => {
                write!(f, "route role '{role}' assigned more than once")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A parsed role → model assignment. Roles left out of the spec fall
/// back to the run's default model when the route is materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteSpec {
    assigned: Vec<(Role, ModelProfile)>,
}

impl RouteSpec {
    /// Parse `role=model[,role=model...]`. Models accept the aliases of
    /// [`ModelProfile::resolve_alias`]. Every failure is a structured
    /// [`RouteError`] naming the offending entry.
    pub fn parse(spec: &str) -> Result<RouteSpec, RouteError> {
        let entries: Vec<&str> = spec.split(',').map(str::trim).filter(|e| !e.is_empty()).collect();
        if entries.is_empty() {
            return Err(RouteError::EmptySpec);
        }
        let mut assigned: Vec<(Role, ModelProfile)> = Vec::new();
        for entry in entries {
            let (role_s, model_s) = entry
                .split_once('=')
                .ok_or_else(|| RouteError::MissingSeparator { entry: entry.to_string() })?;
            let role = Role::parse(role_s.trim())
                .ok_or_else(|| RouteError::UnknownRole { role: role_s.trim().to_string() })?;
            let model = ModelProfile::by_name(model_s.trim())
                .ok_or_else(|| RouteError::UnknownModel { model: model_s.trim().to_string() })?;
            if assigned.iter().any(|(r, _)| *r == role) {
                return Err(RouteError::DuplicateRole { role: role.name().to_string() });
            }
            assigned.push((role, model));
        }
        Ok(RouteSpec { assigned })
    }

    /// A spec assigning `model` to every role.
    pub fn uniform(model: ModelProfile) -> RouteSpec {
        RouteSpec { assigned: Role::ALL.iter().map(|r| (*r, model.clone())).collect() }
    }

    /// The model assigned to `role`, if the spec names one.
    pub fn model(&self, role: Role) -> Option<&ModelProfile> {
        self.assigned.iter().find(|(r, _)| *r == role).map(|(_, m)| m)
    }

    /// Full per-role table with `default` filling unassigned roles,
    /// in [`Role::ALL`] order.
    pub fn resolve(&self, default: &ModelProfile) -> Vec<(Role, ModelProfile)> {
        Role::ALL
            .iter()
            .map(|r| (*r, self.model(*r).cloned().unwrap_or_else(|| default.clone())))
            .collect()
    }

    /// Canonical `role=model,...` string in [`Role::ALL`] order, with
    /// unassigned roles resolved against `default`. Two specs that
    /// route identically render identically.
    pub fn canonical(&self, default: &ModelProfile) -> String {
        self.resolve(default)
            .iter()
            .map(|(r, m)| format!("{}={}", r.name(), m.name))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// A [`LanguageModel`] that dispatches each prompt to the backend its
/// role is routed to. Roles sharing a model share one backend (and
/// therefore one circuit breaker and one seeded fault stream), so a
/// route is exactly as deterministic as its distinct backends — backend
/// responses depend only on (seed, prompt), never on arrival order.
pub struct RoutedLlm {
    /// One backend per distinct routed model, creation order.
    backends: Vec<Arc<dyn LanguageModel>>,
    /// `Role::ALL`-indexed backend index and routed model name.
    by_role: [usize; 4],
    names: [String; 4],
}

impl RoutedLlm {
    /// Build from explicit per-role backends, deduplicated by
    /// `model_name()`. `table` must cover all four roles (use
    /// [`RouteSpec::resolve`]).
    pub fn from_backends(table: Vec<(Role, Arc<dyn LanguageModel>)>) -> RoutedLlm {
        let mut backends: Vec<Arc<dyn LanguageModel>> = Vec::new();
        let mut by_role = [0usize; 4];
        let mut names: [String; 4] = Default::default();
        for (role, backend) in table {
            let name = backend.model_name().to_string();
            let idx = match backends.iter().position(|b| b.model_name() == name) {
                Some(i) => i,
                None => {
                    backends.push(backend);
                    backends.len() - 1
                }
            };
            let slot = Role::ALL.iter().position(|r| *r == role).expect("role in ALL");
            by_role[slot] = idx;
            names[slot] = name;
        }
        assert!(names.iter().all(|n| !n.is_empty()), "route table must cover all roles");
        RoutedLlm { backends, by_role, names }
    }

    /// The standard simulated stack for a route: one
    /// [`ResilientClient::simulated`] per distinct routed model, all
    /// seeded with the same base `seed` and fault surface. Shared
    /// seeding keeps routed runs byte-deterministic at any concurrency:
    /// a backend's response depends only on (seed, prompt), so the set
    /// of distinct models — not their call interleaving — fixes the
    /// output.
    pub fn simulated(
        default: &ModelProfile,
        spec: &RouteSpec,
        faults: FaultSpec,
        policy: RetryPolicy,
        seed: u64,
    ) -> RoutedLlm {
        let mut built: Vec<(String, Arc<dyn LanguageModel>)> = Vec::new();
        let mut table: Vec<(Role, Arc<dyn LanguageModel>)> = Vec::new();
        for (role, profile) in spec.resolve(default) {
            let backend = match built.iter().find(|(n, _)| *n == profile.name) {
                Some((_, b)) => b.clone(),
                None => {
                    let b: Arc<dyn LanguageModel> = Arc::new(ResilientClient::simulated(
                        profile.clone(),
                        faults,
                        policy.clone(),
                        seed,
                    ));
                    built.push((profile.name.clone(), b.clone()));
                    b
                }
            };
            table.push((role, backend));
        }
        RoutedLlm::from_backends(table)
    }

    /// The routed model name for each role, [`Role::ALL`] order.
    pub fn routed_names(&self) -> &[String; 4] {
        &self.names
    }

    fn slot(&self, prompt: &Prompt) -> usize {
        let role = Role::of_prompt(prompt);
        Role::ALL.iter().position(|r| *r == role).expect("role in ALL")
    }
}

impl LanguageModel for RoutedLlm {
    /// The generate-role model: the identity shown in error traces and
    /// degradation events, since generation is the role they concern.
    fn model_name(&self) -> &str {
        let generate = Role::ALL.iter().position(|r| *r == Role::Generate).expect("in ALL");
        &self.names[generate]
    }

    fn context_window(&self) -> usize {
        let generate = Role::ALL.iter().position(|r| *r == Role::Generate).expect("in ALL");
        self.backends[self.by_role[generate]].context_window()
    }

    fn complete(&self, prompt: &Prompt) -> Result<Completion, LlmError> {
        self.backends[self.by_role[self.slot(prompt)]].complete(prompt)
    }

    fn model_for(&self, prompt: &Prompt) -> &str {
        &self.names[self.slot(prompt)]
    }
}

/// Default `--route-target-accuracy` for `--route auto`.
pub const DEFAULT_ROUTE_TARGET_ACCURACY: f64 = 0.95;

/// Default per-role `(input, output)` token volumes used when the
/// optimizer has no observed trace — rough fig12-workload shapes.
const DEFAULT_VOLUME: [(f64, f64); 4] =
    [(2_400.0, 500.0), (6_000.0, 1_600.0), (1_200.0, 300.0), (3_000.0, 900.0)];

/// Error-fix rounds Algorithm 4 grants before falling back.
const FIX_ROUNDS: i32 = 3;

/// One enumerated route with its predicted quality and price.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteCandidate {
    pub route: String,
    pub spec: RouteSpec,
    pub expected_accuracy: f64,
    pub expected_cost_usd: f64,
}

/// Enumerates every assignment of known models to roles and picks the
/// cheapest one whose predicted end-to-end accuracy meets the target.
///
/// The accuracy model composes the same per-model frequencies the
/// simulator draws from: a role's first-try error rate comes from its
/// routed profile (instruction following for refinement, the Table-2
/// fault mix for generation, selection quality for model choice), and
/// the fix role's `fix_skill` discounts every other role's error by the
/// chance [`FIX_ROUNDS`] repair rounds all fail. The cost model prices
/// per-role token volumes — observed ones when a trace is supplied,
/// fig12-shaped defaults otherwise — at each routed model's API rates,
/// with fix volume scaled by the generation error it exists to repair.
pub struct RouteOptimizer {
    pub target_accuracy: f64,
    candidates: Vec<ModelProfile>,
    volumes: [(f64, f64); 4],
}

impl RouteOptimizer {
    pub fn new(target_accuracy: f64) -> RouteOptimizer {
        RouteOptimizer {
            target_accuracy,
            candidates: ModelProfile::known_models(),
            volumes: DEFAULT_VOLUME,
        }
    }

    /// Scale the default per-role volumes by a trace's observed
    /// `llm_tokens_by_task()`, so the optimizer prices the workload the
    /// run actually sends. Roles absent from the trace keep defaults.
    pub fn with_observed(mut self, trace: &Trace) -> RouteOptimizer {
        let mut observed = [(0.0f64, 0.0f64); 4];
        for (task, (input, output)) in trace.llm_tokens_by_task() {
            let role = Role::of_task(LlmTaskKind::parse(&task));
            let slot = Role::ALL.iter().position(|r| *r == role).expect("in ALL");
            observed[slot].0 += input as f64;
            observed[slot].1 += output as f64;
        }
        for (slot, (input, output)) in observed.iter().enumerate() {
            if *input > 0.0 || *output > 0.0 {
                self.volumes[slot] = (*input, *output);
            }
        }
        self
    }

    /// A role's first-try failure probability under `profile`.
    fn role_error(role: Role, profile: &ModelProfile) -> f64 {
        match role {
            Role::Refine => 1.0 - profile.instruction_following,
            Role::Generate => {
                1.0 - (1.0 - profile.semantic_fault_rate)
                    * (1.0 - profile.syntax_fault_rate)
                    * (1.0 - profile.env_fault_rate)
            }
            Role::Select => 1.0 - profile.quality,
            // The fix role has no first-try slot of its own; it enters
            // the model as every other role's recovery channel.
            Role::Fix => 0.0,
        }
    }

    /// Predicted end-to-end success probability of a full route table.
    pub fn predicted_accuracy(table: &[(Role, ModelProfile)]) -> f64 {
        let fix_rel =
            table.iter().find(|(r, _)| *r == Role::Fix).map(|(_, m)| m.fix_skill).unwrap_or(0.0);
        let unrecovered = (1.0 - fix_rel).powi(FIX_ROUNDS);
        table
            .iter()
            .filter(|(r, _)| *r != Role::Fix)
            .map(|(r, m)| 1.0 - Self::role_error(*r, m) * unrecovered)
            .product()
    }

    /// Predicted billed cost of a route table at the given volumes.
    fn predicted_cost(&self, table: &[(Role, ModelProfile)]) -> f64 {
        let gen_error = table
            .iter()
            .find(|(r, _)| *r == Role::Generate)
            .map(|(_, m)| Self::role_error(Role::Generate, m))
            .unwrap_or(0.0);
        table
            .iter()
            .map(|(role, m)| {
                let slot = Role::ALL.iter().position(|r| r == role).expect("in ALL");
                let (input, output) = self.volumes[slot];
                // Fix prompts only exist in proportion to generation
                // failures; an error-free generator bills no fix tokens.
                let weight = if *role == Role::Fix { gen_error * FIX_ROUNDS as f64 } else { 1.0 };
                m.cost_usd((input * weight) as usize, (output * weight) as usize)
            })
            .sum()
    }

    fn candidate_for(&self, table: Vec<(Role, ModelProfile)>) -> RouteCandidate {
        let spec = RouteSpec { assigned: table.clone() };
        // Every role is explicitly assigned, so the default is unused;
        // gpt-4o is passed only to satisfy the signature.
        let route = spec.canonical(&ModelProfile::gpt_4o());
        RouteCandidate {
            route,
            spec,
            expected_accuracy: Self::predicted_accuracy(&table),
            expected_cost_usd: self.predicted_cost(&table),
        }
    }

    /// Enumerate all `models^roles` assignments, keep those meeting the
    /// target, and return the cheapest (ties broken by canonical route
    /// string, so the choice is deterministic). The all-gpt-4o route is
    /// the baseline. Emits a [`TraceEvent::RouteDecision`] with the
    /// feasible shortlist. Returns `None` when no assignment reaches
    /// the target.
    pub fn optimize(&self) -> Option<RouteCandidate> {
        let n = self.candidates.len();
        let mut feasible: Vec<RouteCandidate> = Vec::new();
        let mut considered = 0usize;
        // Mixed-radix counter over candidate indices — deterministic
        // enumeration order, no recursion.
        let mut idx = [0usize; 4];
        loop {
            let table: Vec<(Role, ModelProfile)> = Role::ALL
                .iter()
                .enumerate()
                .map(|(slot, role)| (*role, self.candidates[idx[slot]].clone()))
                .collect();
            considered += 1;
            let cand = self.candidate_for(table);
            if cand.expected_accuracy >= self.target_accuracy {
                feasible.push(cand);
            }
            let mut slot = 0;
            loop {
                idx[slot] += 1;
                if idx[slot] < n {
                    break;
                }
                idx[slot] = 0;
                slot += 1;
                if slot == 4 {
                    break;
                }
            }
            if slot == 4 {
                break;
            }
        }
        feasible.sort_by(|a, b| {
            a.expected_cost_usd
                .partial_cmp(&b.expected_cost_usd)
                .expect("finite costs")
                .then_with(|| a.route.cmp(&b.route))
        });
        let baseline =
            self.candidate_for(Role::ALL.iter().map(|r| (*r, ModelProfile::gpt_4o())).collect());
        let chosen = feasible.first().cloned();
        if let Some(chosen) = &chosen {
            catdb_trace::emit(TraceEvent::RouteDecision {
                target_accuracy: self.target_accuracy,
                considered,
                candidates: feasible
                    .iter()
                    .take(5)
                    .map(|c| (c.route.clone(), c.expected_accuracy, c.expected_cost_usd))
                    .collect(),
                route: chosen.route.clone(),
                expected_accuracy: chosen.expected_accuracy,
                expected_cost_usd: chosen.expected_cost_usd,
                baseline_cost_usd: baseline.expected_cost_usd,
            });
        }
        chosen
    }
}

/// Resolve a `--route` value: an explicit spec parses directly, the
/// literal `auto` runs the optimizer at `target_accuracy`. When no
/// assignment reaches the target, `auto` falls back to the uniform
/// strong route (all gpt-4o) — the best-accuracy assignment available —
/// rather than failing the run.
pub fn resolve_route(spec: &str, target_accuracy: f64) -> Result<RouteSpec, RouteError> {
    if spec.trim() == "auto" {
        return Ok(RouteOptimizer::new(target_accuracy)
            .optimize()
            .map(|c| c.spec)
            .unwrap_or_else(|| RouteSpec::uniform(ModelProfile::gpt_4o())));
    }
    RouteSpec::parse(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimLlm;

    fn tagged(task: LlmTaskKind) -> Prompt {
        Prompt::new("system", format!("<TASK>{}</TASK>\nbody", task.tag()))
    }

    #[test]
    fn roles_classify_prompts_by_task_tag() {
        assert_eq!(Role::of_prompt(&tagged(LlmTaskKind::FeatureTypeInference)), Role::Refine);
        assert_eq!(Role::of_prompt(&tagged(LlmTaskKind::CategoricalRefinement)), Role::Refine);
        assert_eq!(Role::of_prompt(&tagged(LlmTaskKind::PipelineGeneration)), Role::Generate);
        assert_eq!(Role::of_prompt(&tagged(LlmTaskKind::Preprocessing)), Role::Generate);
        assert_eq!(Role::of_prompt(&tagged(LlmTaskKind::FeatureEngineering)), Role::Generate);
        assert_eq!(Role::of_prompt(&tagged(LlmTaskKind::ModelSelection)), Role::Select);
        assert_eq!(Role::of_prompt(&tagged(LlmTaskKind::ErrorFix)), Role::Fix);
        assert_eq!(Role::of_prompt(&Prompt::new("no", "tags here")), Role::Generate);
    }

    #[test]
    fn parse_accepts_aliases_and_partial_specs() {
        let spec = RouteSpec::parse("refine=llama,generate=gpt-4o,fix=mini").unwrap();
        assert_eq!(spec.model(Role::Refine).unwrap().name, "llama3.1-70b");
        assert_eq!(spec.model(Role::Generate).unwrap().name, "gpt-4o");
        assert_eq!(spec.model(Role::Fix).unwrap().name, "gpt-4o-mini");
        assert!(spec.model(Role::Select).is_none());
        let table = spec.resolve(&ModelProfile::gemini_1_5_pro());
        assert_eq!(table[2].1.name, "gemini-1.5-pro");
        assert_eq!(
            spec.canonical(&ModelProfile::gemini_1_5_pro()),
            "refine=llama3.1-70b,generate=gpt-4o,select=gemini-1.5-pro,fix=gpt-4o-mini"
        );
    }

    #[test]
    fn parse_rejects_malformed_specs_with_structured_errors() {
        assert_eq!(RouteSpec::parse(""), Err(RouteError::EmptySpec));
        assert_eq!(RouteSpec::parse(" , ,"), Err(RouteError::EmptySpec));
        assert_eq!(
            RouteSpec::parse("refine"),
            Err(RouteError::MissingSeparator { entry: "refine".into() })
        );
        assert_eq!(
            RouteSpec::parse("profile=gpt-4o"),
            Err(RouteError::UnknownRole { role: "profile".into() })
        );
        assert_eq!(
            RouteSpec::parse("refine=claude"),
            Err(RouteError::UnknownModel { model: "claude".into() })
        );
        assert_eq!(
            RouteSpec::parse("refine=llama,refine=gpt-4o"),
            Err(RouteError::DuplicateRole { role: "refine".into() })
        );
    }

    #[test]
    fn routed_llm_dispatches_by_role_and_reports_routed_model() {
        let spec = RouteSpec::parse("refine=llama,generate=gpt-4o").unwrap();
        let table: Vec<(Role, Arc<dyn LanguageModel>)> = spec
            .resolve(&ModelProfile::gpt_4o())
            .into_iter()
            .map(|(role, profile)| {
                (role, Arc::new(SimLlm::new(profile, 7)) as Arc<dyn LanguageModel>)
            })
            .collect();
        let routed = RoutedLlm::from_backends(table);
        // gpt-4o serves generate, select, fix — three roles, one backend.
        assert_eq!(routed.backends.len(), 2);
        assert_eq!(routed.model_name(), "gpt-4o");
        assert_eq!(routed.model_for(&tagged(LlmTaskKind::FeatureTypeInference)), "llama3.1-70b");
        assert_eq!(routed.model_for(&tagged(LlmTaskKind::PipelineGeneration)), "gpt-4o");
        assert_eq!(routed.model_for(&tagged(LlmTaskKind::ErrorFix)), "gpt-4o");
        assert!(routed.complete(&tagged(LlmTaskKind::PipelineGeneration)).is_ok());
    }

    #[test]
    fn routed_completion_matches_direct_backend_call() {
        // The router must be a pure dispatcher: a routed completion is
        // byte-identical to calling the role's backend directly.
        let spec = RouteSpec::parse("refine=llama").unwrap();
        let routed = RoutedLlm::simulated(
            &ModelProfile::gpt_4o(),
            &spec,
            FaultSpec::none(),
            RetryPolicy::default(),
            42,
        );
        let direct = ResilientClient::simulated(
            ModelProfile::llama3_1_70b(),
            FaultSpec::none(),
            RetryPolicy::default(),
            42,
        );
        let prompt = tagged(LlmTaskKind::FeatureTypeInference);
        assert_eq!(routed.complete(&prompt).unwrap().text, direct.complete(&prompt).unwrap().text);
    }

    #[test]
    fn optimizer_meets_target_with_a_cheaper_route_than_all_strong() {
        let opt = RouteOptimizer::new(0.95);
        let chosen = opt.optimize().expect("0.95 is feasible");
        assert!(chosen.expected_accuracy >= 0.95);
        let baseline = Role::ALL.iter().map(|r| (*r, ModelProfile::gpt_4o())).collect::<Vec<_>>();
        let baseline_cost = opt.predicted_cost(&baseline);
        assert!(
            chosen.expected_cost_usd < baseline_cost,
            "chosen {} at {} not under baseline {}",
            chosen.route,
            chosen.expected_cost_usd,
            baseline_cost
        );
        // A cheap route only clears the target because its fixer
        // recovers the extra first-try failures: llama's fix skill is
        // not enough, so the fixer must be a stronger tier.
        assert_ne!(chosen.spec.model(Role::Fix).unwrap().name, "llama3.1-70b");
    }

    #[test]
    fn a_tight_target_forces_the_strong_fixer() {
        // At 0.999 only gpt-4o's fix skill leaves little enough
        // unrecovered error; the other roles can still go cheap, so the
        // chosen route beats the uniform-strong baseline on price.
        let opt = RouteOptimizer::new(0.999);
        let chosen = opt.optimize().expect("0.999 is feasible");
        assert_eq!(chosen.spec.model(Role::Fix).unwrap().name, "gpt-4o");
        assert!(chosen.spec.model(Role::Refine).unwrap().name != "gpt-4o");
        let baseline = Role::ALL.iter().map(|r| (*r, ModelProfile::gpt_4o())).collect::<Vec<_>>();
        assert!(chosen.expected_cost_usd < opt.predicted_cost(&baseline));
    }

    #[test]
    fn optimizer_emits_route_decision_event() {
        let sink = std::sync::Arc::new(catdb_trace::TraceSink::new());
        let _guard = catdb_trace::install(sink.clone());
        RouteOptimizer::new(0.95).optimize().unwrap();
        let t = sink.snapshot();
        let decisions: Vec<_> =
            t.events.iter().filter(|r| r.event.kind() == "route_decision").collect();
        assert_eq!(decisions.len(), 1);
        if let TraceEvent::RouteDecision {
            considered,
            candidates,
            expected_cost_usd,
            baseline_cost_usd,
            ..
        } = &decisions[0].event
        {
            assert_eq!(*considered, 256); // 4 known models ^ 4 roles
            assert!(!candidates.is_empty());
            assert!(expected_cost_usd < baseline_cost_usd);
        } else {
            unreachable!()
        }
    }

    #[test]
    fn an_impossible_target_falls_back_to_uniform_strong() {
        let spec = resolve_route("auto", 1.1).unwrap();
        assert_eq!(
            spec.canonical(&ModelProfile::gpt_4o()),
            "refine=gpt-4o,generate=gpt-4o,select=gpt-4o,fix=gpt-4o"
        );
    }

    #[test]
    fn observed_volumes_rescale_costs() {
        let sink = std::sync::Arc::new(catdb_trace::TraceSink::new());
        sink.emit(TraceEvent::PromptBuilt { task: "feature_type_inference".into(), tokens: 10 });
        sink.emit(TraceEvent::LlmCall {
            model: "gpt-4o".into(),
            prompt_tokens: 50_000,
            completion_tokens: 9_000,
            cost: 0.2,
        });
        let t = sink.snapshot();
        let base = RouteOptimizer::new(0.95);
        let scaled = RouteOptimizer::new(0.95).with_observed(&t);
        let table: Vec<(Role, ModelProfile)> =
            Role::ALL.iter().map(|r| (*r, ModelProfile::gpt_4o())).collect();
        // Refinement dominated the observed run, so its priced volume
        // (and with it the total) must grow past the default shape.
        assert!(scaled.predicted_cost(&table) > base.predicted_cost(&table));
    }
}

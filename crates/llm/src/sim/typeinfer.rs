//! Feature-type inference responses.
//!
//! The catalog refinement (paper Section 3.2) sends each candidate column's
//! name and ~10 sample values to the LLM and asks for its ML feature type.
//! The simulator infers the type from the samples with an accuracy knob:
//! a weak model occasionally mislabels borderline columns, which downstream
//! shows up as slightly worse refined catalogs.

use crate::profile::ModelProfile;
use crate::prompt::PromptSpec;
use rand::rngs::StdRng;
use rand::Rng;

/// The separators list features commonly use, in detection order.
const SEPARATORS: &[&str] = &[",", ";", "|", "/"];

fn looks_numeric(s: &str) -> bool {
    s.trim().parse::<f64>().is_ok()
}

fn looks_boolean(s: &str) -> bool {
    matches!(
        s.trim().to_ascii_lowercase().as_str(),
        "true" | "false" | "yes" | "no" | "y" | "n" | "0" | "1" | "t" | "f"
    )
}

/// Infer the feature type of one column from its samples. Returns the type
/// label and, for lists, the separator.
pub fn infer_feature_type(samples: &[String]) -> (String, Option<String>) {
    let non_empty: Vec<&str> =
        samples.iter().map(|s| s.as_str()).filter(|s| !s.trim().is_empty()).collect();
    if non_empty.is_empty() {
        return ("categorical".to_string(), None);
    }
    if non_empty.iter().all(|s| looks_boolean(s)) {
        return ("boolean".to_string(), None);
    }
    if non_empty.iter().all(|s| looks_numeric(s)) {
        return ("numerical".to_string(), None);
    }
    // List detection: a separator splitting most samples into >1 atomic
    // (short, non-sentence) items.
    for sep in SEPARATORS {
        let split_counts: Vec<usize> = non_empty
            .iter()
            .map(|s| s.split(sep).filter(|p| !p.trim().is_empty()).count())
            .collect();
        let multi = split_counts.iter().filter(|&&c| c > 1).count();
        if multi * 2 >= non_empty.len() {
            let items_short = non_empty.iter().all(|s| {
                s.split(sep)
                    .all(|item| item.trim().len() <= 24 && item.trim().split(' ').count() <= 3)
            });
            if items_short {
                return ("list".to_string(), Some(sep.to_string()));
            }
        }
    }
    // Composite values: a stable multi-token shape mixing digit and alpha
    // parts ("7050 CA") — reported as `sentence` so the catalog's
    // refinement splits them into part columns.
    let shapes: Vec<Vec<char>> = non_empty
        .iter()
        .map(|s| {
            s.split_whitespace()
                .map(|t| {
                    if t.chars().all(|c| c.is_ascii_digit()) {
                        'd'
                    } else if t.chars().all(|c| c.is_alphabetic()) {
                        'a'
                    } else {
                        'm'
                    }
                })
                .collect()
        })
        .collect();
    if let Some(first) = shapes.first() {
        if first.len() >= 2 && first.contains(&'d') && shapes.iter().all(|s| s == first) {
            return ("sentence".to_string(), None);
        }
    }
    // Sentence: long values or many words.
    let avg_words: f64 = non_empty.iter().map(|s| s.split_whitespace().count()).sum::<usize>()
        as f64
        / non_empty.len() as f64;
    if avg_words > 3.0 || non_empty.iter().any(|s| s.len() > 48) {
        return ("sentence".to_string(), None);
    }
    ("categorical".to_string(), None)
}

/// A deliberately wrong-but-plausible alternative (what a weak model says).
fn confuse(label: &str) -> String {
    match label {
        "list" => "sentence".to_string(),
        "sentence" => "categorical".to_string(),
        "boolean" => "categorical".to_string(),
        "numerical" => "categorical".to_string(),
        _ => "sentence".to_string(),
    }
}

/// Build the full response for a feature-type-inference prompt: one
/// `col "name" feature="..."` line per column.
pub fn respond(spec: &PromptSpec, profile: &ModelProfile, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for col in &spec.columns {
        let samples = col.values.clone().unwrap_or_default();
        let (mut label, sep) = infer_feature_type(&samples);
        // Imperfect models occasionally mislabel borderline columns.
        let accuracy = 0.9 + 0.1 * profile.quality;
        if rng.gen::<f64>() > accuracy {
            label = confuse(&label);
        }
        match (&label[..], sep) {
            ("list", Some(sep)) => {
                out.push_str(&format!("col \"{}\" feature=\"list\" sep=\"{sep}\"\n", col.name))
            }
            _ => out.push_str(&format!("col \"{}\" feature=\"{label}\"\n", col.name)),
        }
    }
    out
}

/// Parse a type-inference response back into `(column, feature, sep)`
/// triples (used by the catalog; exposed here so both sides share one
/// format definition).
pub fn parse_response(text: &str) -> Vec<(String, String, Option<String>)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let attrs = crate::prompt_attrs(line);
        // Lines look like: col "name" feature="list" sep=","
        if let Some(rest) = line.trim().strip_prefix("col ") {
            let name =
                rest.strip_prefix('"').and_then(|r| r.split('"').next()).map(|s| s.to_string());
            if let (Some(name), Some(feature)) = (name, attrs.get("feature")) {
                out.push((name, feature.clone(), attrs.get("sep").cloned()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn detects_core_types() {
        assert_eq!(infer_feature_type(&s(&["1.5", "2", "-3"])).0, "numerical");
        assert_eq!(infer_feature_type(&s(&["yes", "no", "yes"])).0, "boolean");
        assert_eq!(infer_feature_type(&s(&["red", "blue", "green"])).0, "categorical");
    }

    #[test]
    fn detects_list_with_separator() {
        let (label, sep) = infer_feature_type(&s(&["Python, Java", "C++, Python", "Java"]));
        assert_eq!(label, "list");
        assert_eq!(sep.as_deref(), Some(","));
    }

    #[test]
    fn detects_sentences() {
        let (label, _) = infer_feature_type(&s(&[
            "I have been working for twelve years in retail",
            "two years of customer support experience",
        ]));
        assert_eq!(label, "sentence");
    }

    #[test]
    fn mixed_experience_values_are_sentences_not_lists() {
        let (label, _) = infer_feature_type(&s(&["12 Months", "two years", "1 year"]));
        assert_eq!(label, "categorical"); // short phrases, few words
    }
}

//! Categorical value refinement responses.
//!
//! The catalog refinement submits the distinct values of a categorical
//! column (with frequencies when available) and asks for a mapping of
//! semantically-equivalent variants onto canonical values — the paper's
//! Gender example: {F, Female, fem., M, Male} → {Female, Male}. The
//! simulator implements the merging with normalization, abbreviation
//! resolution, and edit-distance typo folding; response lines are
//! `map "original" => "canonical"`.

use crate::profile::ModelProfile;
use crate::prompt::PromptSpec;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// Levenshtein distance (small strings only).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Semantic normalization of duration phrases ("12 Months" and
/// "two years" both mean an amount of years) — the kind of equivalence
/// only a language model resolves, shown in the paper's Experience column
/// (Figure 5: {12 Months, two years, ...} → {1 year, 2 years, ...}).
fn semantic_normalize(v: &str) -> Option<String> {
    const WORDS: [&str; 13] = [
        "zero", "one", "two", "three", "four", "five", "six", "seven", "eight", "nine", "ten",
        "eleven", "twelve",
    ];
    let lower = v.trim().to_lowercase();
    let parts: Vec<&str> = lower.split_whitespace().collect();
    if parts.len() != 2 {
        return None;
    }
    let n = parts[0]
        .parse::<f64>()
        .ok()
        .or_else(|| WORDS.iter().position(|w| *w == parts[0]).map(|i| i as f64))?;
    let unit = parts[1].trim_end_matches('.').trim_end_matches('s');
    let years = match unit {
        "year" | "yr" => n,
        "month" | "mo" => n / 12.0,
        _ => return None,
    };
    if years.fract().abs() < 1e-9 && years >= 0.0 {
        Some(format!("{} year", years as i64))
    } else {
        Some(format!("{years:.2} year"))
    }
}

fn normalize(v: &str) -> String {
    if let Some(sem) = semantic_normalize(v) {
        return sem;
    }
    let mut s = v.trim().to_lowercase();
    s.retain(|c| c.is_alphanumeric() || c == ' ');
    let s = s.split_whitespace().collect::<Vec<_>>().join(" ");
    // Crude singular/plural folding.
    if s.len() > 3 && s.ends_with('s') && !s.ends_with("ss") {
        s[..s.len() - 1].to_string()
    } else {
        s
    }
}

/// A value with an optional occurrence count ("Male:53").
fn split_count(v: &str) -> (&str, usize) {
    match v.rsplit_once(':') {
        Some((name, count)) => match count.parse::<usize>() {
            Ok(c) => (name, c),
            Err(_) => (v, 1),
        },
        None => (v, 1),
    }
}

/// Compute the canonical mapping for a list of distinct values.
/// Returns pairs `(original, canonical)` only where they differ.
pub fn refine_values(values: &[String]) -> Vec<(String, String)> {
    // Group by normalized form; canonical is the most frequent (ties: the
    // longest, then lexicographic — prefers "Female" over "F").
    let parsed: Vec<(String, usize)> = values
        .iter()
        .map(|v| {
            let (name, count) = split_count(v);
            (name.to_string(), count)
        })
        .collect();
    let mut groups: HashMap<String, Vec<(String, usize)>> = HashMap::new();
    for (name, count) in &parsed {
        groups.entry(normalize(name)).or_default().push((name.clone(), *count));
    }

    // Fold small groups into larger groups when the normalized keys are one
    // edit apart (typos) or when the key is the first letter of another
    // (abbreviations: "f" → "female") and the expansion is unambiguous.
    let mut keys: Vec<String> = groups.keys().cloned().collect();
    keys.sort();
    let mut fold: HashMap<String, String> = HashMap::new();
    for key in &keys {
        if key.len() == 1 {
            let expansions: Vec<&String> =
                keys.iter().filter(|k| k.len() > 1 && k.starts_with(key.as_str())).collect();
            if expansions.len() == 1 {
                fold.insert(key.clone(), expansions[0].clone());
                continue;
            }
        }
        if key.len() >= 4 {
            // Typo folding into a strictly-more-frequent group. Values
            // that differ in their digits ("1 year" vs "2 year") are NOT
            // typos — only letter-level edits fold.
            let digits = |s: &str| -> String { s.chars().filter(|c| c.is_ascii_digit()).collect() };
            let my_weight: usize = groups[key].iter().map(|(_, c)| c).sum();
            let candidate = keys
                .iter()
                .filter(|k| {
                    *k != key
                        && k.len() >= 4
                        && edit_distance(k, key) == 1
                        && digits(k) == digits(key)
                })
                .max_by_key(|k| groups[*k].iter().map(|(_, c)| c).sum::<usize>());
            if let Some(c) = candidate {
                let weight: usize = groups[c].iter().map(|(_, c)| c).sum();
                if weight > my_weight {
                    fold.insert(key.clone(), c.clone());
                }
            }
        }
    }

    // Resolve fold chains (one level is enough by construction, but be
    // safe) and build the final mapping.
    let resolve = |k: &String| -> String {
        let mut cur = k.clone();
        let mut hops = 0;
        while let Some(next) = fold.get(&cur) {
            cur = next.clone();
            hops += 1;
            if hops > 3 {
                break;
            }
        }
        cur
    };

    // Merge folded groups.
    let mut merged: HashMap<String, Vec<(String, usize)>> = HashMap::new();
    for (key, members) in groups {
        merged.entry(resolve(&key)).or_default().extend(members);
    }

    let mut mapping = Vec::new();
    for (_, members) in merged {
        if members.len() < 2 {
            continue;
        }
        let canonical = members
            .iter()
            .max_by(|a, b| {
                a.1.cmp(&b.1).then_with(|| a.0.len().cmp(&b.0.len())).then_with(|| b.0.cmp(&a.0))
            })
            .expect("non-empty group")
            .0
            .clone();
        for (name, _) in members {
            if name != canonical {
                mapping.push((name, canonical.clone()));
            }
        }
    }
    mapping.sort();
    mapping
}

/// Build the response for a categorical-refinement prompt. The prompt
/// carries one `col` line per column with `values="a|b:3|c"`.
pub fn respond(spec: &PromptSpec, profile: &ModelProfile, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for col in &spec.columns {
        let Some(values) = &col.values else { continue };
        let mut mapping = refine_values(values);
        // A weak model occasionally misses a merge (drops a mapping line).
        let reliability = 0.92 + 0.08 * profile.quality;
        mapping.retain(|_| rng.gen::<f64>() < reliability);
        for (orig, canon) in mapping {
            out.push_str(&format!("map \"{}\" \"{orig}\" => \"{canon}\"\n", col.name));
        }
    }
    out
}

/// Parse a refinement response into `(column, original, canonical)`.
pub fn parse_response(text: &str) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("map ") else { continue };
        let mut parts = Vec::new();
        let mut cur = String::new();
        let mut in_q = false;
        for ch in rest.chars() {
            if ch == '"' {
                if in_q {
                    parts.push(std::mem::take(&mut cur));
                }
                in_q = !in_q;
            } else if in_q {
                cur.push(ch);
            }
        }
        if parts.len() == 3 {
            out.push((parts[0].clone(), parts[1].clone(), parts[2].clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn merges_gender_variants() {
        let mapping = refine_values(&vals(&["F:10", "Female:40", "M:5", "Male:45", "male:2"]));
        let get = |orig: &str| mapping.iter().find(|(o, _)| o == orig).map(|(_, c)| c.as_str());
        assert_eq!(get("F"), Some("Female"));
        assert_eq!(get("M"), Some("Male"));
        assert_eq!(get("male"), Some("Male"));
        assert_eq!(get("Female"), None); // canonical keeps itself
    }

    #[test]
    fn folds_typos_into_frequent_spelling() {
        let mapping = refine_values(&vals(&["Torontoo:1", "Toronto:99"]));
        assert_eq!(mapping, vec![("Torontoo".to_string(), "Toronto".to_string())]);
    }

    #[test]
    fn distinct_values_stay_distinct() {
        let mapping = refine_values(&vals(&["red", "blue", "green"]));
        assert!(mapping.is_empty());
    }

    #[test]
    fn ambiguous_abbreviation_is_left_alone() {
        // "m" could be "male" or "manager" → no merge.
        let mapping = refine_values(&vals(&["m:5", "male:10", "manager:10"]));
        assert!(!mapping.iter().any(|(o, _)| o == "m"));
    }

    #[test]
    fn plural_folding() {
        let mapping = refine_values(&vals(&["2 years:4", "2 year:9"]));
        assert_eq!(mapping.len(), 1);
        assert_eq!(mapping[0].1, "2 year");
    }

    #[test]
    fn response_round_trips() {
        let text = "map \"gender\" \"F\" => \"Female\"\nmap \"gender\" \"M\" => \"Male\"\n";
        let parsed = parse_response(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], ("gender".to_string(), "F".to_string(), "Female".to_string()));
    }

    #[test]
    fn duration_phrases_merge_semantically() {
        let mapping = refine_values(&vals(&["1 year:10", "12 Months:3", "one year:2"]));
        // All three share the canonical duration; the most frequent
        // spelling wins.
        let get = |orig: &str| mapping.iter().find(|(o, _)| o == orig).map(|(_, c)| c.as_str());
        assert_eq!(get("12 Months"), Some("1 year"));
        assert_eq!(get("one year"), Some("1 year"));
    }

    #[test]
    fn different_durations_stay_distinct() {
        let mapping = refine_values(&vals(&["1 year:5", "2 years:5", "3 years:5"]));
        assert!(mapping.is_empty(), "{mapping:?}");
    }

    #[test]
    fn fractional_durations_normalize_consistently() {
        let mapping = refine_values(&vals(&["6 months:4", "6 Months:2"]));
        assert_eq!(mapping.len(), 1);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("", "ab"), 2);
    }
}

//! The deterministic LLM simulator.
//!
//! `SimLlm` implements [`LanguageModel`] by parsing the structured prompt
//! text (within its context window) and producing a response for the
//! recognized task: pipeline generation (full or chain stage), error
//! fixing, feature-type inference, or categorical-value refinement.
//!
//! Determinism: every call derives its RNG from `(seed, prompt hash,
//! repeat index)`, where the repeat index counts prior completions of the
//! *same* prompt — the same session replays identically, repeated calls
//! with the same prompt differ (the paper observes variation across
//! iterations "even with LLM temperature set to zero"), and the response
//! to a given prompt does not depend on what *other* prompts were served
//! before it. That last property makes the simulator order-independent:
//! a concurrent scheduler may interleave distinct prompts in any order
//! and every caller still receives byte-identical text.

pub mod codegen;
pub mod dedup;
pub mod fixer;
pub mod typeinfer;

use crate::client::{Completion, LanguageModel, LlmError};
use crate::profile::ModelProfile;
use crate::prompt::{LlmTaskKind, Prompt, PromptSpec};
use crate::tokens::{estimate_tokens, TokenUsage};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Per-prompt completion counters: total calls served plus how many
/// times each distinct prompt (by hash) has been completed.
#[derive(Default)]
pub(crate) struct CallCounters {
    total: u64,
    per_prompt: HashMap<u64, u64>,
}

impl CallCounters {
    /// Record one completion of `prompt_hash`, returning its 0-based
    /// repeat index.
    pub(crate) fn next_repeat(&mut self, prompt_hash: u64) -> u64 {
        self.total += 1;
        let slot = self.per_prompt.entry(prompt_hash).or_insert(0);
        let repeat = *slot;
        *slot += 1;
        repeat
    }

    pub(crate) fn total(&self) -> u64 {
        self.total
    }
}

/// Hash of the rendered prompt text, shared by the simulator and the
/// fault injector so both index their repeat streams the same way.
pub(crate) fn prompt_hash(prompt: &Prompt) -> u64 {
    let mut h = DefaultHasher::new();
    prompt.user.hash(&mut h);
    prompt.system.hash(&mut h);
    h.finish()
}

/// A simulated LLM with a fixed capability profile.
pub struct SimLlm {
    profile: ModelProfile,
    temperature: f64,
    seed: u64,
    calls: Mutex<CallCounters>,
}

impl SimLlm {
    pub fn new(profile: ModelProfile, seed: u64) -> SimLlm {
        SimLlm { profile, temperature: 0.0, seed, calls: Mutex::new(CallCounters::default()) }
    }

    pub fn with_temperature(mut self, temperature: f64) -> SimLlm {
        self.temperature = temperature;
        self
    }

    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Number of completions served so far.
    pub fn call_count(&self) -> u64 {
        self.calls.lock().total()
    }

    fn rng_for(&self, prompt: &Prompt, repeat: u64) -> StdRng {
        let seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(prompt_hash(prompt))
            .wrapping_add(repeat.wrapping_mul(0x2545_F491_4F6C_DD1D));
        StdRng::seed_from_u64(seed)
    }
}

impl LanguageModel for SimLlm {
    fn model_name(&self) -> &str {
        &self.profile.name
    }

    fn context_window(&self) -> usize {
        self.profile.context_window
    }

    fn complete(&self, prompt: &Prompt) -> Result<Completion, LlmError> {
        let prompt_tokens = prompt.token_len();
        if prompt_tokens > self.profile.context_window {
            return Err(LlmError::ContextLengthExceeded {
                prompt_tokens,
                window: self.profile.context_window,
            });
        }
        let repeat = self.calls.lock().next_repeat(prompt_hash(prompt));
        let mut rng = self.rng_for(prompt, repeat);
        let spec = PromptSpec::parse(prompt, self.profile.context_window);

        let text = match spec.task {
            Some(LlmTaskKind::PipelineGeneration) => codegen::generate(
                &spec,
                &self.profile,
                self.temperature,
                &mut rng,
                codegen::GenStage::Full,
            ),
            Some(LlmTaskKind::Preprocessing) => codegen::generate(
                &spec,
                &self.profile,
                self.temperature,
                &mut rng,
                codegen::GenStage::Preprocessing,
            ),
            Some(LlmTaskKind::FeatureEngineering) => codegen::generate(
                &spec,
                &self.profile,
                self.temperature,
                &mut rng,
                codegen::GenStage::FeatureEngineering,
            ),
            Some(LlmTaskKind::ModelSelection) => codegen::generate(
                &spec,
                &self.profile,
                self.temperature,
                &mut rng,
                codegen::GenStage::ModelSelection,
            ),
            Some(LlmTaskKind::ErrorFix) => fixer::fix(&spec, &self.profile, &mut rng),
            Some(LlmTaskKind::FeatureTypeInference) => {
                typeinfer::respond(&spec, &self.profile, &mut rng)
            }
            Some(LlmTaskKind::CategoricalRefinement) => {
                dedup::respond(&spec, &self.profile, &mut rng)
            }
            _ => "I can help with data-centric ML pipeline generation.".to_string(),
        };

        // Verbosity pads output cost (comments the model writes around the
        // code), without altering the payload.
        let output_tokens =
            ((estimate_tokens(&text) as f64) * self.profile.verbosity).round() as usize;
        let latency_seconds =
            (prompt_tokens + output_tokens) as f64 / 1000.0 * self.profile.seconds_per_1k_tokens;
        catdb_trace::emit(catdb_trace::TraceEvent::LlmCall {
            model: self.profile.name.clone(),
            prompt_tokens,
            completion_tokens: output_tokens,
            cost: self.profile.cost_usd(prompt_tokens, output_tokens),
        });
        Ok(Completion {
            text,
            usage: TokenUsage::new(prompt_tokens, output_tokens),
            latency_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline_prompt() -> Prompt {
        Prompt::new(
            "You are a data science assistant.",
            r#"<TASK>pipeline_generation</TASK>
<DATASET name="toy" rows="500" target="y" task="binary_classification" />
<SCHEMA>
col name="a" type="float" feature="numerical" missing="0.1"
col name="b" type="string" feature="categorical" distinct_count="3" values="x|y|z"
col name="y" type="string" feature="categorical" distinct_count="2"
</SCHEMA>
<RULES>
rule preprocessing impute_missing
rule fe encode_categorical
rule model model_selection
</RULES>
"#,
        )
    }

    #[test]
    fn completes_pipeline_generation() {
        let llm = SimLlm::new(
            ModelProfile {
                semantic_fault_rate: 0.0,
                syntax_fault_rate: 0.0,
                env_fault_rate: 0.0,
                ..ModelProfile::gpt_4o()
            },
            1,
        );
        let c = llm.complete(&pipeline_prompt()).unwrap();
        assert!(c.text.contains("pipeline {"));
        assert!(c.text.contains("model classifier"));
        assert!(c.usage.input > 0 && c.usage.output > 0);
        assert!(c.latency_seconds > 0.0);
    }

    #[test]
    fn oversized_prompt_is_rejected() {
        let mut profile = ModelProfile::gpt_4o();
        profile.context_window = 10;
        let llm = SimLlm::new(profile, 1);
        let err = llm.complete(&pipeline_prompt()).unwrap_err();
        assert!(matches!(err, LlmError::ContextLengthExceeded { .. }));
    }

    #[test]
    fn repeated_calls_vary_but_replay_identically() {
        let prompt = pipeline_prompt();
        let llm_a = SimLlm::new(ModelProfile::gemini_1_5_pro(), 9);
        let first_a = llm_a.complete(&prompt).unwrap().text;
        let second_a = llm_a.complete(&prompt).unwrap().text;
        let llm_b = SimLlm::new(ModelProfile::gemini_1_5_pro(), 9);
        let first_b = llm_b.complete(&prompt).unwrap().text;
        // Same repeat index → identical output; the repeat counter moves
        // the stream between identical calls.
        assert_eq!(first_a, first_b);
        // (first and second may or may not differ, but the counter ensures
        // the streams are decoupled; just check both are valid programs.)
        assert!(second_a.contains("model "));
        assert_eq!(llm_a.call_count(), 2);
    }

    #[test]
    fn responses_do_not_depend_on_other_prompts_served_before() {
        let pipeline = pipeline_prompt();
        let other = Prompt::new("You are a data science assistant.", "hello there");
        // Session 1 serves (other, pipeline); session 2 serves (pipeline)
        // directly. Per-prompt repeat streams make both pipelines equal —
        // the property a concurrent scheduler relies on.
        let llm_a = SimLlm::new(ModelProfile::gemini_1_5_pro(), 9);
        llm_a.complete(&other).unwrap();
        let interleaved = llm_a.complete(&pipeline).unwrap().text;
        let llm_b = SimLlm::new(ModelProfile::gemini_1_5_pro(), 9);
        let direct = llm_b.complete(&pipeline).unwrap().text;
        assert_eq!(interleaved, direct);
    }

    #[test]
    fn unknown_task_yields_generic_reply() {
        let llm = SimLlm::new(ModelProfile::gpt_4o(), 1);
        let c = llm.complete(&Prompt::new("", "hello there")).unwrap();
        assert!(!c.text.contains("pipeline {"));
    }
}

//! Error-fix responses.
//!
//! CatDB's error prompts combine the erroneous pipeline (`<CODE>`), the
//! error message with line numbers (`<ERROR>`), and — for runtime errors —
//! projected catalog metadata (Figure 7). The simulator repairs the
//! program accordingly: syntax problems are cleaned deterministically
//! (they are fixed "typically in one iteration" per the paper), while
//! semantic repairs depend on the model's `fix_skill` and on whether the
//! prompt actually carries the metadata the fix needs.

use crate::profile::ModelProfile;
use crate::prompt::PromptSpec;
use rand::rngs::StdRng;
use rand::Rng;

const STEP_KEYWORDS: &[&str] = &[
    "require",
    "impute",
    "scale",
    "encode",
    "drop",
    "drop_high_missing",
    "drop_constant",
    "dedup",
    "drop_null_rows",
    "outliers",
    "augment",
    "rebalance",
    "select_topk",
    "model",
];

fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

fn nearest_keyword(word: &str) -> Option<&'static str> {
    STEP_KEYWORDS
        .iter()
        .map(|k| (*k, edit_distance(word, k)))
        .filter(|(_, d)| *d <= 2)
        .min_by_key(|(_, d)| *d)
        .map(|(k, _)| k)
}

/// Deterministic syntax cleaning: strip prose, restore braces, fix keyword
/// typos, close quotes, terminate statements.
pub fn clean_syntax(code: &str) -> String {
    let mut lines = Vec::new();
    for raw in code.lines() {
        let t = raw.trim();
        if t.is_empty() || t == "pipeline {" || t == "}" || t.starts_with('#') {
            continue;
        }
        let mut t = t.to_string();
        let first = t.split_whitespace().next().unwrap_or("").trim_end_matches(';').to_string();
        if !STEP_KEYWORDS.contains(&first.as_str()) {
            match nearest_keyword(&first) {
                Some(k) => t = t.replacen(&first, k, 1),
                None => continue, // prose line — drop it
            }
        }
        if t.matches('"').count() % 2 == 1 {
            match t.rfind(';') {
                Some(p) => t.insert(p, '"'),
                None => t.push('"'),
            }
        }
        if !t.ends_with(';') {
            t.push(';');
        }
        lines.push(format!("  {t}"));
    }
    format!("pipeline {{\n{}\n}}\n", lines.join("\n"))
}

/// The error code embedded in a rendered `PipelineError` ("(snake_case)")
/// and the quoted entity (column/package) if present.
fn parse_error(message: &str) -> (Option<String>, Option<String>) {
    let code = message
        .rfind('(')
        .and_then(|open| {
            message[open + 1..]
                .find(')')
                .map(|close| message[open + 1..open + 1 + close].to_string())
        })
        .filter(|c| c.chars().all(|ch| ch.is_ascii_lowercase() || ch == '_'));
    let entity = message.find('\'').and_then(|open| {
        message[open + 1..].find('\'').map(|close| message[open + 1..open + 1 + close].to_string())
    });
    (code, entity)
}

fn insert_before_model(lines: &mut Vec<String>, new_lines: &[&str]) {
    let pos = lines
        .iter()
        .position(|l| l.trim_start().starts_with("model "))
        .unwrap_or(lines.len().saturating_sub(1));
    for (i, nl) in new_lines.iter().enumerate() {
        lines.insert(pos + i, format!("  {nl}"));
    }
}

/// Apply the semantic repair for one error kind to the body lines
/// (wrapper lines excluded).
fn repair(lines: &mut Vec<String>, code: &str, entity: Option<&str>, spec: &PromptSpec) {
    match code {
        "column_not_found" => {
            let Some(bad) = entity else { return };
            // Prefer mapping to a real column from the metadata.
            let replacement = spec
                .columns
                .iter()
                .map(|c| (c.name.clone(), edit_distance(&c.name, bad)))
                .filter(|(_, d)| *d <= 4)
                .min_by_key(|(_, d)| *d)
                .map(|(n, _)| n)
                .or_else(|| bad.strip_suffix("_id").map(|s| s.to_string()));
            match replacement {
                Some(real) if real != bad => {
                    for l in lines.iter_mut() {
                        *l = l.replace(&format!("\"{bad}\""), &format!("\"{real}\""));
                    }
                }
                _ => lines.retain(|l| !l.contains(&format!("\"{bad}\""))),
            }
        }
        "nan_in_features" => {
            insert_before_model(
                lines,
                &["impute * strategy median;", "impute * strategy most_frequent;"],
            );
        }
        "string_conversion" => {
            let hash = entity
                .and_then(|e| {
                    // The message quotes an example value, not the column;
                    // look for any known high-cardinality column instead.
                    let _ = e;
                    spec.columns.iter().find(|c| c.distinct_count.unwrap_or(0) > 60)
                })
                .is_some();
            let step =
                if hash { "encode * method hash buckets 32;" } else { "encode * method onehot;" };
            insert_before_model(lines, &[step]);
        }
        "wrong_type_for_operation" => {
            if let Some(col) = entity {
                for l in lines.iter_mut() {
                    if l.contains(&format!("\"{col}\"")) && l.contains("strategy") {
                        *l = l
                            .replace("strategy mean", "strategy most_frequent")
                            .replace("strategy median", "strategy most_frequent");
                    }
                }
            }
        }
        "target_not_found" => {
            if let Some(real) = &spec.dataset.target {
                if let Some(bad) = entity {
                    for l in lines.iter_mut() {
                        *l = l.replace(&format!("\"{bad}\""), &format!("\"{real}\""));
                    }
                }
            } else if let Some(bad) = entity {
                if let Some(stripped) = bad.strip_suffix("_column") {
                    for l in lines.iter_mut() {
                        *l = l.replace(&format!("\"{bad}\""), &format!("\"{stripped}\""));
                    }
                }
            }
        }
        "model_task_mismatch" => {
            let classification =
                spec.dataset.task.as_deref().map(|t| t.contains("class")).unwrap_or(true);
            for l in lines.iter_mut() {
                if !l.trim_start().starts_with("model ") {
                    continue;
                }
                if classification {
                    *l = l
                        .replace("model regressor", "model classifier")
                        .replace("ridge", "logistic");
                } else {
                    *l = l
                        .replace("model classifier", "model regressor")
                        .replace("logistic", "ridge")
                        .replace("gaussian_nb", "ridge")
                        .replace("tabpfn", "random_forest");
                }
            }
        }
        "memory_exhausted" => {
            for l in lines.iter_mut() {
                if l.contains("method onehot") {
                    *l = l.replace("method onehot", "method hash buckets 32");
                }
            }
        }
        "model_limit_exceeded" => {
            for l in lines.iter_mut() {
                *l = l.replace(" tabpfn ", " random_forest ");
            }
            lines.retain(|l| !l.contains("require \"tabpfn\""));
        }
        "unseen_label" | "single_class_target" | "empty_training_set" => {
            // Row-dropping / row-synthesizing steps are the usual culprits.
            let killers = ["outliers", "dedup", "augment", "rebalance", "drop_null_rows"];
            if let Some(i) =
                lines.iter().position(|l| killers.iter().any(|k| l.trim_start().starts_with(k)))
            {
                lines.remove(i);
            }
        }
        "numerical_instability" => {
            for l in lines.iter_mut() {
                if l.trim_start().starts_with("model classifier") {
                    *l = "  model classifier random_forest target TARGET trees 50;".to_string();
                } else if l.trim_start().starts_with("model regressor") {
                    *l = "  model regressor random_forest target TARGET trees 50;".to_string();
                }
            }
            // Restore the target name from metadata or leave a wildcard the
            // next round will fix.
            let target = spec.dataset.target.clone().unwrap_or_else(|| "target".into());
            for l in lines.iter_mut() {
                *l = l.replace("target TARGET", &format!("target \"{target}\""));
            }
        }
        "missing_package" => {
            let Some(pkg) = entity else { return };
            lines.retain(|l| !(l.contains("require") && l.contains(&format!("\"{pkg}"))));
            // If a model step depended on it, fall back to a pre-installed
            // algorithm.
            for l in lines.iter_mut() {
                if pkg == "boosting" {
                    *l = l.replace("gradient_boosting", "random_forest");
                }
                if pkg == "tabpfn" {
                    *l = l.replace(" tabpfn ", " random_forest ");
                }
            }
        }
        "package_version_mismatch" => {
            for l in lines.iter_mut() {
                if l.contains("require") && l.contains("==") {
                    if let (Some(start), Some(end)) = (l.find("=="), l.rfind('"')) {
                        if start < end {
                            l.replace_range(start..end, "");
                        }
                    }
                }
            }
        }
        _ => {}
    }
}

/// Produce the fixed pipeline for an error-fix prompt.
pub fn fix(spec: &PromptSpec, profile: &ModelProfile, rng: &mut StdRng) -> String {
    let Some(code) = &spec.code else {
        return "pipeline {\n}\n".to_string();
    };
    let cleaned = clean_syntax(code);
    let Some(error) = &spec.error else {
        return cleaned;
    };
    let (kind, entity) = parse_error(error);
    let Some(kind) = kind else {
        return cleaned;
    };

    let is_syntax = matches!(
        kind.as_str(),
        "unterminated_string"
            | "unbalanced_braces"
            | "missing_semicolon"
            | "unknown_keyword"
            | "stray_prose"
    );
    if is_syntax {
        // Deterministic cleanup handles all syntax classes in one shot.
        return cleaned;
    }

    // Semantic repairs require skill, and metadata when the error concerns
    // data semantics.
    let has_metadata = !spec.columns.is_empty() || spec.dataset.target.is_some();
    let success_prob = if has_metadata {
        profile.fix_skill
    } else {
        profile.fix_skill * profile.fix_without_metadata
    };
    if rng.gen::<f64>() > success_prob {
        // Unsuccessful round: the model returns a confidently wrong,
        // superficially cleaned pipeline; the loop will try again.
        return cleaned;
    }

    let mut lines: Vec<String> = cleaned
        .lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && t != "pipeline {" && t != "}"
        })
        .map(|l| l.to_string())
        .collect();
    repair(&mut lines, &kind, entity.as_deref(), spec);
    format!("pipeline {{\n{}\n}}\n", lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::Prompt;
    use rand::SeedableRng;

    fn spec_of(user: &str) -> PromptSpec {
        PromptSpec::parse(&Prompt::new("", user), 100_000)
    }

    fn sure_profile() -> ModelProfile {
        ModelProfile { fix_skill: 1.0, ..ModelProfile::gpt_4o() }
    }

    #[test]
    fn clean_syntax_removes_prose_and_restores_structure() {
        let dirty =
            "Here is your pipeline:\npipeline {\n  imputate \"age\" strategy mean\n  drop \"x;\n";
        let cleaned = clean_syntax(dirty);
        assert!(cleaned.starts_with("pipeline {\n"));
        assert!(cleaned.trim_end().ends_with('}'));
        assert!(cleaned.contains("impute \"age\" strategy mean;"));
        assert!(cleaned.contains("drop \"x\";"), "{cleaned}");
        assert!(!cleaned.contains("Here is"));
    }

    #[test]
    fn fixes_hallucinated_column_with_metadata() {
        let user = r#"<TASK>error_fix</TASK>
<DATASET target="y" task="binary_classification" />
<SCHEMA>
col name="age" type="float"
</SCHEMA>
<CODE>
pipeline {
  impute "age_id" strategy mean;
  model classifier random_forest target "y";
}
</CODE>
<ERROR>
[RE] line 2: column 'age_id' not found (column_not_found)
</ERROR>
"#;
        let spec = spec_of(user);
        let mut rng = StdRng::seed_from_u64(1);
        let fixed = fix(&spec, &sure_profile(), &mut rng);
        assert!(fixed.contains("impute \"age\" strategy mean;"), "{fixed}");
    }

    #[test]
    fn fixes_nan_by_adding_imputation() {
        let user = r#"<TASK>error_fix</TASK>
<DATASET target="y" />
<CODE>
pipeline {
  model classifier random_forest target "y";
}
</CODE>
<ERROR>
[RE] line 2: input contains NaN or infinity (training features) (nan_in_features)
</ERROR>
"#;
        let spec = spec_of(user);
        let mut rng = StdRng::seed_from_u64(1);
        let fixed = fix(&spec, &sure_profile(), &mut rng);
        let impute_pos = fixed.find("impute *").expect("imputation added");
        let model_pos = fixed.find("model ").unwrap();
        assert!(impute_pos < model_pos);
    }

    #[test]
    fn fixes_task_mismatch_using_dataset_attr() {
        let user = r#"<TASK>error_fix</TASK>
<DATASET target="price" task="regression" />
<CODE>
pipeline {
  model classifier logistic target "price";
}
</CODE>
<ERROR>
[RE] line 2: task is regression but the pipeline trains a classifier (model_task_mismatch)
</ERROR>
"#;
        let spec = spec_of(user);
        let mut rng = StdRng::seed_from_u64(1);
        let fixed = fix(&spec, &sure_profile(), &mut rng);
        assert!(fixed.contains("model regressor ridge"), "{fixed}");
    }

    #[test]
    fn low_skill_model_may_return_unrepaired_code() {
        let user = r#"<TASK>error_fix</TASK>
<CODE>
pipeline {
  model classifier random_forest target "y";
}
</CODE>
<ERROR>
[RE] line 2: input contains NaN or infinity (training features) (nan_in_features)
</ERROR>
"#;
        let spec = spec_of(user);
        let profile = ModelProfile { fix_skill: 0.0, ..ModelProfile::llama3_1_70b() };
        let mut rng = StdRng::seed_from_u64(1);
        let fixed = fix(&spec, &profile, &mut rng);
        assert!(!fixed.contains("impute"));
    }

    #[test]
    fn memory_fix_replaces_onehot_with_hashing() {
        let user = r#"<TASK>error_fix</TASK>
<DATASET target="y" />
<CODE>
pipeline {
  encode "id" method onehot;
  model classifier random_forest target "y";
}
</CODE>
<ERROR>
[RE] line 2: working set 99999999 bytes exceeds the 1000-byte memory limit (memory_exhausted)
</ERROR>
"#;
        let spec = spec_of(user);
        let mut rng = StdRng::seed_from_u64(1);
        let fixed = fix(&spec, &sure_profile(), &mut rng);
        assert!(fixed.contains("method hash buckets 32"), "{fixed}");
    }

    #[test]
    fn missing_hallucinated_package_is_dropped() {
        let user = r#"<TASK>error_fix</TASK>
<DATASET target="y" />
<CODE>
pipeline {
  require "auto_feature_magic";
  model classifier random_forest target "y";
}
</CODE>
<ERROR>
[KB] line 2: package 'auto_feature_magic' not found in index (missing_package)
</ERROR>
"#;
        let spec = spec_of(user);
        let mut rng = StdRng::seed_from_u64(1);
        let fixed = fix(&spec, &sure_profile(), &mut rng);
        assert!(!fixed.contains("auto_feature_magic"), "{fixed}");
    }
}

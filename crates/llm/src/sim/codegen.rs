//! Pipeline code generation — the heart of the LLM simulator.
//!
//! Given the parsed prompt (schema lines **S**, rule lines **R**, dataset
//! attributes), the simulator writes a pipeline-DSL program the way an LLM
//! would: it only acts on columns it *saw* (attention decays past the
//! budget — Figure 10c), honours each rule with the profile's
//! instruction-following probability, takes initiative on obviously needed
//! steps, and occasionally injects the semantic / syntax / environment
//! faults whose frequencies define the paper's error-trace dataset
//! (Table 2, Figure 8).

use crate::profile::ModelProfile;
use crate::prompt::{ColumnInfo, PromptSpec};
use rand::rngs::StdRng;
use rand::Rng;

/// Which part of the pipeline this call generates (chain stages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenStage {
    Full,
    Preprocessing,
    FeatureEngineering,
    ModelSelection,
}

fn is_numeric_col(c: &ColumnInfo) -> bool {
    matches!(c.feature.as_deref(), Some("numerical"))
        || (c.feature.is_none() && matches!(c.dtype.as_deref(), Some("int") | Some("float")))
}

fn is_stringy_col(c: &ColumnInfo) -> bool {
    matches!(c.feature.as_deref(), Some("categorical") | Some("sentence") | Some("list"))
        && matches!(c.dtype.as_deref(), Some("string") | None)
        || (c.feature.is_none() && c.dtype.as_deref() == Some("string"))
}

fn guess_target(spec: &PromptSpec) -> Option<String> {
    if let Some(t) = &spec.dataset.target {
        return Some(t.clone());
    }
    // LLM heuristic: a column named like a label, else the last column.
    for hint in ["target", "label", "class", "y", "outcome"] {
        if let Some(c) = spec.columns.iter().find(|c| c.name.eq_ignore_ascii_case(hint)) {
            return Some(c.name.clone());
        }
    }
    spec.columns.last().map(|c| c.name.clone())
}

/// Decide the model algorithm: rule-guided but open-ended (the paper's
/// rules "guide the LLM towards considering certain primitives" without
/// dictating the model).
fn choose_algo(
    classification: bool,
    profile: &ModelProfile,
    rng: &mut StdRng,
    prefer: Option<&str>,
) -> &'static str {
    if let Some(p) = prefer {
        // An explicit preference in the rules is almost always honoured.
        if rng.gen::<f64>() < 0.95 {
            return match p {
                "random_forest" => "random_forest",
                "gradient_boosting" => "gradient_boosting",
                "logistic" => "logistic",
                "ridge" => "ridge",
                "decision_tree" => "decision_tree",
                "knn" => "knn",
                _ => "random_forest",
            };
        }
    }
    // Quality biases the draw toward stronger learners.
    let q = profile.quality;
    let r: f64 = rng.gen();
    if classification {
        if r < 0.45 + 0.2 * q {
            "random_forest"
        } else if r < 0.65 + 0.25 * q {
            "gradient_boosting"
        } else if r < 0.85 {
            "logistic"
        } else if r < 0.95 {
            "decision_tree"
        } else {
            "knn"
        }
    } else if r < 0.45 + 0.2 * q {
        "random_forest"
    } else if r < 0.65 + 0.25 * q {
        "gradient_boosting"
    } else if r < 0.9 {
        "ridge"
    } else {
        "decision_tree"
    }
}

/// Packages needed by a body of step lines (textual scan — the simulator
/// reasons about its own output the way an LLM would, imperfectly).
fn needed_packages(lines: &[String]) -> Vec<&'static str> {
    let mut out = Vec::new();
    let text = lines.join("\n");
    if text.contains("method khot") || text.contains("method hash") {
        out.push("text_features");
    }
    if text.contains("method lof") {
        out.push("outlier_tools");
    }
    if text.contains("augment method") || text.contains("rebalance target") {
        out.push("imbalanced");
    }
    if text.contains("gradient_boosting") {
        out.push("boosting");
    }
    if text.contains(" tabpfn ") {
        out.push("tabpfn");
    }
    out
}

/// Extract the step lines of an existing `<CODE>` block (chain stages
/// extend the previous stage's program).
fn body_of(code: &str) -> Vec<String> {
    code.lines()
        .map(|l| l.trim())
        .filter(|l| {
            !l.is_empty()
                && *l != "pipeline {"
                && *l != "}"
                && !l.starts_with('#')
                && !l.starts_with("require ")
        })
        .map(|l| format!("  {l}"))
        .collect()
}

/// Generate pipeline text for the requested stage.
pub fn generate(
    spec: &PromptSpec,
    profile: &ModelProfile,
    temperature: f64,
    rng: &mut StdRng,
    stage: GenStage,
) -> String {
    // Attention pass: which schema lines and rules did the model "see"?
    let visible: Vec<&ColumnInfo> = spec
        .columns
        .iter()
        .filter(|c| rng.gen::<f64>() < profile.attention_at(c.token_pos))
        .collect();
    let honored = |name: &str, rng: &mut StdRng| -> bool {
        spec.rules.iter().any(|r| {
            r.name == name
                && rng.gen::<f64>()
                    < profile.instruction_following * profile.attention_at(r.token_pos)
        })
    };

    let target = guess_target(spec).unwrap_or_else(|| "target".to_string());
    let classification = spec
        .dataset
        .task
        .as_deref()
        .map(|t| t.contains("class") || t.contains("binary") || t.contains("multi"))
        .unwrap_or_else(|| {
            // Guess from the target column's metadata.
            spec.column(&target).map(|c| !is_numeric_col(c)).unwrap_or(true)
        });

    let mut pre: Vec<String> = Vec::new();
    let mut fe: Vec<String> = Vec::new();
    let mut model: Vec<String> = Vec::new();

    // ---- Pre-processing ----
    if matches!(stage, GenStage::Full | GenStage::Preprocessing) {
        if honored("drop_high_missing", rng) {
            pre.push("  drop_high_missing threshold 0.9;".to_string());
        }
        if honored("drop_constant", rng) {
            pre.push("  drop_constant;".to_string());
        }
        if honored("deduplicate", rng) {
            pre.push("  dedup approx;".to_string());
        }
        // Imputation: per-column when the prompt exposed missing ratios,
        // otherwise blanket wildcards if a rule asks or initiative fires.
        let mut any_specific = false;
        for col in &visible {
            if col.name == target {
                continue;
            }
            if let Some(missing) = col.missing {
                if missing > 0.0 {
                    any_specific = true;
                    if is_numeric_col(col) {
                        let strat = if rng.gen::<f64>() < 0.5 { "mean" } else { "median" };
                        pre.push(format!("  impute \"{}\" strategy {strat};", col.name));
                    } else {
                        pre.push(format!("  impute \"{}\" strategy most_frequent;", col.name));
                    }
                }
            }
        }
        if !any_specific {
            let wants = honored("impute_missing", rng)
                || rng.gen::<f64>() < profile.initiative * (1.0 - temperature * 0.3);
            if wants {
                pre.push("  impute * strategy median;".to_string());
                pre.push("  impute * strategy most_frequent;".to_string());
            }
        }
        if honored("outlier_removal", rng) {
            let method = match rng.gen_range(0..3) {
                0 => "iqr factor 1.5",
                1 => "zscore factor 3",
                _ => "lof k 10 factor 4",
            };
            pre.push(format!("  outliers * method {method};"));
        }
        if honored("rebalance", rng) {
            if classification {
                pre.push(format!("  rebalance target \"{target}\";"));
            } else {
                pre.push(format!("  augment method smogn target \"{target}\";"));
            }
        } else if honored("augmentation", rng) {
            let m = if classification { "adasyn" } else { "smogn" };
            pre.push(format!("  augment method {m} target \"{target}\";"));
        }
    }

    // ---- Feature engineering ----
    if matches!(stage, GenStage::Full | GenStage::FeatureEngineering) {
        let mut encoded_any = false;
        for col in &visible {
            if col.name == target || !is_stringy_col(col) {
                continue;
            }
            encoded_any = true;
            match col.feature.as_deref() {
                Some("list") => {
                    let sep = col.separator.clone().unwrap_or_else(|| ",".to_string());
                    fe.push(format!("  encode \"{}\" method khot sep \"{sep}\";", col.name));
                }
                Some("sentence") => {
                    fe.push(format!("  encode \"{}\" method hash buckets 24;", col.name));
                }
                Some("categorical") | None => {
                    let distinct =
                        col.distinct_count.or(col.values.as_ref().map(|v| v.len())).unwrap_or(8);
                    if distinct > 60 {
                        fe.push(format!("  encode \"{}\" method hash buckets 32;", col.name));
                    } else if rng.gen::<f64>() < 0.85 {
                        fe.push(format!("  encode \"{}\" method onehot;", col.name));
                    } else {
                        fe.push(format!("  encode \"{}\" method ordinal;", col.name));
                    }
                }
                _ => {
                    fe.push(format!("  encode \"{}\" method onehot;", col.name));
                }
            }
        }
        if !encoded_any
            && (honored("encode_categorical", rng) || rng.gen::<f64>() < profile.initiative)
        {
            // No per-column knowledge (e.g. schema truncated): blanket
            // encode everything textual.
            fe.push("  encode * method onehot;".to_string());
        }
        let outlier_guided = spec.rules.iter().any(|r| r.name == "outlier_removal");
        if honored("normalize", rng) {
            // With outlier guidance in the prompt, clipped min-max is the
            // robust choice (out-of-range inference values get contained).
            let method =
                if outlier_guided || rng.gen::<f64>() < 0.4 { "minmax" } else { "standard" };
            fe.push(format!("  scale * method {method};"));
        } else if outlier_guided && rng.gen::<f64>() < profile.initiative {
            fe.push("  scale * method minmax;".to_string());
        }
        if let Some(rule) = spec.rules.iter().find(|r| r.name == "feature_selection") {
            if rng.gen::<f64>()
                < profile.instruction_following * profile.attention_at(rule.token_pos)
            {
                let k = rule.attr("k").and_then(|s| s.parse::<usize>().ok()).unwrap_or(20);
                fe.push(format!("  select_topk {k} target \"{target}\";"));
            }
        }
    }

    // ---- Model selection ----
    if matches!(stage, GenStage::Full | GenStage::ModelSelection) {
        let prefer =
            spec.rule("model_selection").and_then(|r| r.attr("prefer").map(|s| s.to_string()));
        let algo = choose_algo(classification, profile, rng, prefer.as_deref());
        let family = if classification { "classifier" } else { "regressor" };
        let trees = (30.0 + 90.0 * profile.quality * rng.gen::<f64>()).round();
        let depth = (6.0 + 10.0 * rng.gen::<f64>()).round();
        let params = match algo {
            "random_forest" => format!(" trees {trees} depth {depth}"),
            "gradient_boosting" => format!(" rounds {} depth 4", (trees * 0.8).round()),
            "decision_tree" => format!(" depth {depth}"),
            "knn" => format!(" k {}", rng.gen_range(3..12)),
            "ridge" => " l2 1".to_string(),
            _ => String::new(),
        };
        model.push(format!("  model {family} {algo} target \"{target}\"{params};"));
    }

    // Assemble: previous chain code first, then the new stage's lines.
    let mut body: Vec<String> = Vec::new();
    if let Some(code) = &spec.code {
        body.extend(body_of(code));
    }
    body.extend(pre);
    body.extend(fe);
    body.extend(model);

    // Requires for everything the body uses.
    let mut requires: Vec<String> =
        needed_packages(&body).into_iter().map(|p| format!("  require \"{p}\";")).collect();

    // ---- Environment faults (KB class) ----
    if !requires.is_empty() && rng.gen::<f64>() < profile.env_fault_rate {
        if rng.gen::<f64>() < 0.6 {
            // Forget one dependency declaration AND the implicit import:
            // keep the step; the executor raises MissingPackage.
            let drop = rng.gen_range(0..requires.len());
            requires.remove(drop);
        } else {
            // Pin a stale version.
            let idx = rng.gen_range(0..requires.len());
            requires[idx] = requires[idx].replace("\";", "==0.9.0\";");
        }
    } else if rng.gen::<f64>() < profile.env_fault_rate * 0.3 {
        // Hallucinate a dependency that does not exist at all.
        requires.push("  require \"auto_feature_magic\";".to_string());
    }

    let mut lines = Vec::with_capacity(requires.len() + body.len() + 2);
    lines.push("pipeline {".to_string());
    lines.extend(requires);
    lines.extend(body);
    lines.push("}".to_string());

    // ---- Semantic faults (RE class) ----
    let sem_rate = profile.semantic_fault_rate * (1.0 + 0.5 * spec.truncated as u8 as f64);
    if rng.gen::<f64>() < sem_rate {
        apply_semantic_fault(&mut lines, &target, rng);
    }

    let mut text = lines.join("\n");
    text.push('\n');

    // ---- Syntax faults (SE class) ----
    if rng.gen::<f64>() < profile.syntax_fault_rate {
        text = apply_syntax_fault(text, rng);
    }
    text
}

/// Mutate the program with one plausible LLM semantic mistake.
fn apply_semantic_fault(lines: &mut Vec<String>, target: &str, rng: &mut StdRng) {
    for _ in 0..8 {
        match rng.gen_range(0..6) {
            // Hallucinate a column: mangle a referenced column name.
            0 => {
                let idx = lines.iter().position(|l| {
                    (l.contains("impute \"") || l.contains("encode \"") || l.contains("scale \""))
                        && l.contains('"')
                });
                if let Some(i) = idx {
                    if let Some(start) = lines[i].find('"') {
                        if let Some(len) = lines[i][start + 1..].find('"') {
                            let name = lines[i][start + 1..start + 1 + len].to_string();
                            lines[i] = lines[i].replacen(&name, &format!("{name}_id"), 1);
                            return;
                        }
                    }
                }
            }
            // Skip an imputation step.
            1 => {
                if let Some(i) = lines.iter().position(|l| l.trim_start().starts_with("impute")) {
                    lines.remove(i);
                    return;
                }
            }
            // Skip an encoding step.
            2 => {
                if let Some(i) = lines.iter().position(|l| l.trim_start().starts_with("encode")) {
                    lines.remove(i);
                    return;
                }
            }
            // Wrong model family.
            3 => {
                if let Some(i) = lines.iter().position(|l| l.contains("model classifier")) {
                    lines[i] = lines[i]
                        .replace("model classifier", "model regressor")
                        .replace("logistic", "ridge")
                        .replace("gaussian_nb", "ridge")
                        .replace("tabpfn", "ridge");
                    return;
                }
                if let Some(i) = lines.iter().position(|l| l.contains("model regressor")) {
                    lines[i] = lines[i]
                        .replace("model regressor", "model classifier")
                        .replace("ridge", "logistic");
                    return;
                }
            }
            // Wrong target name.
            4 => {
                if let Some(i) = lines.iter().position(|l| l.contains(&format!("\"{target}\""))) {
                    lines[i] =
                        lines[i].replace(&format!("\"{target}\""), &format!("\"{target}_column\""));
                    return;
                }
            }
            // Numeric strategy on a categorical column.
            _ => {
                if let Some(i) = lines.iter().position(|l| l.contains("strategy most_frequent")) {
                    lines[i] = lines[i].replace("strategy most_frequent", "strategy mean");
                    return;
                }
            }
        }
    }
    // Fallback if no mutation applied: drop the last body line.
    if lines.len() > 2 {
        let i = lines.len() - 2;
        lines.remove(i);
    }
}

/// Corrupt the program text with one plausible LLM syntax mistake.
fn apply_syntax_fault(text: String, rng: &mut StdRng) -> String {
    match rng.gen_range(0..5) {
        // Prose before the code block.
        0 => format!("Here is the generated pipeline for your dataset:\n{text}"),
        // Drop the final closing brace.
        1 => text.trim_end().trim_end_matches('}').to_string(),
        // Remove one semicolon.
        2 => {
            if let Some(pos) = text.find(';') {
                let mut t = text;
                t.remove(pos);
                t
            } else {
                text
            }
        }
        // Misspell a keyword.
        3 => text.replacen("impute", "imputate", 1).replacen("encode", "encodee", 1),
        // Unterminated string: drop one closing quote.
        _ => {
            if let Some(pos) = text.rfind("\";") {
                let mut t = text;
                t.remove(pos);
                t
            } else {
                text
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::Prompt;
    use rand::SeedableRng;

    fn spec_for(user: &str) -> PromptSpec {
        PromptSpec::parse(&Prompt::new("", user), 100_000)
    }

    fn reliable_profile() -> ModelProfile {
        ModelProfile {
            semantic_fault_rate: 0.0,
            syntax_fault_rate: 0.0,
            env_fault_rate: 0.0,
            instruction_following: 1.0,
            ..ModelProfile::gpt_4o()
        }
    }

    const SALARY_PROMPT: &str = r#"<TASK>pipeline_generation</TASK>
<DATASET name="salary" rows="1000" target="income" task="regression" />
<SCHEMA>
col name="age" type="float" feature="numerical" missing="0.1" min="20" max="60"
col name="gender" type="string" feature="categorical" missing="0" distinct_count="2" values="Male|Female"
col name="skills" type="string" feature="list" sep="," distinct="0.9"
col name="income" type="float" feature="numerical" missing="0"
</SCHEMA>
<RULES>
rule preprocessing impute_missing
rule fe encode_categorical
rule model model_selection
</RULES>
"#;

    #[test]
    fn generates_complete_pipeline_for_clean_profile() {
        let spec = spec_for(SALARY_PROMPT);
        let mut rng = StdRng::seed_from_u64(7);
        let text = generate(&spec, &reliable_profile(), 0.0, &mut rng, GenStage::Full);
        assert!(text.starts_with("pipeline {"), "{text}");
        assert!(text.contains("impute \"age\""), "{text}");
        assert!(text.contains("encode \"gender\" method"), "{text}");
        assert!(text.contains("encode \"skills\" method khot sep \",\";"), "{text}");
        assert!(text.contains("model regressor"), "{text}");
        assert!(text.contains("target \"income\""), "{text}");
        // khot needs text_features.
        assert!(text.contains("require \"text_features\";"), "{text}");
    }

    #[test]
    fn chain_stages_split_the_work() {
        let spec = spec_for(SALARY_PROMPT);
        let mut rng = StdRng::seed_from_u64(7);
        let pre = generate(&spec, &reliable_profile(), 0.0, &mut rng, GenStage::Preprocessing);
        assert!(pre.contains("impute"));
        assert!(!pre.contains("model "));

        // FE stage receives the preprocessing code and extends it.
        let fe_prompt = format!(
            "<TASK>feature_engineering</TASK>\n<DATASET target=\"income\" task=\"regression\" />\n<SCHEMA>\ncol name=\"gender\" type=\"string\" feature=\"categorical\" values=\"Male|Female\"\n</SCHEMA>\n<CODE>\n{pre}</CODE>\n"
        );
        let spec_fe = spec_for(&fe_prompt);
        let fe =
            generate(&spec_fe, &reliable_profile(), 0.0, &mut rng, GenStage::FeatureEngineering);
        assert!(fe.contains("impute"), "prior code preserved: {fe}");
        assert!(fe.contains("encode \"gender\""), "{fe}");
        assert!(!fe.contains("model "));
    }

    #[test]
    fn fault_free_profile_emits_parseable_structure() {
        let spec = spec_for(SALARY_PROMPT);
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let text = generate(&spec, &reliable_profile(), 0.0, &mut rng, GenStage::Full);
            assert!(text.starts_with("pipeline {\n"));
            assert!(text.trim_end().ends_with('}'));
            assert_eq!(text.matches("model ").count(), 1);
        }
    }

    #[test]
    fn semantic_faults_fire_at_configured_rate() {
        let spec = spec_for(SALARY_PROMPT);
        let mut profile = reliable_profile();
        profile.semantic_fault_rate = 1.0;
        let mut rng = StdRng::seed_from_u64(3);
        let clean = generate(
            &spec,
            &reliable_profile(),
            0.0,
            &mut StdRng::seed_from_u64(3),
            GenStage::Full,
        );
        let faulty = generate(&spec, &profile, 0.0, &mut rng, GenStage::Full);
        assert_ne!(clean, faulty);
    }

    #[test]
    fn syntax_fault_corrupts_text() {
        let spec = spec_for(SALARY_PROMPT);
        let mut profile = reliable_profile();
        profile.syntax_fault_rate = 1.0;
        let mut any_corrupt = false;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let text = generate(&spec, &profile, 0.0, &mut rng, GenStage::Full);
            let balanced = text.contains("pipeline {") && text.trim_end().ends_with('}');
            let clean_prefix = text.starts_with("pipeline {");
            if !balanced || !clean_prefix || text.contains("imputate") {
                any_corrupt = true;
            }
        }
        assert!(any_corrupt);
    }

    #[test]
    fn missing_metadata_can_skip_imputation() {
        // No missing ratios, no impute rule, zero initiative → no imputes.
        let prompt = r#"<TASK>pipeline_generation</TASK>
<DATASET target="y" task="binary_classification" />
<SCHEMA>
col name="a" type="float"
col name="b" type="string"
col name="y" type="string"
</SCHEMA>
"#;
        let spec = spec_for(prompt);
        let mut profile = reliable_profile();
        profile.initiative = 0.0;
        let mut rng = StdRng::seed_from_u64(1);
        let text = generate(&spec, &profile, 0.0, &mut rng, GenStage::Full);
        assert!(!text.contains("impute"), "{text}");
    }
}

//! Model capability profiles.
//!
//! The paper evaluates CatDB with three LLMs (GPT-4o, Gemini-1.5-pro,
//! Llama3.1-70b) and reports markedly different behaviour: error mixes
//! (Table 2: Llama ≈94.6 % RE / 2.9 % SE / 2.5 % KB; Gemini ≈76.7 % RE /
//! 2.1 % SE / 21.2 % KB), runtimes (Table 8: GPT-4o slowest per call but
//! most reliable), and variance across iterations (Figure 11). A
//! [`ModelProfile`] captures those behavioural axes; the simulator draws
//! its stochastic decisions from them.

use serde::{Deserialize, Serialize};

/// Behavioural parameters of a simulated LLM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    pub name: String,
    /// Maximum prompt + completion tokens accepted by the API.
    pub context_window: usize,
    /// Fraction of the context window that receives full attention;
    /// rules/metadata beyond it are increasingly ignored (Figure 10c's
    /// "exceeding 260 features caused ignored rules").
    pub attention_fraction: f64,
    /// Probability a clearly stated rule is honoured (at full attention).
    pub instruction_following: f64,
    /// Probability the model adds a genuinely needed step that no rule
    /// asked for ("initiative": imputation without a missing-value rule).
    pub initiative: f64,
    /// Per-generation probability of a runtime/semantic fault (RE).
    pub semantic_fault_rate: f64,
    /// Per-generation probability of a syntax fault (SE).
    pub syntax_fault_rate: f64,
    /// Per-generation probability of an environment/package fault (KB).
    pub env_fault_rate: f64,
    /// Probability one error-fix round repairs the pipeline, given
    /// relevant metadata in the fix prompt.
    pub fix_skill: f64,
    /// Penalty multiplier on `fix_skill` when the fix prompt lacks
    /// catalog metadata (RE fixes need column info).
    pub fix_without_metadata: f64,
    /// Quality of model/hyper-parameter choices in [0, 1]; scales ensemble
    /// sizes and biases the algorithm draw toward stronger learners.
    pub quality: f64,
    /// Output verbosity multiplier (GPT-4o writes longer pipelines).
    pub verbosity: f64,
    /// Simulated seconds per 1000 tokens processed (latency model).
    pub seconds_per_1k_tokens: f64,
    /// API price in USD per 1000 prompt tokens.
    pub usd_per_1k_input: f64,
    /// API price in USD per 1000 completion tokens.
    pub usd_per_1k_output: f64,
}

impl ModelProfile {
    /// GPT-4o: reliable, slower per call, verbose.
    pub fn gpt_4o() -> ModelProfile {
        ModelProfile {
            name: "gpt-4o".into(),
            context_window: 16_000,
            attention_fraction: 0.65,
            instruction_following: 0.96,
            initiative: 0.85,
            semantic_fault_rate: 0.32,
            syntax_fault_rate: 0.02,
            env_fault_rate: 0.02,
            fix_skill: 0.9,
            fix_without_metadata: 0.45,
            quality: 0.92,
            verbosity: 1.3,
            seconds_per_1k_tokens: 2.4,
            usd_per_1k_input: 0.0025,
            usd_per_1k_output: 0.01,
        }
    }

    /// Gemini-1.5-pro: fast, strong, but prone to package/environment
    /// mistakes (21 % of its error trace is KB-class — Table 2).
    pub fn gemini_1_5_pro() -> ModelProfile {
        ModelProfile {
            name: "gemini-1.5-pro".into(),
            context_window: 32_000,
            attention_fraction: 0.6,
            instruction_following: 0.93,
            initiative: 0.8,
            semantic_fault_rate: 0.42,
            syntax_fault_rate: 0.02,
            env_fault_rate: 0.11,
            fix_skill: 0.85,
            fix_without_metadata: 0.4,
            quality: 0.88,
            verbosity: 1.0,
            seconds_per_1k_tokens: 1.0,
            usd_per_1k_input: 0.00125,
            usd_per_1k_output: 0.005,
        }
    }

    /// Llama3.1-70b (via Groq): fastest, weakest instruction following,
    /// almost all of its errors are runtime/semantic (94.6 % RE — Table 2)
    /// and it "struggled to maintain the system conversation but
    /// eventually converged" (Figure 13 discussion).
    pub fn llama3_1_70b() -> ModelProfile {
        ModelProfile {
            name: "llama3.1-70b".into(),
            context_window: 8_000,
            attention_fraction: 0.5,
            instruction_following: 0.85,
            initiative: 0.6,
            semantic_fault_rate: 0.65,
            syntax_fault_rate: 0.03,
            env_fault_rate: 0.015,
            fix_skill: 0.65,
            fix_without_metadata: 0.3,
            quality: 0.78,
            verbosity: 0.9,
            seconds_per_1k_tokens: 0.8,
            usd_per_1k_input: 0.00059,
            usd_per_1k_output: 0.00079,
        }
    }

    /// GPT-4o-mini: the cheap routing tier — not one of the paper's three
    /// evaluated models (so it never appears in `paper_models()` or the
    /// degradation ladder), but pricing and behaviour follow the public
    /// mini tier: near-4o instruction following at a fraction of the
    /// price, with a weaker fix loop and noticeably higher semantic
    /// fault rate.
    pub fn gpt_4o_mini() -> ModelProfile {
        ModelProfile {
            name: "gpt-4o-mini".into(),
            context_window: 16_000,
            attention_fraction: 0.6,
            instruction_following: 0.92,
            initiative: 0.7,
            semantic_fault_rate: 0.48,
            syntax_fault_rate: 0.025,
            env_fault_rate: 0.03,
            fix_skill: 0.78,
            fix_without_metadata: 0.38,
            quality: 0.84,
            verbosity: 1.0,
            seconds_per_1k_tokens: 1.2,
            usd_per_1k_input: 0.00015,
            usd_per_1k_output: 0.0006,
        }
    }

    /// The three paper models, in the order the tables list them.
    pub fn paper_models() -> Vec<ModelProfile> {
        vec![ModelProfile::gpt_4o(), ModelProfile::gemini_1_5_pro(), ModelProfile::llama3_1_70b()]
    }

    /// Every profile the CLI accepts: the paper's three plus the mini
    /// routing tier.
    pub fn known_models() -> Vec<ModelProfile> {
        let mut all = Self::paper_models();
        all.push(ModelProfile::gpt_4o_mini());
        all
    }

    /// Canonical profile name for a CLI spelling, resolving the short
    /// aliases accepted by `--route` (`llama`, `gemini`, `mini`).
    pub fn resolve_alias(name: &str) -> &str {
        match name {
            "llama" => "llama3.1-70b",
            "gemini" => "gemini-1.5-pro",
            "mini" => "gpt-4o-mini",
            other => other,
        }
    }

    /// Look up a known model by name or alias.
    pub fn by_name(name: &str) -> Option<ModelProfile> {
        let canonical = Self::resolve_alias(name);
        Self::known_models().into_iter().find(|m| m.name == canonical)
    }

    /// Dollar cost of a call at this model's API pricing.
    pub fn cost_usd(&self, input_tokens: usize, output_tokens: usize) -> f64 {
        input_tokens as f64 / 1000.0 * self.usd_per_1k_input
            + output_tokens as f64 / 1000.0 * self.usd_per_1k_output
    }

    /// Tokens that receive full attention.
    pub fn attention_budget(&self) -> usize {
        (self.context_window as f64 * self.attention_fraction) as usize
    }

    /// Attention retention for content at token position `pos`: 1.0 inside
    /// the attention budget, decaying linearly to a floor at the context
    /// boundary.
    pub fn attention_at(&self, pos: usize) -> f64 {
        let budget = self.attention_budget();
        if pos <= budget {
            return 1.0;
        }
        let window = self.context_window.max(budget + 1);
        let overflow = (pos - budget) as f64 / (window - budget) as f64;
        (1.0 - overflow * 0.85).max(0.15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_have_distinct_error_signatures() {
        let gpt = ModelProfile::gpt_4o();
        let gem = ModelProfile::gemini_1_5_pro();
        let llama = ModelProfile::llama3_1_70b();
        // Gemini's KB rate dominates the others (Table 2).
        assert!(gem.env_fault_rate > 3.0 * gpt.env_fault_rate);
        assert!(gem.env_fault_rate > 3.0 * llama.env_fault_rate);
        // Llama is the most semantically error-prone.
        assert!(llama.semantic_fault_rate > gem.semantic_fault_rate);
        assert!(gem.semantic_fault_rate > gpt.semantic_fault_rate);
    }

    #[test]
    fn attention_decays_beyond_budget() {
        let m = ModelProfile::llama3_1_70b();
        assert_eq!(m.attention_at(0), 1.0);
        assert_eq!(m.attention_at(m.attention_budget()), 1.0);
        let late = m.attention_at(m.context_window);
        assert!(late < 0.2, "attention at window edge: {late}");
        assert!(m.attention_at(m.attention_budget() + 100) < 1.0);
    }

    #[test]
    fn lookup_by_name() {
        assert!(ModelProfile::by_name("gpt-4o").is_some());
        assert!(ModelProfile::by_name("claude").is_none());
    }

    #[test]
    fn aliases_resolve_and_mini_stays_out_of_paper_models() {
        assert_eq!(ModelProfile::by_name("llama").unwrap().name, "llama3.1-70b");
        assert_eq!(ModelProfile::by_name("gemini").unwrap().name, "gemini-1.5-pro");
        assert_eq!(ModelProfile::by_name("mini").unwrap().name, "gpt-4o-mini");
        assert_eq!(ModelProfile::by_name("gpt-4o-mini").unwrap().name, "gpt-4o-mini");
        // The mini tier must not join the paper tables or the degradation
        // ladder, both of which enumerate `paper_models()`.
        assert!(ModelProfile::paper_models().iter().all(|m| m.name != "gpt-4o-mini"));
        // Mini is the cheapest known model at reference volume.
        let mini = ModelProfile::gpt_4o_mini();
        for m in ModelProfile::paper_models() {
            assert!(mini.cost_usd(1000, 1000) < m.cost_usd(1000, 1000), "{}", m.name);
        }
    }
}

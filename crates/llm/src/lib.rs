//! # catdb-llm — LLM abstraction and deterministic simulator
//!
//! CatDB is LLM-agnostic: it talks to a backend through the
//! [`LanguageModel`] trait. The original system uses GPT-4o, Gemini-1.5-pro
//! and Llama3.1-70b over commercial APIs; this reproduction ships
//! [`SimLlm`], a deterministic, seeded simulator whose behaviour is
//! parameterized by a per-model [`ModelProfile`] (context window, attention
//! budget, instruction following, fault rates calibrated to the paper's
//! Table 2 error-trace mix, fix skill, verbosity, latency).
//!
//! The simulator understands the structured prompt grammar of
//! [`prompt::PromptSpec`] and answers four task families: pipeline
//! generation (single prompt or chain stages), error fixing, feature-type
//! inference, and categorical-value refinement. Responses are *text* —
//! pipeline-DSL programs that `catdb-pipeline` parses, with faults injected
//! at the rates the profile specifies, so the CatDB error-management loop
//! sees exactly the failure surface the paper describes.
//!
//! The transport itself is made failure-aware by two composable layers:
//! [`FaultInjectingLlm`] injects seed-deterministic transport faults
//! (timeouts, transient 5xx, rate limits, truncated/garbled payloads)
//! around any backend, and [`ResilientClient`] answers them with per-call
//! deadlines, bounded exponential-backoff retry (simulated clock, no
//! wall time), a per-model circuit breaker, and degradation down a
//! ladder of cheaper [`ModelProfile`]s — every decision emitted as a
//! `catdb-trace` event so retries land in cost accounting.

mod client;
mod fault;
mod profile;
mod prompt;
mod resilient;
mod route;
mod sim;
mod tokens;

pub use client::{Completion, LanguageModel, LlmError};
pub use fault::{FaultInjectingLlm, FaultSpec};
pub use profile::ModelProfile;
pub use prompt::{
    parse_attrs as prompt_attrs, ColumnInfo, DatasetInfo, LlmTaskKind, Prompt, PromptSpec, RuleInfo,
};
pub use resilient::{ResilientClient, RetryPolicy, Rung, SimClock};
pub use route::{
    resolve_route, Role, RouteCandidate, RouteError, RouteOptimizer, RouteSpec, RoutedLlm,
    DEFAULT_ROUTE_TARGET_ACCURACY,
};
pub use sim::codegen::GenStage;
pub use sim::dedup::{parse_response as parse_refinement_response, refine_values};
pub use sim::fixer::clean_syntax as clean_pipeline_syntax;
pub use sim::typeinfer::{infer_feature_type, parse_response as parse_typeinfer_response};
pub use sim::SimLlm;
pub use tokens::{estimate_tokens, CostLedger, TokenUsage};

//! # catdb-llm — LLM abstraction and deterministic simulator
//!
//! CatDB is LLM-agnostic: it talks to a backend through the
//! [`LanguageModel`] trait. The original system uses GPT-4o, Gemini-1.5-pro
//! and Llama3.1-70b over commercial APIs; this reproduction ships
//! [`SimLlm`], a deterministic, seeded simulator whose behaviour is
//! parameterized by a per-model [`ModelProfile`] (context window, attention
//! budget, instruction following, fault rates calibrated to the paper's
//! Table 2 error-trace mix, fix skill, verbosity, latency).
//!
//! The simulator understands the structured prompt grammar of
//! [`prompt::PromptSpec`] and answers four task families: pipeline
//! generation (single prompt or chain stages), error fixing, feature-type
//! inference, and categorical-value refinement. Responses are *text* —
//! pipeline-DSL programs that `catdb-pipeline` parses, with faults injected
//! at the rates the profile specifies, so the CatDB error-management loop
//! sees exactly the failure surface the paper describes.

mod client;
mod profile;
mod prompt;
mod sim;
mod tokens;

pub use client::{Completion, LanguageModel, LlmError};
pub use profile::ModelProfile;
pub use prompt::{
    parse_attrs as prompt_attrs, ColumnInfo, DatasetInfo, LlmTaskKind, Prompt, PromptSpec,
    RuleInfo,
};
pub use sim::codegen::GenStage;
pub use sim::fixer::clean_syntax as clean_pipeline_syntax;
pub use sim::dedup::{parse_response as parse_refinement_response, refine_values};
pub use sim::typeinfer::{infer_feature_type, parse_response as parse_typeinfer_response};
pub use sim::SimLlm;
pub use tokens::{estimate_tokens, CostLedger, TokenUsage};

//! Transport resilience around [`LanguageModel`].
//!
//! [`ResilientClient`] is the production-shaped wrapper the paper's
//! error-management loop (Algorithm 4) silently assumes: per-call
//! deadlines, bounded retry with exponential backoff + deterministic
//! jitter, a per-model circuit breaker, and a degradation ladder that
//! falls back to cheaper [`ModelProfile`]s when a rung is exhausted.
//! Time is fully simulated — backoff advances a [`SimClock`], never a
//! wall clock — so tests replay byte-identically and retry latency still
//! lands in the session's accounting (waits are folded into the returned
//! [`Completion::latency_seconds`]).
//!
//! Every resilience decision is observable: failed attempts emit
//! [`catdb_trace::TraceEvent::LlmRetry`] (carrying the wasted prompt
//! tokens and dollars, which `measured_cost` folds into the session
//! totals), breaker openings emit `CircuitOpen`, and ladder descents emit
//! `Degraded`.

use crate::client::{Completion, LanguageModel, LlmError};
use crate::fault::{FaultInjectingLlm, FaultSpec};
use crate::profile::ModelProfile;
use crate::prompt::Prompt;
use crate::sim::SimLlm;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Retry/backoff/deadline/breaker configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt, per rung (total attempts per rung
    /// = `max_retries + 1`).
    pub max_retries: usize,
    /// First backoff wait, simulated seconds.
    pub base_backoff_seconds: f64,
    /// Multiplier applied per subsequent retry (exponential backoff).
    pub backoff_multiplier: f64,
    /// Backoff cap, simulated seconds.
    pub max_backoff_seconds: f64,
    /// Uniform jitter as a fraction of the computed backoff (±).
    pub jitter_fraction: f64,
    /// Per-call deadline: a served completion whose latency exceeds it is
    /// treated as a timeout failure (the response arrived too late to
    /// use). `None` disables the deadline.
    pub call_timeout_seconds: Option<f64>,
    /// Consecutive failures that open a rung's circuit breaker.
    pub breaker_threshold: usize,
    /// How long an open breaker rejects calls, simulated seconds.
    pub breaker_cooldown_seconds: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff_seconds: 1.0,
            backoff_multiplier: 2.0,
            max_backoff_seconds: 30.0,
            jitter_fraction: 0.25,
            call_timeout_seconds: None,
            breaker_threshold: 4,
            breaker_cooldown_seconds: 120.0,
        }
    }
}

/// Deterministic simulated clock: seconds accumulate from completion
/// latencies and backoff waits, never from wall time.
#[derive(Default)]
pub struct SimClock {
    seconds: Mutex<f64>,
}

impl SimClock {
    pub fn now(&self) -> f64 {
        *self.seconds.lock()
    }

    pub fn advance(&self, seconds: f64) {
        *self.seconds.lock() += seconds.max(0.0);
    }
}

/// One rung of the degradation ladder: a backend plus the profile that
/// prices its wasted (failed) attempts.
pub struct Rung {
    pub profile: ModelProfile,
    pub llm: Box<dyn LanguageModel>,
}

#[derive(Debug, Clone, Copy, Default)]
struct BreakerState {
    consecutive_failures: usize,
    /// Simulated-clock instant until which the breaker rejects calls.
    open_until: Option<f64>,
}

/// A resilient [`LanguageModel`]: retries, backoff, circuit breaking, and
/// model degradation over an ordered ladder of rungs (primary first).
pub struct ResilientClient {
    rungs: Vec<Rung>,
    policy: RetryPolicy,
    seed: u64,
    clock: SimClock,
    breakers: Vec<Mutex<BreakerState>>,
    calls: Mutex<u64>,
}

impl ResilientClient {
    /// Build from an explicit ladder. `rungs` must be non-empty and
    /// ordered primary-first (descending capability/cost).
    pub fn new(rungs: Vec<Rung>, policy: RetryPolicy, seed: u64) -> ResilientClient {
        assert!(!rungs.is_empty(), "ResilientClient needs at least one rung");
        let breakers = rungs.iter().map(|_| Mutex::new(BreakerState::default())).collect();
        ResilientClient {
            rungs,
            policy,
            seed,
            clock: SimClock::default(),
            breakers,
            calls: Mutex::new(0),
        }
    }

    /// The standard simulated stack: a fault-injected [`SimLlm`] for
    /// `primary`, with every strictly cheaper paper model appended as a
    /// fallback rung (same fault surface — the faults model the shared
    /// transport, not one endpoint). Rung seeds are derived from `seed`
    /// so the whole ladder replays deterministically.
    pub fn simulated(
        primary: ModelProfile,
        faults: FaultSpec,
        policy: RetryPolicy,
        seed: u64,
    ) -> ResilientClient {
        let reference_cost = |p: &ModelProfile| p.cost_usd(1000, 1000);
        let primary_cost = reference_cost(&primary);
        let mut profiles = vec![primary.clone()];
        let mut cheaper: Vec<ModelProfile> = ModelProfile::paper_models()
            .into_iter()
            .filter(|p| p.name != primary.name && reference_cost(p) < primary_cost)
            .collect();
        cheaper.sort_by(|a, b| reference_cost(b).total_cmp(&reference_cost(a)));
        profiles.extend(cheaper);
        let rungs = profiles
            .into_iter()
            .enumerate()
            .map(|(i, profile)| {
                let rung_seed = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9));
                let inner = SimLlm::new(profile.clone(), rung_seed);
                let llm: Box<dyn LanguageModel> =
                    Box::new(FaultInjectingLlm::new(inner, faults, rung_seed));
                Rung { profile, llm }
            })
            .collect();
        ResilientClient::new(rungs, policy, seed)
    }

    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Simulated seconds elapsed on this client's clock (latencies +
    /// backoff waits).
    pub fn clock_seconds(&self) -> f64 {
        self.clock.now()
    }

    /// Advance the simulated clock by idle time (time that passes between
    /// calls — e.g. local pipeline validation). Lets breaker cooldowns
    /// elapse without wall-clock sleeps.
    pub fn advance_clock(&self, seconds: f64) {
        self.clock.advance(seconds);
    }

    /// Model names of the ladder, primary first.
    pub fn ladder(&self) -> Vec<&str> {
        self.rungs.iter().map(|r| r.profile.name.as_str()).collect()
    }

    /// Backoff before retry number `attempt` (1-based), with
    /// deterministic jitter drawn from `rng`.
    fn backoff_seconds(&self, attempt: usize, rng: &mut StdRng) -> f64 {
        let exp = self.policy.backoff_multiplier.powi(attempt.saturating_sub(1) as i32);
        let base = (self.policy.base_backoff_seconds * exp).min(self.policy.max_backoff_seconds);
        if self.policy.jitter_fraction <= 0.0 {
            return base;
        }
        let jitter: f64 = rng.gen_range(-1.0..1.0);
        (base * (1.0 + jitter * self.policy.jitter_fraction)).max(0.0)
    }

    /// Record a failure on rung `i`; opens the breaker at the threshold.
    fn note_failure(&self, i: usize) {
        let mut b = self.breakers[i].lock();
        b.consecutive_failures += 1;
        if b.consecutive_failures >= self.policy.breaker_threshold && b.open_until.is_none() {
            b.open_until = Some(self.clock.now() + self.policy.breaker_cooldown_seconds);
            catdb_trace::emit(catdb_trace::TraceEvent::CircuitOpen {
                model: self.rungs[i].profile.name.clone(),
                consecutive_failures: b.consecutive_failures,
                cooldown_seconds: self.policy.breaker_cooldown_seconds,
            });
        }
    }

    fn note_success(&self, i: usize) {
        let mut b = self.breakers[i].lock();
        b.consecutive_failures = 0;
        b.open_until = None;
    }

    /// Whether rung `i` currently rejects calls. A cooled-down breaker
    /// moves to half-open: the next attempt is allowed through as a probe.
    fn breaker_rejects(&self, i: usize) -> bool {
        let mut b = self.breakers[i].lock();
        match b.open_until {
            Some(until) if self.clock.now() < until => true,
            Some(_) => {
                // Half-open: allow a probe; one more failure re-opens
                // immediately (threshold already met, counter kept).
                b.open_until = None;
                b.consecutive_failures = self.policy.breaker_threshold.saturating_sub(1);
                false
            }
            None => false,
        }
    }

    /// One attempt against rung `i`, applying the per-call deadline.
    fn attempt(&self, i: usize, prompt: &Prompt) -> Result<Completion, LlmError> {
        let completion = self.rungs[i].llm.complete(prompt)?;
        if let Some(deadline) = self.policy.call_timeout_seconds {
            if completion.latency_seconds > deadline {
                // Served, billed, but too late to use: the clock still
                // only burns the deadline (the caller abandoned the wait).
                self.clock.advance(deadline);
                return Err(LlmError::Timeout { seconds: completion.latency_seconds });
            }
        }
        self.clock.advance(completion.latency_seconds);
        Ok(completion)
    }
}

impl LanguageModel for ResilientClient {
    fn model_name(&self) -> &str {
        &self.rungs[0].profile.name
    }

    fn context_window(&self) -> usize {
        self.rungs[0].profile.context_window
    }

    fn complete(&self, prompt: &Prompt) -> Result<Completion, LlmError> {
        let call = {
            let mut guard = self.calls.lock();
            let c = *guard;
            *guard += 1;
            c
        };
        let mut rng =
            StdRng::seed_from_u64(self.seed.wrapping_mul(0xD6E8_FEB8_6659_FD93).wrapping_add(call));
        let mut waited = 0.0;
        let mut last_err = LlmError::ServiceUnavailable("no rung available".into());
        for i in 0..self.rungs.len() {
            let name = self.rungs[i].profile.name.clone();
            if i > 0 {
                catdb_trace::emit(catdb_trace::TraceEvent::Degraded {
                    from: self.rungs[i - 1].profile.name.clone(),
                    to: name.clone(),
                    reason: last_err.code().to_string(),
                });
            }
            if self.breaker_rejects(i) {
                last_err = LlmError::ServiceUnavailable(format!("circuit open for {name}"));
                continue;
            }
            for attempt in 0..=self.policy.max_retries {
                if attempt > 0 {
                    let backoff = match &last_err {
                        // Honour the service's back-pressure hint when it
                        // exceeds our own schedule.
                        LlmError::RateLimited { retry_after_seconds } => {
                            retry_after_seconds.max(self.backoff_seconds(attempt, &mut rng))
                        }
                        _ => self.backoff_seconds(attempt, &mut rng),
                    };
                    self.clock.advance(backoff);
                    waited += backoff;
                }
                match self.attempt(i, prompt) {
                    Ok(mut completion) => {
                        self.note_success(i);
                        // Fold retry waits into the latency the session
                        // accounts for.
                        completion.latency_seconds += waited;
                        return Ok(completion);
                    }
                    Err(e @ LlmError::ContextLengthExceeded { .. }) => {
                        // Deterministic: resending cannot help. Bubble up
                        // so the caller shrinks the prompt (α-reduction).
                        return Err(e);
                    }
                    Err(e) => {
                        // A deadline miss after a served completion was
                        // already billed via its LlmCall event; transport
                        // failures waste the prompt tokens unbilled.
                        let (wasted_tokens, wasted_cost) = match &e {
                            LlmError::Timeout { .. }
                                if self.policy.call_timeout_seconds.is_some() =>
                            {
                                (0, 0.0)
                            }
                            _ => {
                                let tokens = prompt.token_len();
                                (tokens, self.rungs[i].profile.cost_usd(tokens, 0))
                            }
                        };
                        let exhausted = attempt == self.policy.max_retries;
                        let backoff_next = if exhausted {
                            0.0
                        } else {
                            // Preview only for the event; the actual wait
                            // (drawn fresh) happens at the next attempt.
                            self.backoff_seconds(attempt + 1, &mut rng)
                        };
                        catdb_trace::emit(catdb_trace::TraceEvent::LlmRetry {
                            model: name.clone(),
                            attempt: attempt + 1,
                            error: e.code().to_string(),
                            backoff_seconds: backoff_next,
                            prompt_tokens: wasted_tokens,
                            cost: wasted_cost,
                        });
                        self.note_failure(i);
                        last_err = e;
                        if self.breaker_rejects(i) {
                            break; // breaker opened mid-ladder: degrade now
                        }
                    }
                }
            }
        }
        Err(last_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdb_trace::{TraceEvent, TraceSink};
    use std::sync::Arc;

    fn prompt() -> Prompt {
        Prompt::new(
            "You are a data science assistant.",
            "<TASK>pipeline_generation</TASK>\n\
             <DATASET name=\"toy\" rows=\"300\" target=\"y\" task=\"binary_classification\" />\n\
             <SCHEMA>\n\
             col name=\"a\" type=\"float\" feature=\"numerical\" missing=\"0.1\"\n\
             col name=\"y\" type=\"string\" feature=\"categorical\" distinct_count=\"2\"\n\
             </SCHEMA>",
        )
    }

    /// A backend that fails `failures` times, then succeeds forever.
    struct FlakyLlm {
        inner: SimLlm,
        failures: Mutex<usize>,
        error: LlmError,
    }

    impl FlakyLlm {
        fn new(failures: usize, error: LlmError) -> FlakyLlm {
            FlakyLlm {
                inner: SimLlm::new(ModelProfile::gpt_4o(), 1),
                failures: Mutex::new(failures),
                error,
            }
        }
    }

    impl LanguageModel for FlakyLlm {
        fn model_name(&self) -> &str {
            self.inner.model_name()
        }
        fn context_window(&self) -> usize {
            self.inner.context_window()
        }
        fn complete(&self, prompt: &Prompt) -> Result<Completion, LlmError> {
            let mut left = self.failures.lock();
            if *left > 0 {
                *left -= 1;
                return Err(self.error.clone());
            }
            self.inner.complete(prompt)
        }
    }

    fn single_rung(llm: Box<dyn LanguageModel>, policy: RetryPolicy) -> ResilientClient {
        ResilientClient::new(vec![Rung { profile: ModelProfile::gpt_4o(), llm }], policy, 7)
    }

    #[test]
    fn retries_recover_from_transient_failures() {
        let sink = Arc::new(TraceSink::new());
        let _guard = catdb_trace::install(sink.clone());
        let flaky = FlakyLlm::new(2, LlmError::ServiceUnavailable("5xx".into()));
        let client = single_rung(Box::new(flaky), RetryPolicy::default());
        let c = client.complete(&prompt()).expect("third attempt succeeds");
        assert!(c.text.contains("pipeline {"));
        let t = sink.snapshot();
        assert_eq!(t.llm_retry_count(), 2);
        assert!(t.retry_tokens() > 0);
        assert!(t.retry_cost() > 0.0);
        // Backoff waits surfaced in both the clock and the latency.
        assert!(client.clock_seconds() > 0.0);
        assert!(c.latency_seconds > 0.0);
    }

    #[test]
    fn rate_limit_hint_stretches_backoff() {
        let flaky = FlakyLlm::new(1, LlmError::RateLimited { retry_after_seconds: 55.0 });
        let client = single_rung(
            Box::new(flaky),
            RetryPolicy {
                base_backoff_seconds: 0.5,
                max_backoff_seconds: 2.0,
                ..Default::default()
            },
        );
        let c = client.complete(&prompt()).expect("recovers");
        // The 55 s hint dominates the capped 2 s schedule.
        assert!(c.latency_seconds >= 55.0, "latency {}", c.latency_seconds);
    }

    #[test]
    fn deadline_misses_are_timeouts_that_burn_only_the_deadline() {
        // gpt-4o at ~2.4 s/1k tokens over this prompt takes > 0.1 s.
        let client = ResilientClient::new(
            vec![Rung {
                profile: ModelProfile::gpt_4o(),
                llm: Box::new(SimLlm::new(ModelProfile::gpt_4o(), 1)),
            }],
            RetryPolicy { call_timeout_seconds: Some(0.1), max_retries: 1, ..Default::default() },
            7,
        );
        let err = client.complete(&prompt()).unwrap_err();
        assert!(matches!(err, LlmError::Timeout { .. }), "{err:?}");
    }

    #[test]
    fn breaker_opens_and_ladder_degrades() {
        let sink = Arc::new(TraceSink::new());
        let _guard = catdb_trace::install(sink.clone());
        let dead = FlakyLlm::new(usize::MAX, LlmError::ServiceUnavailable("down".into()));
        let healthy = SimLlm::new(ModelProfile::gemini_1_5_pro(), 2);
        let client = ResilientClient::new(
            vec![
                Rung { profile: ModelProfile::gpt_4o(), llm: Box::new(dead) },
                Rung { profile: ModelProfile::gemini_1_5_pro(), llm: Box::new(healthy) },
            ],
            RetryPolicy { max_retries: 5, breaker_threshold: 3, ..Default::default() },
            7,
        );
        let c = client.complete(&prompt()).expect("fallback rung serves");
        assert!(c.text.contains("pipeline {"));
        let t = sink.snapshot();
        // Breaker opened after 3 consecutive failures, before the retry
        // budget (6 attempts) ran out.
        assert_eq!(t.circuit_open_count(), 1);
        assert_eq!(t.llm_retry_count(), 3);
        assert_eq!(t.degraded_count(), 1);
        // While open, the primary is skipped without new attempts.
        let before = t.llm_retry_count();
        let c2 = client.complete(&prompt()).expect("still served by fallback");
        assert!(c2.text.contains("model "));
        let t2 = sink.snapshot();
        assert_eq!(t2.llm_retry_count(), before, "open breaker must not spend attempts");
        assert_eq!(t2.degraded_count(), 2);
    }

    #[test]
    fn breaker_half_opens_after_cooldown() {
        let flaky = FlakyLlm::new(3, LlmError::ServiceUnavailable("brownout".into()));
        let client = single_rung(
            Box::new(flaky),
            RetryPolicy {
                max_retries: 2,
                breaker_threshold: 3,
                breaker_cooldown_seconds: 5.0,
                base_backoff_seconds: 10.0,
                jitter_fraction: 0.0,
                ..Default::default()
            },
        );
        // First call: 3 attempts, all fail, breaker opens, call fails.
        assert!(client.complete(&prompt()).is_err());
        // While the breaker is still cooling, the rung is skipped outright.
        assert!(client.complete(&prompt()).is_err());
        // Idle time passes the 5 s cooldown; the next call is a half-open
        // probe — and the backend has recovered.
        client.advance_clock(6.0);
        let c = client.complete(&prompt()).expect("half-open probe succeeds");
        assert!(c.text.contains("pipeline {"));
    }

    #[test]
    fn context_overflow_bubbles_up_unretried() {
        let sink = Arc::new(TraceSink::new());
        let _guard = catdb_trace::install(sink.clone());
        let mut tiny = ModelProfile::gpt_4o();
        tiny.context_window = 10;
        let client = ResilientClient::new(
            vec![Rung { profile: tiny.clone(), llm: Box::new(SimLlm::new(tiny, 1)) }],
            RetryPolicy::default(),
            7,
        );
        let err = client.complete(&prompt()).unwrap_err();
        assert!(matches!(err, LlmError::ContextLengthExceeded { .. }));
        assert_eq!(sink.snapshot().llm_retry_count(), 0);
    }

    #[test]
    fn simulated_ladder_orders_paper_models_by_cost() {
        let client = ResilientClient::simulated(
            ModelProfile::gpt_4o(),
            FaultSpec::none(),
            RetryPolicy::default(),
            3,
        );
        assert_eq!(client.ladder(), vec!["gpt-4o", "gemini-1.5-pro", "llama3.1-70b"]);
        let from_llama = ResilientClient::simulated(
            ModelProfile::llama3_1_70b(),
            FaultSpec::none(),
            RetryPolicy::default(),
            3,
        );
        assert_eq!(from_llama.ladder(), vec!["llama3.1-70b"]);
        assert_eq!(client.model_name(), "gpt-4o");
        assert_eq!(client.context_window(), 16_000);
    }

    #[test]
    fn faulty_ladder_replays_identically_for_a_seed() {
        let run = |seed: u64| {
            let sink = Arc::new(TraceSink::new());
            let _guard = catdb_trace::install(sink.clone());
            let client = ResilientClient::simulated(
                ModelProfile::gemini_1_5_pro(),
                FaultSpec::from_rate(0.5),
                RetryPolicy::default(),
                seed,
            );
            let mut texts = Vec::new();
            for _ in 0..6 {
                texts.push(client.complete(&prompt()).map(|c| c.text));
            }
            (texts, sink.snapshot().events_modulo_timing())
        };
        let (texts_a, events_a) = run(11);
        let (texts_b, events_b) = run(11);
        assert_eq!(texts_a, texts_b);
        assert_eq!(events_a, events_b);
        assert!(events_a.iter().any(|e| matches!(e, TraceEvent::LlmRetry { .. })));
    }
}

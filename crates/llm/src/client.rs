//! The `LanguageModel` abstraction: CatDB is LLM-agnostic (Section 2) and
//! talks to any backend through this trait. The repo ships a deterministic
//! simulator ([`crate::SimLlm`]); a production deployment would implement
//! the same trait over a real API client.

use crate::prompt::Prompt;
use crate::tokens::TokenUsage;
use std::fmt;

/// Errors an LLM backend can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmError {
    /// The prompt does not fit the model's context window.
    ContextLengthExceeded { prompt_tokens: usize, window: usize },
    /// Transient service failure (retriable).
    ServiceUnavailable(String),
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::ContextLengthExceeded { prompt_tokens, window } => write!(
                f,
                "prompt of {prompt_tokens} tokens exceeds the {window}-token context window"
            ),
            LlmError::ServiceUnavailable(msg) => write!(f, "service unavailable: {msg}"),
        }
    }
}

impl std::error::Error for LlmError {}

/// One model response.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    pub text: String,
    pub usage: TokenUsage,
    /// Simulated wall-clock seconds for this call (returned, not slept, so
    /// experiments can account for LLM latency without waiting for it).
    pub latency_seconds: f64,
}

/// A text-completion backend.
pub trait LanguageModel: Send + Sync {
    fn model_name(&self) -> &str;

    /// Context window in tokens (prompts beyond it are rejected).
    fn context_window(&self) -> usize;

    /// Complete a prompt.
    fn complete(&self, prompt: &Prompt) -> Result<Completion, LlmError>;
}

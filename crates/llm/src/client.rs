//! The `LanguageModel` abstraction: CatDB is LLM-agnostic (Section 2) and
//! talks to any backend through this trait. The repo ships a deterministic
//! simulator ([`crate::SimLlm`]); a production deployment would implement
//! the same trait over a real API client.

use crate::prompt::Prompt;
use crate::tokens::TokenUsage;
use std::fmt;

/// Errors an LLM backend can raise.
#[derive(Debug, Clone, PartialEq)]
pub enum LlmError {
    /// The prompt does not fit the model's context window.
    ContextLengthExceeded { prompt_tokens: usize, window: usize },
    /// Transient service failure (retriable).
    ServiceUnavailable(String),
    /// The call exceeded its deadline. `seconds` is how long the request
    /// ran (simulated — latencies in this workspace are returned, never
    /// slept) before being abandoned.
    Timeout { seconds: f64 },
    /// The service shed load (HTTP 429). `retry_after_seconds` is the
    /// back-pressure hint a production API would return.
    RateLimited { retry_after_seconds: f64 },
}

impl LlmError {
    /// Whether a retry of the same request can plausibly succeed.
    /// Context overflow is deterministic — the caller must shrink the
    /// prompt (α-reduction), not resend it.
    pub fn is_retriable(&self) -> bool {
        !matches!(self, LlmError::ContextLengthExceeded { .. })
    }

    /// Short machine-readable code for trace events.
    pub fn code(&self) -> &'static str {
        match self {
            LlmError::ContextLengthExceeded { .. } => "context_length_exceeded",
            LlmError::ServiceUnavailable(_) => "service_unavailable",
            LlmError::Timeout { .. } => "timeout",
            LlmError::RateLimited { .. } => "rate_limited",
        }
    }
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::ContextLengthExceeded { prompt_tokens, window } => write!(
                f,
                "prompt of {prompt_tokens} tokens exceeds the {window}-token context window"
            ),
            LlmError::ServiceUnavailable(msg) => write!(f, "service unavailable: {msg}"),
            LlmError::Timeout { seconds } => write!(f, "call timed out after {seconds:.1}s"),
            LlmError::RateLimited { retry_after_seconds } => {
                write!(f, "rate limited; retry after {retry_after_seconds:.1}s")
            }
        }
    }
}

impl std::error::Error for LlmError {}

/// One model response.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    pub text: String,
    pub usage: TokenUsage,
    /// Simulated wall-clock seconds for this call (returned, not slept, so
    /// experiments can account for LLM latency without waiting for it).
    pub latency_seconds: f64,
}

/// A text-completion backend.
pub trait LanguageModel: Send + Sync {
    fn model_name(&self) -> &str;

    /// Context window in tokens (prompts beyond it are rejected).
    fn context_window(&self) -> usize;

    /// Complete a prompt.
    fn complete(&self, prompt: &Prompt) -> Result<Completion, LlmError>;

    /// The model this backend would serve `prompt` with. Single-model
    /// backends answer `model_name()`; a router inspects the prompt's
    /// role and answers the routed model, so caches keyed on this never
    /// conflate completions from different models.
    fn model_for(&self, _prompt: &Prompt) -> &str {
        self.model_name()
    }
}

//! Seeded transport-fault injection.
//!
//! [`FaultInjectingLlm`] decorates any [`LanguageModel`] with the failure
//! surface of a real LLM API under heavy traffic: timeouts, transient
//! 5xx-style outages, rate limiting, and responses that arrive damaged
//! (truncated or garbled). Faults are drawn deterministically from
//! `(seed, prompt hash, repeat index)` — exactly the [`crate::SimLlm`]
//! recipe — so an injected failure pattern replays identically for a
//! fixed seed (and independently of what other prompts were served
//! first), which is what lets the resilience tests and the
//! `fig14_robustness` fault sweep assert exact behaviour.

use crate::client::{Completion, LanguageModel, LlmError};
use crate::prompt::Prompt;
use crate::sim::{prompt_hash, CallCounters};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-call fault probabilities. At most one fault fires per call (a
/// single uniform draw is compared against the cumulative thresholds in
/// declaration order), so the per-category probabilities are exact and
/// [`FaultSpec::total`] is the overall per-call fault probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The request hangs past any reasonable deadline.
    pub timeout: f64,
    /// Transient service failure (5xx; retriable).
    pub transient: f64,
    /// Load shedding (429 with a retry-after hint).
    pub rate_limit: f64,
    /// The completion arrives cut off mid-stream.
    pub truncate: f64,
    /// The completion arrives with corrupted spans.
    pub garble: f64,
}

impl FaultSpec {
    /// No faults: the decorator becomes a transparent passthrough.
    pub fn none() -> FaultSpec {
        FaultSpec { timeout: 0.0, transient: 0.0, rate_limit: 0.0, truncate: 0.0, garble: 0.0 }
    }

    /// Split one overall per-call fault rate across the categories with
    /// the default weights (transport errors dominate, matching observed
    /// API failure mixes: most failures are 5xx/429/timeouts, damaged
    /// payloads are rarer).
    pub fn from_rate(rate: f64) -> FaultSpec {
        let rate = rate.clamp(0.0, 1.0);
        FaultSpec {
            timeout: rate * 0.25,
            transient: rate * 0.30,
            rate_limit: rate * 0.15,
            truncate: rate * 0.20,
            garble: rate * 0.10,
        }
    }

    /// Overall per-call fault probability.
    pub fn total(&self) -> f64 {
        self.timeout + self.transient + self.rate_limit + self.truncate + self.garble
    }

    pub fn is_none(&self) -> bool {
        self.total() <= 0.0
    }
}

/// The fault category drawn for one call (internal).
enum Fault {
    Timeout,
    Transient,
    RateLimit,
    Truncate,
    Garble,
}

impl FaultSpec {
    /// Draw at most one fault from a single uniform sample.
    fn draw(&self, rng: &mut StdRng) -> Option<Fault> {
        let roll: f64 = rng.gen();
        let mut edge = self.timeout;
        if roll < edge {
            return Some(Fault::Timeout);
        }
        edge += self.transient;
        if roll < edge {
            return Some(Fault::Transient);
        }
        edge += self.rate_limit;
        if roll < edge {
            return Some(Fault::RateLimit);
        }
        edge += self.truncate;
        if roll < edge {
            return Some(Fault::Truncate);
        }
        edge += self.garble;
        if roll < edge {
            return Some(Fault::Garble);
        }
        None
    }
}

/// A [`LanguageModel`] decorator that injects [`FaultSpec`]-distributed
/// faults ahead of (timeout/transient/rate-limit) or behind
/// (truncate/garble) the wrapped backend.
pub struct FaultInjectingLlm<L> {
    inner: L,
    spec: FaultSpec,
    seed: u64,
    calls: Mutex<CallCounters>,
}

impl<L: LanguageModel> FaultInjectingLlm<L> {
    pub fn new(inner: L, spec: FaultSpec, seed: u64) -> FaultInjectingLlm<L> {
        FaultInjectingLlm { inner, spec, seed, calls: Mutex::new(CallCounters::default()) }
    }

    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Calls served (or faulted) so far.
    pub fn call_count(&self) -> u64 {
        self.calls.lock().total()
    }

    fn rng_for(&self, prompt: &Prompt, repeat: u64) -> StdRng {
        let seed = self
            .seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(prompt_hash(prompt))
            .wrapping_add(repeat.wrapping_mul(0xE703_7ED1_A0B4_28DB));
        StdRng::seed_from_u64(seed)
    }
}

/// Cut a completion off mid-stream, keeping 30–85 % of its characters
/// (on a char boundary, so the result stays valid UTF-8).
fn truncate_text(text: &str, rng: &mut StdRng) -> String {
    let keep_fraction: f64 = rng.gen_range(0.30..0.85);
    let keep_bytes = (text.len() as f64 * keep_fraction) as usize;
    let mut cut = keep_bytes.min(text.len());
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    text[..cut].to_string()
}

/// Corrupt ~8 % of a completion's bytes with noise characters, the way a
/// damaged stream (or a model emitting mojibake under load) looks.
fn garble_text(text: &str, rng: &mut StdRng) -> String {
    if text.is_empty() {
        return text.to_string();
    }
    let mut bytes: Vec<u8> = text.bytes().collect();
    let n_corrupt = (bytes.len() / 12).max(1);
    for _ in 0..n_corrupt {
        let at = rng.gen_range(0..bytes.len());
        bytes[at] = b"@#$%~?"[rng.gen_range(0..6usize)];
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

impl<L: LanguageModel> LanguageModel for FaultInjectingLlm<L> {
    fn model_name(&self) -> &str {
        self.inner.model_name()
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }

    fn complete(&self, prompt: &Prompt) -> Result<Completion, LlmError> {
        let repeat = self.calls.lock().next_repeat(prompt_hash(prompt));
        let mut rng = self.rng_for(prompt, repeat);
        match self.spec.draw(&mut rng) {
            Some(Fault::Timeout) => {
                // The request hung; report how long it ran before abandonment.
                let seconds: f64 = rng.gen_range(10.0..90.0);
                Err(LlmError::Timeout { seconds })
            }
            Some(Fault::Transient) => {
                Err(LlmError::ServiceUnavailable("upstream 5xx (injected)".into()))
            }
            Some(Fault::RateLimit) => {
                let retry_after_seconds: f64 = rng.gen_range(1.0..20.0);
                Err(LlmError::RateLimited { retry_after_seconds })
            }
            Some(Fault::Truncate) => {
                let mut c = self.inner.complete(prompt)?;
                c.text = truncate_text(&c.text, &mut rng);
                Ok(c)
            }
            Some(Fault::Garble) => {
                let mut c = self.inner.complete(prompt)?;
                c.text = garble_text(&c.text, &mut rng);
                Ok(c)
            }
            None => self.inner.complete(prompt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelProfile;
    use crate::sim::SimLlm;

    fn prompt() -> Prompt {
        Prompt::new(
            "You are a data science assistant.",
            "<TASK>pipeline_generation</TASK>\n\
             <DATASET name=\"toy\" rows=\"300\" target=\"y\" task=\"binary_classification\" />\n\
             <SCHEMA>\n\
             col name=\"a\" type=\"float\" feature=\"numerical\" missing=\"0.1\"\n\
             col name=\"y\" type=\"string\" feature=\"categorical\" distinct_count=\"2\"\n\
             </SCHEMA>",
        )
    }

    fn outcomes(seed: u64, rate: f64, calls: usize) -> Vec<Result<String, LlmError>> {
        let llm = FaultInjectingLlm::new(
            SimLlm::new(ModelProfile::gpt_4o(), 5),
            FaultSpec::from_rate(rate),
            seed,
        );
        (0..calls).map(|_| llm.complete(&prompt()).map(|c| c.text)).collect()
    }

    #[test]
    fn zero_rate_is_a_transparent_passthrough() {
        let plain = SimLlm::new(ModelProfile::gpt_4o(), 5);
        let wrapped =
            FaultInjectingLlm::new(SimLlm::new(ModelProfile::gpt_4o(), 5), FaultSpec::none(), 1);
        let p = prompt();
        for _ in 0..4 {
            assert_eq!(plain.complete(&p).unwrap().text, wrapped.complete(&p).unwrap().text);
        }
        assert_eq!(wrapped.context_window(), 16_000);
        assert_eq!(wrapped.model_name(), "gpt-4o");
    }

    #[test]
    fn fault_pattern_replays_identically_for_a_seed() {
        let a = outcomes(9, 0.5, 40);
        let b = outcomes(9, 0.5, 40);
        assert_eq!(a, b);
        let c = outcomes(10, 0.5, 40);
        assert_ne!(a, c, "different seeds should draw different fault patterns");
    }

    #[test]
    fn observed_fault_rate_tracks_the_spec() {
        let results = outcomes(3, 0.4, 400);
        let hard_failures = results.iter().filter(|r| r.is_err()).count();
        // timeout + transient + rate_limit = 0.7 of the 0.4 rate = 0.28.
        let expected = 400.0 * 0.4 * 0.7;
        assert!(
            (hard_failures as f64) > expected * 0.6 && (hard_failures as f64) < expected * 1.5,
            "hard failures {hard_failures} vs expected ≈{expected}"
        );
    }

    #[test]
    fn damaged_payload_faults_alter_the_text() {
        // Truncate-only spec: every response is a strict prefix cut.
        let trunc = FaultInjectingLlm::new(
            SimLlm::new(ModelProfile::gpt_4o(), 5),
            FaultSpec { truncate: 1.0, ..FaultSpec::none() },
            7,
        );
        let clean = SimLlm::new(ModelProfile::gpt_4o(), 5);
        let p = prompt();
        let damaged = trunc.complete(&p).unwrap().text;
        let intact = clean.complete(&p).unwrap().text;
        assert!(damaged.len() < intact.len());
        assert!(intact.starts_with(&damaged));

        let garbled = FaultInjectingLlm::new(
            SimLlm::new(ModelProfile::gpt_4o(), 5),
            FaultSpec { garble: 1.0, ..FaultSpec::none() },
            7,
        );
        let noisy = garbled.complete(&p).unwrap().text;
        assert_ne!(noisy, intact, "garbling must corrupt the payload");
    }

    #[test]
    fn spec_helpers_partition_the_rate() {
        let spec = FaultSpec::from_rate(0.3);
        assert!((spec.total() - 0.3).abs() < 1e-12);
        assert!(FaultSpec::none().is_none());
        assert!(!spec.is_none());
        assert!((FaultSpec::from_rate(7.0).total() - 1.0).abs() < 1e-12, "rate clamps to 1");
    }
}

//! Offline shim for the subset of `criterion` this workspace's benches
//! use. Runs each benchmark for a short fixed wall-clock budget and
//! prints median iteration time — no plots or baselines.

use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget. `CATDB_BENCH_BUDGET_MS` overrides the
/// 300 ms default so scripts (e.g. `scripts/bench_quick.sh`) can trade
/// precision for turnaround.
fn budget() -> Duration {
    let ms = std::env::var("CATDB_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

/// Batch sizing hints (accepted, ignored — batches are per-iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    /// (iterations, total busy time) accumulated by `iter`.
    samples: Vec<Duration>,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher { samples: Vec::new() }
    }

    /// Time a routine: warm up once, then sample until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        let budget = budget();
        let started = Instant::now();
        while started.elapsed() < budget || self.samples.len() < 5 {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
            if self.samples.len() >= 1000 {
                break;
            }
        }
    }

    /// Time a routine whose output is expensive to drop (criterion's
    /// `iter_with_large_drop`): the clock stops before the output is
    /// dropped, so deallocation cost is excluded from the measurement.
    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        let budget = budget();
        let started = Instant::now();
        while started.elapsed() < budget || self.samples.len() < 5 {
            let t = Instant::now();
            let out = std::hint::black_box(routine());
            let elapsed = t.elapsed();
            drop(out);
            self.samples.push(elapsed);
            if self.samples.len() >= 1000 {
                break;
            }
        }
    }

    /// Time a routine over freshly set-up inputs.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let budget = budget();
        let started = Instant::now();
        while started.elapsed() < budget || self.samples.len() < 5 {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
            if self.samples.len() >= 1000 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        // Median, not mean: on shared machines the sample distribution has
        // a long right tail from preemption; the median tracks the true
        // cost of an iteration far more stably.
        let mut sorted = self.samples.clone();
        sorted.sort();
        let mid = sorted.len() / 2;
        let median =
            if sorted.len() % 2 == 0 { (sorted[mid - 1] + sorted[mid]) / 2 } else { sorted[mid] };
        println!("{name:<40} {:>12.3?} /iter  ({} samples)", median, self.samples.len());
    }
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&name.to_string());
        self
    }

    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("— group: {name}");
        BenchmarkGroup { _parent: self }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always runs one sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("  {name}"));
        self
    }

    pub fn finish(self) {}
}

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

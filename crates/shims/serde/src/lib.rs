//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Unlike upstream serde's visitor architecture, this shim serializes
//! through a concrete JSON value tree ([`Value`]): `Serialize` renders a
//! type into a `Value`, `Deserialize` rebuilds it from one. The derive
//! macros (re-exported from the sibling `serde_derive` shim) generate
//! those impls with upstream's externally-tagged enum representation, so
//! JSON written by the shim matches what real serde would emit for the
//! same types. `serde_json` in this workspace is a thin façade over this
//! crate's value model.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, Map, Value};

use std::collections::{BTreeMap, HashMap};

/// Serialize into a JSON value tree.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Deserialize from a JSON value tree.
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*}
}

serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize(), self.2.serialize()])
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort for stable output: HashMap iteration order is unspecified.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k.clone(), v.serialize());
        }
        Value::Object(m)
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.as_ref().to_string(), v.serialize());
        }
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("bool", other)),
        }
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<String, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Number(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(DeError::type_mismatch("integer", other)),
                }
            }
        }
    )*}
}

deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<f64, DeError> {
        match v {
            Value::Number(n) => Ok(*n),
            Value::Null => Ok(f64::NAN), // NaN serializes as null
            other => Err(DeError::type_mismatch("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<f32, DeError> {
        f64::deserialize(v).map(|n| n as f32)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::type_mismatch("array", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Box<T>, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<(A, B), DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            other => Err(DeError::type_mismatch("2-tuple", other)),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<(A, B, C), DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::deserialize(&items[0])?,
                B::deserialize(&items[1])?,
                C::deserialize(&items[2])?,
            )),
            other => Err(DeError::type_mismatch("3-tuple", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<HashMap<String, V>, DeError> {
        match v {
            Value::Object(m) => {
                m.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
            }
            other => Err(DeError::type_mismatch("object", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<BTreeMap<String, V>, DeError> {
        match v {
            Value::Object(m) => {
                m.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
            }
            other => Err(DeError::type_mismatch("object", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code.
// ---------------------------------------------------------------------------

/// Fetch and deserialize a struct field (missing fields read as `Null`, so
/// `Option` fields tolerate omission — upstream's `default` semantics for
/// options come along for free).
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Object(m) => match m.get(name) {
            Some(inner) => {
                T::deserialize(inner).map_err(|e| DeError::new(format!("field `{name}`: {e}")))
            }
            None => T::deserialize(&Value::Null)
                .map_err(|_| DeError::new(format!("missing field `{name}`"))),
        },
        other => Err(DeError::type_mismatch("object", other)),
    }
}

//! JSON value model, text parser, and printers.

use std::fmt;

/// Insertion-ordered string-keyed map (mirrors `serde_json::Map`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert, replacing any existing entry with the same key in place.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl From<Vec<(String, Value)>> for Map {
    fn from(entries: Vec<(String, Value)>) -> Map {
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k, v);
        }
        m
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A JSON value. Numbers are `f64`; integers up to 2^53 round-trip exactly.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member access: `value.get("key")` on objects, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization / parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    pub fn new(message: impl Into<String>) -> DeError {
        DeError { message: message.into() }
    }

    pub fn type_mismatch(expected: &str, got: &Value) -> DeError {
        DeError::new(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Infinity
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's f64 Display is shortest-round-trip.
        out.push_str(&format!("{n}"));
    }
}

impl Value {
    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&" ".repeat(indent + STEP));
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push(']');
            }
            Value::Object(m) if !m.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&" ".repeat(indent + STEP));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> DeError {
        DeError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut m = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    m.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| DeError::new(format!("invalid number `{text}`")))
    }
}

/// Parse a JSON document into a [`Value`].
pub fn parse_json(text: &str) -> Result<Value, DeError> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

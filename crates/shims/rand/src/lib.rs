//! Offline shim for the subset of the `rand` 0.8 API this workspace uses:
//! `StdRng` (+ `SeedableRng::seed_from_u64` / `from_seed`), the `Rng`
//! extension trait (`gen`, `gen_range`, `gen_bool`), and
//! `seq::SliceRandom::shuffle` / `choose`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and fully deterministic for a given seed, which is all the
//! simulation layer needs. It makes no attempt to match upstream `rand`'s
//! value streams.

pub mod rngs;
pub mod seq;

/// Core source of randomness: 64 uniformly random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types producible by `Rng::gen` (stand-in for the `Standard` distribution).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `Rng::gen_range` (stand-in for `SampleRange`).
/// Parameterized over the output type so integer literals in ranges unify
/// with the call site's expected type, as in upstream rand.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Debiased multiply-shift (Lemire). Span 0 is rejected by callers.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*}
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = Standard::from_rng(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*}
}

sample_range_float!(f32, f64);

/// Convenience extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Standard::from_rng(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub use rngs::StdRng;

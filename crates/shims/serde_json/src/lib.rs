//! Offline shim for the subset of `serde_json` this workspace uses — a
//! thin façade over the vendored `serde` shim's value model.

pub use serde::value::{parse_json, Map, Value};

/// Error type (shared with the serde shim's `DeError`).
pub type Error = serde::DeError;

/// Serialize any `Serialize` type into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize().to_compact_string())
}

/// Human-readable two-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize().to_pretty_string())
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_json(text)?;
    T::deserialize(&value)
}

/// Build a [`Value`] in place. Supports flat object/array literals whose
/// values are Rust expressions (the nesting used in this workspace), plus
/// bare expressions and `null`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::to_value(&$value)); )*
        $crate::Value::Object(m)
    }};
    ($value:expr) => { $crate::to_value(&$value) };
}

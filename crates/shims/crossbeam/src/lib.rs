//! Offline shim for `crossbeam::thread::scope`, backed by
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! API differences from upstream, chosen to keep existing call sites
//! compiling unchanged:
//! - the closure passed to `spawn` receives a placeholder [`thread::ScopeArg`]
//!   instead of a nested `&Scope` (every call site in this workspace writes
//!   `|_|`, so nested spawning is not supported);
//! - `scope` returns `Ok(..)` always; a panicking child surfaces through
//!   its `join()` result exactly like upstream.

pub mod thread {
    use std::any::Any;

    /// Placeholder for upstream's nested-`&Scope` spawn argument.
    #[derive(Debug, Clone, Copy)]
    pub struct ScopeArg;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(ScopeArg) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(move || f(ScopeArg)) }
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. Always `Ok` — child panics surface via `join()`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Differences from upstream: no shrinking (a failing case panics with its
//! inputs via the assert message), string strategies support the regex
//! subset actually used (literals, `[...]` classes with ranges, `{m,n}` /
//! `{n}` / `?` / `*` / `+` quantifiers), and cases are generated from a
//! deterministic per-test seed so failures reproduce.

use rand::{Rng, SeedableRng, StdRng};
use std::rc::Rc;

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Namespace mirror so `prop::collection::vec` resolves.
pub mod prop {
    pub use crate::collection;
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG (FNV-1a over the test name).
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator. `sample` draws one value; no shrinking.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }

    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }
}

/// Type-erased strategy (what `prop_oneof!` arms unify into).
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut StdRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        (self.0)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Numeric range strategies.
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*}
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*}
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Tuple strategies.
// ---------------------------------------------------------------------------

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng), self.3.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
            self.4.sample(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy, F: Strategy> Strategy
    for (A, B, C, D, E, F)
{
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value, F::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
            self.4.sample(rng),
            self.5.sample(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy, F: Strategy, G: Strategy>
    Strategy for (A, B, C, D, E, F, G)
{
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value, F::Value, G::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
            self.4.sample(rng),
            self.5.sample(rng),
            self.6.sample(rng),
        )
    }
}

impl<
        A: Strategy,
        B: Strategy,
        C: Strategy,
        D: Strategy,
        E: Strategy,
        F: Strategy,
        G: Strategy,
        H: Strategy,
    > Strategy for (A, B, C, D, E, F, G, H)
{
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value, F::Value, G::Value, H::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
            self.4.sample(rng),
            self.5.sample(rng),
            self.6.sample(rng),
            self.7.sample(rng),
        )
    }
}

// ---------------------------------------------------------------------------
// String strategies from regex-subset patterns.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Quantified> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated [class] in pattern {pattern:?}");
                i += 1; // ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in pattern {pattern:?}");
                let c = chars[i];
                i += 1;
                match c {
                    'd' => Atom::Class(vec![('0', '9')]),
                    'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    other => Atom::Literal(other),
                }
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated {quantifier}")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        out.push(Quantified { atom, min, max });
    }
    out
}

fn sample_pattern(parts: &[Quantified], rng: &mut StdRng) -> String {
    let mut out = String::new();
    for part in parts {
        let count =
            if part.min == part.max { part.min } else { rng.gen_range(part.min..=part.max) };
        for _ in 0..count {
            match &part.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let total: u32 =
                        ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
                    let mut pick = rng.gen_range(0..total);
                    for (lo, hi) in ranges {
                        let span = *hi as u32 - *lo as u32 + 1;
                        if pick < span {
                            out.push(char::from_u32(*lo as u32 + pick).expect("valid class char"));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        sample_pattern(&parse_pattern(self), rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        sample_pattern(&parse_pattern(self), rng)
    }
}

// ---------------------------------------------------------------------------
// Collection strategies.
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Sizes accepted by `collection::vec`: exact or a range.
    pub trait IntoSizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len =
                if self.min == self.max { self.min } else { rng.gen_range(self.min..=self.max) };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Property-test entry point. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

/// Assertion macros — panic directly (no shrinking/rejection machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde shim — implemented directly on `proc_macro::TokenStream` (no
//! syn/quote, which are unavailable offline).
//!
//! Supported shapes (everything this workspace derives on):
//! - structs with named fields, including `#[serde(skip)]` fields
//!   (skipped on serialize, `Default::default()` on deserialize);
//! - enums with unit, tuple, and struct variants, using upstream serde's
//!   externally-tagged JSON representation:
//!   `Unit` → `"Unit"`, `Tuple(a)` → `{"Tuple": a}`,
//!   `Tuple(a, b)` → `{"Tuple": [a, b]}`, `Struct{f}` → `{"Struct": {"f": ...}}`.
//!
//! Generics and other serde attributes are intentionally unsupported and
//! produce a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

/// `#[serde(skip)]` detection inside an attribute group's tokens.
fn attr_is_serde_skip(tokens: &[TokenTree]) -> bool {
    // Shape: [ serde ( skip ) ]
    if let [TokenTree::Group(bracket)] = tokens {
        let inner: Vec<TokenTree> = bracket.stream().into_iter().collect();
        if inner.len() == 2 {
            if let (TokenTree::Ident(name), TokenTree::Group(args)) = (&inner[0], &inner[1]) {
                if name.to_string() == "serde" {
                    return args.stream().into_iter().any(|t| match t {
                        TokenTree::Ident(i) => i.to_string() == "skip",
                        _ => false,
                    });
                }
            }
        }
    }
    false
}

/// Split a token list on top-level commas, tracking `<...>` depth so
/// commas inside generic types don't split fields.
fn split_top_level_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        out.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(t);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Parse `name: Type` fields from a brace group's tokens, honouring
/// attributes and visibility modifiers.
fn parse_named_fields(tokens: Vec<TokenTree>) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for field_tokens in split_top_level_commas(tokens) {
        let mut skip = false;
        let mut iter = field_tokens.into_iter().peekable();
        // Leading attributes: `#` followed by a bracket group.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    let mut attr_tokens = Vec::new();
                    if let Some(group @ TokenTree::Group(_)) = iter.next() {
                        attr_tokens.push(group);
                    } else {
                        return Err("malformed attribute".into());
                    }
                    if attr_is_serde_skip(&attr_tokens) {
                        skip = true;
                    }
                }
                _ => break,
            }
        }
        // Visibility: `pub` possibly followed by `(...)`.
        if let Some(TokenTree::Ident(i)) = iter.peek() {
            if i.to_string() == "pub" {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        // The rest is `: Type` — the type itself is not needed.
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn parse_variants(tokens: Vec<TokenTree>) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for var_tokens in split_top_level_commas(tokens) {
        let mut iter = var_tokens.into_iter().peekable();
        // Skip doc comments / attributes.
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next(); // the bracket group
            } else {
                break;
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let shape = match iter.next() {
            None => VariantShape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = split_top_level_commas(g.stream().into_iter().collect()).len();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantShape::Struct(parse_named_fields(g.stream().into_iter().collect())?)
            }
            // `= discriminant` — not supported for data enums here.
            other => return Err(format!("unsupported variant shape: {other:?}")),
        };
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.peek() {
            // Outer attributes and doc comments.
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next();
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` is not supported by the serde shim derive"));
        }
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "tuple struct `{name}` is not supported by the serde shim derive"
                ))
            }
            Some(_) => continue, // `where` clauses etc. would land here
            None => return Err(format!("`{name}` has no body")),
        }
    };
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    match kind.as_str() {
        "struct" => Ok(Item::Struct { name, fields: parse_named_fields(tokens)? }),
        "enum" => Ok(Item::Enum { name, variants: parse_variants(tokens)? }),
        other => Err(format!("cannot derive for `{other}`")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let mut body = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                body.push_str(&format!(
                    "m.insert({:?}.to_string(), ::serde::Serialize::serialize(&self.{}));\n",
                    f.name, f.name
                ));
            }
            body.push_str("::serde::Value::Object(m)");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert({vn:?}.to_string(), {payload});\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from("let mut fm = ::serde::Map::new();\n");
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "fm.insert({:?}.to_string(), ::serde::Serialize::serialize({}));\n",
                                f.name, f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n{inner}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert({vn:?}.to_string(), ::serde::Value::Object(fm));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}"
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                if f.skip {
                    inits.push_str(&format!("{}: ::core::default::Default::default(),\n", f.name));
                } else {
                    inits.push_str(&format!("{}: ::serde::field(v, {:?})?,\n", f.name, f.name));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 Ok({name} {{\n{inits}}})\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => return Ok({name}::{vn}),\n"));
                        // Also accept `{"Unit": null}`.
                        tagged_arms.push_str(&format!("{vn:?} => return Ok({name}::{vn}),\n"));
                    }
                    VariantShape::Tuple(n) => {
                        if *n == 1 {
                            tagged_arms.push_str(&format!(
                                "{vn:?} => return Ok({name}::{vn}(::serde::Deserialize::deserialize(payload)?)),\n"
                            ));
                        } else {
                            let gets: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::deserialize(items.get({i}).unwrap_or(&::serde::Value::Null))?"
                                    )
                                })
                                .collect();
                            tagged_arms.push_str(&format!(
                                "{vn:?} => {{\n\
                                 let items = payload.as_array().ok_or_else(|| ::serde::DeError::type_mismatch(\"array\", payload))?;\n\
                                 return Ok({name}::{vn}({}));\n}}\n",
                                gets.join(", ")
                            ));
                        }
                    }
                    VariantShape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::core::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{}: ::serde::field(payload, {:?})?,\n",
                                    f.name, f.name
                                ));
                            }
                        }
                        tagged_arms.push_str(&format!(
                            "{vn:?} => return Ok({name}::{vn} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::Value::String(tag) => {{\n\
                 match tag.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
                 Err(::serde::DeError::new(format!(\"unknown {name} variant `{{tag}}`\")))\n}}\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, payload) = m.iter().next().expect(\"len checked\");\n\
                 match tag.as_str() {{\n{tagged_arms}_ => {{}}\n}}\n\
                 Err(::serde::DeError::new(format!(\"unknown {name} variant `{{tag}}`\")))\n}}\n\
                 other => Err(::serde::DeError::type_mismatch(\"enum\", other)),\n\
                 }}\n}}\n}}"
            )
        }
    };
    code.parse().unwrap()
}

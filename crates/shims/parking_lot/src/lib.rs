//! Offline shim for the subset of `parking_lot` this workspace uses:
//! `Mutex`, `RwLock`, and `Condvar` with the non-poisoning API. Backed
//! by `std::sync`; a poisoned std lock (a panic while held) is
//! transparently recovered, matching parking_lot's "no poisoning"
//! semantics.

use std::ops::{Deref, DerefMut};
use std::sync::{self, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard newtype over `std::sync::MutexGuard`. The indirection exists so
/// [`Condvar::wait`] can take `&mut MutexGuard` (parking_lot's signature)
/// while std's `Condvar::wait` consumes the guard by value: the inner
/// guard is held in an `Option` that `wait` briefly takes from.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Block until notified, releasing the guard's lock while parked and
    /// reacquiring it before returning. Spurious wakeups are possible,
    /// as with std and parking_lot — callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present outside Condvar::wait");
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

//! Offline shim for the subset of `parking_lot` this workspace uses:
//! `Mutex` and `RwLock` with the non-poisoning API. Backed by `std::sync`;
//! a poisoned std lock (a panic while held) is transparently recovered,
//! matching parking_lot's "no poisoning" semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

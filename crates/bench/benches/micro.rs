//! Criterion microbenchmarks backing the runtime tables: profiling
//! throughput, catalog refinement, prompt construction, DSL
//! parse + execute, and the model-training kernels. These double as
//! ablation benches for the design choices DESIGN.md calls out
//! (embedding-based profiling, single vs chain prompt construction,
//! per-column vs wildcard pipelines).

use catdb_core::{PromptBuilder, PromptOptions};
use catdb_data::{generate, GenOptions};
use catdb_llm::{ModelProfile, SimLlm};
use catdb_ml::{Classifier, ForestConfig, LogisticRegression, Matrix, RandomForestClassifier};
use catdb_pipeline::{execute, parse, Environment, ExecutionConfig};
use catdb_profiler::{profile_table, ProfileOptions};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling");
    for (name, rows) in [("diabetes", 768), ("gas-drift", 2000)] {
        let g = generate(name, &GenOptions { max_rows: rows, scale: 1.0, seed: 3 }).unwrap();
        let flat = g.dataset.materialize().unwrap();
        group.bench_function(format!("{name}_{rows}rows"), |b| {
            b.iter(|| profile_table(name, black_box(&flat), &ProfileOptions::default()))
        });
    }
    group.finish();
}

fn bench_refinement(c: &mut Criterion) {
    let g = generate("etailing", &GenOptions { max_rows: 439, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let profile = profile_table("etailing", &flat, &ProfileOptions::default());
    let llm = SimLlm::new(ModelProfile::gemini_1_5_pro(), 3);
    c.bench_function("catalog_refinement_etailing", |b| {
        b.iter(|| {
            catdb_catalog::refine_dataset(
                "etailing",
                black_box(&flat),
                &profile,
                "target",
                &llm,
                &catdb_catalog::RefineOptions::default(),
            )
        })
    });
}

fn bench_prompt_construction(c: &mut Criterion) {
    let g = generate("kdd98", &GenOptions { max_rows: 1000, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let profile = profile_table("kdd98", &flat, &ProfileOptions::default());
    let entry = catdb_catalog::CatalogEntry::new(
        "kdd98",
        "target",
        catdb_ml::TaskKind::BinaryClassification,
        profile,
    );
    let mut group = c.benchmark_group("prompt_construction");
    group.bench_function("single_478cols", |b| {
        let builder = PromptBuilder::new(&entry, PromptOptions::default());
        b.iter(|| black_box(builder.single_prompt()))
    });
    group.bench_function("chain_478cols_beta4", |b| {
        let builder = PromptBuilder::new(&entry, PromptOptions { beta: 4, ..Default::default() });
        b.iter(|| {
            let chunks = builder.chain_chunks();
            for chunk in &chunks {
                black_box(builder.stage_prompt(catdb_llm::LlmTaskKind::Preprocessing, chunk, None));
            }
        })
    });
    group.finish();
}

fn bench_parse_execute(c: &mut Criterion) {
    let g = generate("diabetes", &GenOptions { max_rows: 768, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let (train, test) = flat.train_test_split(0.7, 1).unwrap();
    let source = r#"pipeline {
  impute * strategy median;
  impute * strategy most_frequent;
  encode * method onehot;
  model classifier decision_tree target "target" depth 8;
}"#;
    let mut group = c.benchmark_group("pipeline");
    group.bench_function("parse", |b| b.iter(|| parse(black_box(source)).unwrap()));
    let program = parse(source).unwrap();
    let env = Environment::default();
    let cfg = ExecutionConfig::new(catdb_ml::TaskKind::BinaryClassification);
    group.bench_function("execute_diabetes", |b| {
        b.iter(|| execute(black_box(&program), &train, &test, &env, &cfg).unwrap())
    });
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let n = 1000;
    let d = 20;
    let rows: Vec<Vec<f64>> =
        (0..n).map(|i| (0..d).map(|j| ((i * (j + 3)) % 97) as f64 / 97.0).collect()).collect();
    let x = Matrix::from_rows(&rows);
    let y: Vec<usize> = (0..n).map(|i| ((i * 7) % 97 > 48) as usize).collect();
    let mut group = c.benchmark_group("models");
    group.sample_size(10);
    group.bench_function("random_forest_20trees_1000x20", |b| {
        b.iter_batched(
            || RandomForestClassifier {
                config: ForestConfig { n_trees: 20, ..Default::default() },
            },
            |clf| clf.fit(black_box(&x), &y, 2).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("logistic_1000x20", |b| {
        b.iter(|| LogisticRegression::default().fit(black_box(&x), &y, 2).unwrap())
    });
    group.finish();
}

fn bench_llm_generation(c: &mut Criterion) {
    let g = generate("survey", &GenOptions { max_rows: 800, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let profile = profile_table("survey", &flat, &ProfileOptions::default());
    let entry = catdb_catalog::CatalogEntry::new(
        "survey",
        "target",
        catdb_ml::TaskKind::MulticlassClassification,
        profile,
    );
    let builder = PromptBuilder::new(&entry, PromptOptions::default());
    let prompt = builder.single_prompt();
    let llm = SimLlm::new(ModelProfile::gpt_4o(), 3);
    c.bench_function("simllm_pipeline_generation", |b| {
        b.iter(|| catdb_llm::LanguageModel::complete(&llm, black_box(&prompt)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_profiling,
    bench_refinement,
    bench_prompt_construction,
    bench_parse_execute,
    bench_models,
    bench_llm_generation
);
criterion_main!(benches);

//! Criterion microbenchmarks backing the runtime tables: profiling
//! throughput, catalog refinement, prompt construction, DSL
//! parse + execute, and the model-training kernels. These double as
//! ablation benches for the design choices DESIGN.md calls out
//! (embedding-based profiling, single vs chain prompt construction,
//! per-column vs wildcard pipelines).

use catdb_core::{generate_chain_source, CatDbConfig, PromptBuilder, PromptOptions};
use catdb_data::{generate, GenOptions};
use catdb_llm::{Completion, LanguageModel, LlmError, ModelProfile, Prompt, SimLlm};
use catdb_ml::{
    Classifier, ForestConfig, KnnClassifier, KnnConfig, LogisticRegression, Matrix,
    RandomForestClassifier, SplitMode,
};
use catdb_pipeline::{execute, parse, Environment, ExecutionConfig};
use catdb_profiler::{profile_table, ProfileOptions};
use catdb_sched::{CompletionCache, LlmScheduler};
use catdb_table::{read_csv_str, write_csv, CsvOptions};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;

fn bench_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling");
    for (name, rows) in [("diabetes", 768), ("gas-drift", 2000)] {
        let g = generate(name, &GenOptions { max_rows: rows, scale: 1.0, seed: 3 }).unwrap();
        let flat = g.dataset.materialize().unwrap();
        group.bench_function(format!("{name}_{rows}rows"), |b| {
            b.iter(|| profile_table(name, black_box(&flat), &ProfileOptions::default()))
        });
    }
    group.finish();
}

fn bench_refinement(c: &mut Criterion) {
    let g = generate("etailing", &GenOptions { max_rows: 439, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let profile = profile_table("etailing", &flat, &ProfileOptions::default());
    let llm = SimLlm::new(ModelProfile::gemini_1_5_pro(), 3);
    c.bench_function("catalog_refinement_etailing", |b| {
        b.iter(|| {
            catdb_catalog::refine_dataset(
                "etailing",
                black_box(&flat),
                &profile,
                "target",
                &llm,
                &catdb_catalog::RefineOptions::default(),
            )
        })
    });
}

fn bench_prompt_construction(c: &mut Criterion) {
    let g = generate("kdd98", &GenOptions { max_rows: 1000, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let profile = profile_table("kdd98", &flat, &ProfileOptions::default());
    let entry = catdb_catalog::CatalogEntry::new(
        "kdd98",
        "target",
        catdb_ml::TaskKind::BinaryClassification,
        profile,
    );
    let mut group = c.benchmark_group("prompt_construction");
    group.bench_function("single_478cols", |b| {
        let builder = PromptBuilder::new(&entry, PromptOptions::default());
        b.iter(|| black_box(builder.single_prompt()))
    });
    group.bench_function("chain_478cols_beta4", |b| {
        let builder = PromptBuilder::new(&entry, PromptOptions { beta: 4, ..Default::default() });
        b.iter(|| {
            let chunks = builder.chain_chunks();
            for chunk in &chunks {
                black_box(builder.stage_prompt(catdb_llm::LlmTaskKind::Preprocessing, chunk, None));
            }
        })
    });
    group.finish();
}

fn bench_parse_execute(c: &mut Criterion) {
    let g = generate("diabetes", &GenOptions { max_rows: 768, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let (train, test) = flat.train_test_split(0.7, 1).unwrap();
    let source = r#"pipeline {
  impute * strategy median;
  impute * strategy most_frequent;
  encode * method onehot;
  model classifier decision_tree target "target" depth 8;
}"#;
    let mut group = c.benchmark_group("pipeline");
    group.bench_function("parse", |b| b.iter(|| parse(black_box(source)).unwrap()));
    let program = parse(source).unwrap();
    let env = Environment::default();
    let cfg = ExecutionConfig::new(catdb_ml::TaskKind::BinaryClassification);
    group.bench_function("execute_diabetes", |b| {
        b.iter(|| execute(black_box(&program), &train, &test, &env, &cfg).unwrap())
    });
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let n = 1000;
    let d = 20;
    let rows: Vec<Vec<f64>> =
        (0..n).map(|i| (0..d).map(|j| ((i * (j + 3)) % 97) as f64 / 97.0).collect()).collect();
    let x = Matrix::from_rows(&rows);
    let y: Vec<usize> = (0..n).map(|i| ((i * 7) % 97 > 48) as usize).collect();
    let mut group = c.benchmark_group("models");
    group.sample_size(10);
    group.bench_function("random_forest_20trees_1000x20", |b| {
        b.iter_batched(
            || RandomForestClassifier {
                config: ForestConfig { n_trees: 20, ..Default::default() },
            },
            |clf| clf.fit(black_box(&x), &y, 2).unwrap(),
            BatchSize::SmallInput,
        )
    });
    // Same forest with histogram split search — the ablation pair for
    // `random_forest_20trees_1000x20` (exact scans above).
    group.bench_function("random_forest_binned_20trees_1000x20", |b| {
        b.iter_batched(
            || RandomForestClassifier {
                config: ForestConfig {
                    n_trees: 20,
                    split_mode: SplitMode::Binned { bins: 256 },
                    ..Default::default()
                },
            },
            |clf| clf.fit(black_box(&x), &y, 2).unwrap(),
            BatchSize::SmallInput,
        )
    });
    // k-NN fit + full predict: prediction runs the blocked distance
    // kernel over every (query, train) pair.
    group.bench_function("knn_blocked_1000x20", |b| {
        b.iter_batched(
            || KnnClassifier { config: KnnConfig { k: 7 } },
            |clf| {
                let model = clf.fit(black_box(&x), &y, 2).unwrap();
                model.predict(black_box(&x)).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("logistic_1000x20", |b| {
        b.iter(|| LogisticRegression::default().fit(black_box(&x), &y, 2).unwrap())
    });
    group.finish();
}

fn bench_llm_generation(c: &mut Criterion) {
    let g = generate("survey", &GenOptions { max_rows: 800, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let profile = profile_table("survey", &flat, &ProfileOptions::default());
    let entry = catdb_catalog::CatalogEntry::new(
        "survey",
        "target",
        catdb_ml::TaskKind::MulticlassClassification,
        profile,
    );
    let builder = PromptBuilder::new(&entry, PromptOptions::default());
    let prompt = builder.single_prompt();
    let llm = SimLlm::new(ModelProfile::gpt_4o(), 3);
    c.bench_function("simllm_pipeline_generation", |b| {
        b.iter(|| catdb_llm::LanguageModel::complete(&llm, black_box(&prompt)).unwrap())
    });
}

/// A [`SimLlm`] with real per-call wall-clock latency, standing in for
/// network round-trips so the chain bench measures what the concurrent
/// scheduler actually buys (SimLlm itself only *records* latency into
/// the completion, it never sleeps).
struct SlowLlm {
    inner: SimLlm,
    delay: std::time::Duration,
}

impl LanguageModel for SlowLlm {
    fn model_name(&self) -> &str {
        self.inner.model_name()
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }

    fn complete(&self, prompt: &Prompt) -> Result<Completion, LlmError> {
        std::thread::sleep(self.delay);
        self.inner.complete(prompt)
    }
}

fn bench_chain_generation(c: &mut Criterion) {
    let g = generate("cmc", &GenOptions { max_rows: 600, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let profile = profile_table("cmc", &flat, &ProfileOptions::default());
    let entry = catdb_catalog::CatalogEntry::new(
        "cmc",
        "target",
        catdb_ml::TaskKind::MulticlassClassification,
        profile,
    );
    // 3 ms of simulated network latency per call; β = 4 chunks → nine
    // prompts per chain (4 preprocessing + 4 feature engineering + 1
    // model selection). Sequentially that is 9 round-trips of latency;
    // at concurrency 4 the two fan-out stages collapse to one round-trip
    // each, so the concurrent bench should run ≈3x faster.
    let llm = SlowLlm {
        inner: SimLlm::new(ModelProfile::gpt_4o(), 3),
        delay: std::time::Duration::from_millis(3),
    };
    let cfg_at = |concurrency: usize| CatDbConfig {
        prompt: PromptOptions { beta: 4, ..Default::default() },
        llm_concurrency: concurrency,
        ..Default::default()
    };
    let mut group = c.benchmark_group("chain");
    group.sample_size(10);
    group.bench_function("chain_gen_beta4_seq", |b| {
        let cfg = cfg_at(1);
        b.iter(|| generate_chain_source(black_box(&entry), &llm, &cfg).unwrap())
    });
    group.bench_function("chain_gen_beta4_conc4", |b| {
        let cfg = cfg_at(4);
        b.iter(|| generate_chain_source(black_box(&entry), &llm, &cfg).unwrap())
    });
    group.finish();
}

fn bench_completion_cache(c: &mut Criterion) {
    let g = generate("survey", &GenOptions { max_rows: 800, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let profile = profile_table("survey", &flat, &ProfileOptions::default());
    let entry = catdb_catalog::CatalogEntry::new(
        "survey",
        "target",
        catdb_ml::TaskKind::MulticlassClassification,
        profile,
    );
    let builder = PromptBuilder::new(&entry, PromptOptions::default());
    let prompt = builder.single_prompt();
    let llm = SimLlm::new(ModelProfile::gpt_4o(), 3);
    let mut group = c.benchmark_group("cache");
    // Cold: a fresh cache every iteration, so each completion pays the
    // full simulator path plus fingerprint + insert.
    group.bench_function("cache_cold_miss", |b| {
        b.iter_batched(
            || LlmScheduler::new(&llm, Arc::new(CompletionCache::new(64))),
            |sched| sched.complete(black_box(&prompt)).unwrap(),
            BatchSize::SmallInput,
        )
    });
    // Warm: one pre-warmed cache; every iteration is a pure hit.
    let sched = LlmScheduler::new(&llm, Arc::new(CompletionCache::new(64)));
    sched.complete(&prompt).unwrap();
    group.bench_function("cache_warm_hit", |b| {
        b.iter(|| sched.complete(black_box(&prompt)).unwrap())
    });
    group.finish();
}

/// A 50k-row mixed-type CSV (int, float-with-nulls, float, bool,
/// quoted-comma categorical, free text with escaped quotes) for the
/// ingestion benches. Seeded LCG, no RNG dependency; deliberately free of
/// embedded newlines so the frozen seed reader below parses the same file
/// and the baseline comparison stays apples-to-apples.
fn synth_csv(rows: usize) -> String {
    let mut out = String::with_capacity(rows * 64);
    out.push_str("id,score,ratio,active,city,note\n");
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    const CITIES: [&str; 5] =
        ["Berlin", "\"San Jose, CA\"", "Montreal", "\"Porto, PT\"", "Karlsruhe"];
    for i in 0..rows {
        let r = next();
        let score = if r % 50 == 0 { "NA".to_string() } else { format!("{}.{}", r % 100, r % 10) };
        let note = if r % 11 == 0 {
            format!("\"said \"\"{}\"\" loudly\"", r % 1000)
        } else {
            format!("note {} for row {i}", r % 7919)
        };
        writeln!(
            out,
            "{i},{score},{}.{:03},{},{},{note}",
            r % 7,
            r % 1000,
            if r % 3 == 0 { "true" } else { "false" },
            CITIES[(r % 5) as usize],
        )
        .expect("writing to String cannot fail");
    }
    out
}

// ---------------------------------------------------------------------------
// The seed CSV reader, frozen as the ingestion baseline: per-line Strings
// via `BufRead::lines`, char-by-char record splitting, a `Vec<Vec<String>>`
// of owned cells, and a full column re-parse on type degradation. Kept
// verbatim (minus dead branches) so `csv/ingest` speedups in
// results/BENCH_perf.json are measured against the real predecessor on the
// same machine, not a recorded number.
// ---------------------------------------------------------------------------

fn seed_split_record(line: &str, delim: u8) -> Result<Vec<String>, String> {
    let delim = delim as char;
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else if c == '"' {
            if field.is_empty() {
                in_quotes = true;
            } else {
                return Err("quote inside unquoted field".to_string());
            }
        } else if c == delim {
            fields.push(std::mem::take(&mut field));
        } else {
            field.push(c);
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".to_string());
    }
    fields.push(field);
    Ok(fields)
}

fn seed_parse_cell(
    raw: &str,
    dtype: catdb_table::DataType,
    null_markers: &[String],
) -> catdb_table::Value {
    use catdb_table::{DataType, Value};
    let trimmed = raw.trim();
    if trimmed.is_empty() || null_markers.iter().any(|m| m == trimmed) {
        return Value::Null;
    }
    match dtype {
        DataType::Int => trimmed.parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
        DataType::Float => trimmed.parse::<f64>().map(Value::Float).unwrap_or(Value::Null),
        DataType::Bool => match trimmed.to_ascii_lowercase().as_str() {
            "true" | "t" | "yes" | "1" => Value::Bool(true),
            "false" | "f" | "no" | "0" => Value::Bool(false),
            _ => Value::Null,
        },
        DataType::Str => Value::Str(raw.to_string()),
    }
}

fn seed_infer_type(samples: &[&str], null_markers: &[String]) -> catdb_table::DataType {
    use catdb_table::DataType;
    let mut could_bool = true;
    let mut could_int = true;
    let mut could_float = true;
    let mut saw_value = false;
    for &raw in samples {
        let t = raw.trim();
        if t.is_empty() || null_markers.iter().any(|m| m == t) {
            continue;
        }
        saw_value = true;
        let lower = t.to_ascii_lowercase();
        if !matches!(lower.as_str(), "true" | "false" | "t" | "f" | "yes" | "no") {
            could_bool = false;
        }
        if t.parse::<i64>().is_err() {
            could_int = false;
        }
        if t.parse::<f64>().is_err() {
            could_float = false;
        }
        if !could_bool && !could_int && !could_float {
            return DataType::Str;
        }
    }
    if !saw_value {
        return DataType::Str;
    }
    if could_bool {
        DataType::Bool
    } else if could_int {
        DataType::Int
    } else if could_float {
        DataType::Float
    } else {
        DataType::Str
    }
}

fn seed_read_csv_str(text: &str, opts: &CsvOptions) -> catdb_table::Table {
    use catdb_table::{Column, DataType, Table};
    use std::io::BufRead;
    let reader = std::io::BufReader::new(text.as_bytes());
    let mut records: Vec<Vec<String>> = Vec::new();
    for line in reader.lines() {
        let line = line.expect("in-memory read");
        if line.is_empty() && records.is_empty() {
            continue;
        }
        records.push(seed_split_record(&line, opts.delimiter).expect("bench CSV is well-formed"));
    }
    let header: Vec<String> = records.remove(0);
    let n_cols = header.len();
    let sample_n = records.len().min(opts.inference_rows);
    let mut dtypes = Vec::with_capacity(n_cols);
    for c in 0..n_cols {
        let samples: Vec<&str> = records[..sample_n].iter().map(|r| r[c].as_str()).collect();
        dtypes.push(seed_infer_type(&samples, &opts.null_markers));
    }
    let mut cols: Vec<Column> =
        dtypes.iter().map(|&dt| Column::with_capacity(dt, records.len())).collect();
    for c in 0..n_cols {
        let mut degraded = false;
        for rec in &records {
            let v = seed_parse_cell(&rec[c], dtypes[c], &opts.null_markers);
            let raw_is_null = {
                let t = rec[c].trim();
                t.is_empty() || opts.null_markers.iter().any(|m| m == t)
            };
            if v.is_null() && !raw_is_null && dtypes[c] != DataType::Str {
                degraded = true;
                break;
            }
            cols[c].push(v).expect("parse_cell yields matching type");
        }
        if degraded {
            let mut s = Column::with_capacity(DataType::Str, records.len());
            for rec in &records {
                s.push(seed_parse_cell(&rec[c], DataType::Str, &opts.null_markers))
                    .expect("string column accepts strings");
            }
            cols[c] = s;
        }
    }
    Table::from_columns(header.into_iter().zip(cols).collect()).expect("bench CSV is rectangular")
}

fn bench_csv(c: &mut Criterion) {
    let csv = synth_csv(50_000);
    let opts = CsvOptions::default();
    let table = read_csv_str(&csv, &opts).unwrap();
    assert_eq!(table.n_rows(), 50_000);
    let mut group = c.benchmark_group("csv");
    group.sample_size(10);
    group.bench_function("ingest_50k_mixed", |b| {
        b.iter_with_large_drop(|| read_csv_str(black_box(&csv), &opts).unwrap())
    });
    let seq_opts = CsvOptions { n_threads: 1, ..CsvOptions::default() };
    group.bench_function("ingest_seq_50k_mixed", |b| {
        b.iter_with_large_drop(|| read_csv_str(black_box(&csv), &seq_opts).unwrap())
    });
    group.bench_function("seed_ingest_50k_mixed", |b| {
        b.iter_with_large_drop(|| seed_read_csv_str(black_box(&csv), &opts))
    });
    group.bench_function("write_50k_mixed", |b| {
        b.iter(|| {
            let mut out: Vec<u8> = Vec::with_capacity(csv.len());
            write_csv(black_box(&table), &mut out, b',').unwrap();
            out
        })
    });
    group.bench_function("write_roundtrip_50k_mixed", |b| {
        b.iter_with_large_drop(|| {
            let mut out: Vec<u8> = Vec::with_capacity(csv.len());
            write_csv(black_box(&table), &mut out, b',').unwrap();
            let back = read_csv_str(std::str::from_utf8(&out).unwrap(), &opts).unwrap();
            assert_eq!(back.n_rows(), 50_000);
            back
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_csv,
    bench_profiling,
    bench_refinement,
    bench_prompt_construction,
    bench_parse_execute,
    bench_models,
    bench_llm_generation,
    bench_chain_generation,
    bench_completion_cache
);
criterion_main!(benches);

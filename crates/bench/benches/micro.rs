//! Criterion microbenchmarks backing the runtime tables: profiling
//! throughput, catalog refinement, prompt construction, DSL
//! parse + execute, and the model-training kernels. These double as
//! ablation benches for the design choices DESIGN.md calls out
//! (embedding-based profiling, single vs chain prompt construction,
//! per-column vs wildcard pipelines).

use catdb_core::{generate_chain_source, CatDbConfig, PromptBuilder, PromptOptions};
use catdb_data::{generate, GenOptions};
use catdb_llm::{Completion, LanguageModel, LlmError, ModelProfile, Prompt, SimLlm};
use catdb_ml::{Classifier, ForestConfig, LogisticRegression, Matrix, RandomForestClassifier};
use catdb_pipeline::{execute, parse, Environment, ExecutionConfig};
use catdb_profiler::{profile_table, ProfileOptions};
use catdb_sched::{CompletionCache, LlmScheduler};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling");
    for (name, rows) in [("diabetes", 768), ("gas-drift", 2000)] {
        let g = generate(name, &GenOptions { max_rows: rows, scale: 1.0, seed: 3 }).unwrap();
        let flat = g.dataset.materialize().unwrap();
        group.bench_function(format!("{name}_{rows}rows"), |b| {
            b.iter(|| profile_table(name, black_box(&flat), &ProfileOptions::default()))
        });
    }
    group.finish();
}

fn bench_refinement(c: &mut Criterion) {
    let g = generate("etailing", &GenOptions { max_rows: 439, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let profile = profile_table("etailing", &flat, &ProfileOptions::default());
    let llm = SimLlm::new(ModelProfile::gemini_1_5_pro(), 3);
    c.bench_function("catalog_refinement_etailing", |b| {
        b.iter(|| {
            catdb_catalog::refine_dataset(
                "etailing",
                black_box(&flat),
                &profile,
                "target",
                &llm,
                &catdb_catalog::RefineOptions::default(),
            )
        })
    });
}

fn bench_prompt_construction(c: &mut Criterion) {
    let g = generate("kdd98", &GenOptions { max_rows: 1000, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let profile = profile_table("kdd98", &flat, &ProfileOptions::default());
    let entry = catdb_catalog::CatalogEntry::new(
        "kdd98",
        "target",
        catdb_ml::TaskKind::BinaryClassification,
        profile,
    );
    let mut group = c.benchmark_group("prompt_construction");
    group.bench_function("single_478cols", |b| {
        let builder = PromptBuilder::new(&entry, PromptOptions::default());
        b.iter(|| black_box(builder.single_prompt()))
    });
    group.bench_function("chain_478cols_beta4", |b| {
        let builder = PromptBuilder::new(&entry, PromptOptions { beta: 4, ..Default::default() });
        b.iter(|| {
            let chunks = builder.chain_chunks();
            for chunk in &chunks {
                black_box(builder.stage_prompt(catdb_llm::LlmTaskKind::Preprocessing, chunk, None));
            }
        })
    });
    group.finish();
}

fn bench_parse_execute(c: &mut Criterion) {
    let g = generate("diabetes", &GenOptions { max_rows: 768, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let (train, test) = flat.train_test_split(0.7, 1).unwrap();
    let source = r#"pipeline {
  impute * strategy median;
  impute * strategy most_frequent;
  encode * method onehot;
  model classifier decision_tree target "target" depth 8;
}"#;
    let mut group = c.benchmark_group("pipeline");
    group.bench_function("parse", |b| b.iter(|| parse(black_box(source)).unwrap()));
    let program = parse(source).unwrap();
    let env = Environment::default();
    let cfg = ExecutionConfig::new(catdb_ml::TaskKind::BinaryClassification);
    group.bench_function("execute_diabetes", |b| {
        b.iter(|| execute(black_box(&program), &train, &test, &env, &cfg).unwrap())
    });
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let n = 1000;
    let d = 20;
    let rows: Vec<Vec<f64>> =
        (0..n).map(|i| (0..d).map(|j| ((i * (j + 3)) % 97) as f64 / 97.0).collect()).collect();
    let x = Matrix::from_rows(&rows);
    let y: Vec<usize> = (0..n).map(|i| ((i * 7) % 97 > 48) as usize).collect();
    let mut group = c.benchmark_group("models");
    group.sample_size(10);
    group.bench_function("random_forest_20trees_1000x20", |b| {
        b.iter_batched(
            || RandomForestClassifier {
                config: ForestConfig { n_trees: 20, ..Default::default() },
            },
            |clf| clf.fit(black_box(&x), &y, 2).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("logistic_1000x20", |b| {
        b.iter(|| LogisticRegression::default().fit(black_box(&x), &y, 2).unwrap())
    });
    group.finish();
}

fn bench_llm_generation(c: &mut Criterion) {
    let g = generate("survey", &GenOptions { max_rows: 800, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let profile = profile_table("survey", &flat, &ProfileOptions::default());
    let entry = catdb_catalog::CatalogEntry::new(
        "survey",
        "target",
        catdb_ml::TaskKind::MulticlassClassification,
        profile,
    );
    let builder = PromptBuilder::new(&entry, PromptOptions::default());
    let prompt = builder.single_prompt();
    let llm = SimLlm::new(ModelProfile::gpt_4o(), 3);
    c.bench_function("simllm_pipeline_generation", |b| {
        b.iter(|| catdb_llm::LanguageModel::complete(&llm, black_box(&prompt)).unwrap())
    });
}

/// A [`SimLlm`] with real per-call wall-clock latency, standing in for
/// network round-trips so the chain bench measures what the concurrent
/// scheduler actually buys (SimLlm itself only *records* latency into
/// the completion, it never sleeps).
struct SlowLlm {
    inner: SimLlm,
    delay: std::time::Duration,
}

impl LanguageModel for SlowLlm {
    fn model_name(&self) -> &str {
        self.inner.model_name()
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }

    fn complete(&self, prompt: &Prompt) -> Result<Completion, LlmError> {
        std::thread::sleep(self.delay);
        self.inner.complete(prompt)
    }
}

fn bench_chain_generation(c: &mut Criterion) {
    let g = generate("cmc", &GenOptions { max_rows: 600, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let profile = profile_table("cmc", &flat, &ProfileOptions::default());
    let entry = catdb_catalog::CatalogEntry::new(
        "cmc",
        "target",
        catdb_ml::TaskKind::MulticlassClassification,
        profile,
    );
    // 3 ms of simulated network latency per call; β = 4 chunks → nine
    // prompts per chain (4 preprocessing + 4 feature engineering + 1
    // model selection). Sequentially that is 9 round-trips of latency;
    // at concurrency 4 the two fan-out stages collapse to one round-trip
    // each, so the concurrent bench should run ≈3x faster.
    let llm = SlowLlm {
        inner: SimLlm::new(ModelProfile::gpt_4o(), 3),
        delay: std::time::Duration::from_millis(3),
    };
    let cfg_at = |concurrency: usize| CatDbConfig {
        prompt: PromptOptions { beta: 4, ..Default::default() },
        llm_concurrency: concurrency,
        ..Default::default()
    };
    let mut group = c.benchmark_group("chain");
    group.sample_size(10);
    group.bench_function("chain_gen_beta4_seq", |b| {
        let cfg = cfg_at(1);
        b.iter(|| generate_chain_source(black_box(&entry), &llm, &cfg).unwrap())
    });
    group.bench_function("chain_gen_beta4_conc4", |b| {
        let cfg = cfg_at(4);
        b.iter(|| generate_chain_source(black_box(&entry), &llm, &cfg).unwrap())
    });
    group.finish();
}

fn bench_completion_cache(c: &mut Criterion) {
    let g = generate("survey", &GenOptions { max_rows: 800, scale: 1.0, seed: 3 }).unwrap();
    let flat = g.dataset.materialize().unwrap();
    let profile = profile_table("survey", &flat, &ProfileOptions::default());
    let entry = catdb_catalog::CatalogEntry::new(
        "survey",
        "target",
        catdb_ml::TaskKind::MulticlassClassification,
        profile,
    );
    let builder = PromptBuilder::new(&entry, PromptOptions::default());
    let prompt = builder.single_prompt();
    let llm = SimLlm::new(ModelProfile::gpt_4o(), 3);
    let mut group = c.benchmark_group("cache");
    // Cold: a fresh cache every iteration, so each completion pays the
    // full simulator path plus fingerprint + insert.
    group.bench_function("cache_cold_miss", |b| {
        b.iter_batched(
            || LlmScheduler::new(&llm, Arc::new(CompletionCache::new(64))),
            |sched| sched.complete(black_box(&prompt)).unwrap(),
            BatchSize::SmallInput,
        )
    });
    // Warm: one pre-warmed cache; every iteration is a pure hit.
    let sched = LlmScheduler::new(&llm, Arc::new(CompletionCache::new(64)));
    sched.complete(&prompt).unwrap();
    group.bench_function("cache_warm_hit", |b| {
        b.iter(|| sched.complete(black_box(&prompt)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_profiling,
    bench_refinement,
    bench_prompt_construction,
    bench_parse_execute,
    bench_models,
    bench_llm_generation,
    bench_chain_generation,
    bench_completion_cache
);
criterion_main!(benches);

//! Table 7 — single-iteration quality on the eight large/complex datasets
//! (Airline, IMDB, Accidents, Financial, CMC, Bike-Sharing, House-Sales,
//! NYC) across the three LLM profiles, against CAAFE, AIDE, AutoGen, the
//! AutoML tools, and AutoML after cleaning + augmentation.
//!
//! Paper shapes: CatDB/CatDB Chain rank at or near the top everywhere and
//! never fail; CAAFE(TabPFN) OOMs on the large datasets; AutoML tools hit
//! OOM/TO on the biggest ones.

use catdb_automl::{run_automl, AutoMlConfig, AutoMlOutcome, ToolProfile};
use catdb_baselines::{run_aide, run_autogen, run_caafe, AideConfig, AutoGenConfig, CaafeConfig};
use catdb_bench::{
    llm_for, pct, prepare, render_table, run_catdb, save_results, test_score, BenchArgs,
};
use catdb_clean::{saga, SagaConfig};
use catdb_data::generate;
use serde_json::json;

const DATASETS: [&str; 8] =
    ["airline", "imdb", "accidents", "financial", "cmc", "bike-sharing", "house-sales", "nyc"];

fn main() {
    let args = BenchArgs::parse();
    let llms = if args.quick { vec!["gemini-1.5-pro"] } else { catdb_bench::paper_llms() };
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for name in DATASETS {
        let g = generate(name, &args.gen_options()).expect("known dataset");
        // AutoML + cleaning run once per dataset (LLM-independent).
        let prep_llm = llm_for("gemini-1.5-pro", args.seed);
        let p = prepare(&g, true, &prep_llm, args.seed);
        let automl_cfg =
            AutoMlConfig { time_budget_seconds: 12.0, seed: args.seed, ..Default::default() };
        let cleaning = saga(&p.raw_train, &p.target, p.task, &SagaConfig::default()).ok();
        let prep_label = cleaning.as_ref().map(|c| c.label()).unwrap_or_else(|| "-".into());
        let mut automl_cells = Vec::new();
        for tool in ToolProfile::all() {
            let raw = run_automl(&tool, &p.raw_train, &p.raw_test, &p.target, p.task, &automl_cfg);
            let cleaned = match &cleaning {
                Some(c) => {
                    let test = c.apply_value_ops(&p.raw_test, &p.target);
                    run_automl(&tool, &c.cleaned, &test, &p.target, p.task, &automl_cfg)
                }
                None => AutoMlOutcome::Unsupported("cleaning failed"),
            };
            automl_cells.push((tool.name, raw.cell(), cleaned.cell()));
        }

        for llm_name in &llms {
            let llm = llm_for(llm_name, args.seed);
            let single = run_catdb(&p, &llm, 1, args.seed);
            let llm2 = llm_for(llm_name, args.seed ^ 0xABCD);
            let chain = run_catdb(&p, &llm2, 4, args.seed);
            let llm3 = llm_for(llm_name, args.seed);
            let caafe = run_caafe(
                &p.raw_train,
                &p.raw_test,
                &p.target,
                p.task,
                &llm3,
                &CaafeConfig::default(),
            );
            let llm4 = llm_for(llm_name, args.seed);
            let aide = run_aide(
                &p.raw_train,
                &p.raw_test,
                &p.target,
                p.task,
                &llm4,
                &AideConfig::default(),
            );
            let llm5 = llm_for(llm_name, args.seed);
            let autogen = run_autogen(
                &p.raw_train,
                &p.raw_test,
                &p.target,
                p.task,
                &llm5,
                &AutoGenConfig::default(),
            );

            let mut row = vec![
                name.to_string(),
                llm_name.to_string(),
                pct(test_score(&single)),
                pct(test_score(&chain)),
                caafe.cell(),
                aide.cell(),
                autogen.cell(),
            ];
            for (_, raw, cleaned) in &automl_cells {
                row.push(format!("{raw}/{cleaned}"));
            }
            row.push(prep_label.clone());
            rows.push(row);
            records.push(json!({
                "dataset": name, "llm": llm_name,
                "catdb": test_score(&single), "catdb_chain": test_score(&chain),
                "caafe": caafe.test_score, "aide": aide.test_score, "autogen": autogen.test_score,
                "automl": automl_cells.iter().map(|(t, r, c)| json!({"tool": t, "raw": r, "cleaned": c})).collect::<Vec<_>>(),
                "preprocessing": prep_label,
            }));
        }
    }
    println!(
        "{}",
        render_table(
            "Table 7: Single-iteration test AUC/R2 % (AutoML cells: raw/cleaned)",
            &[
                "dataset",
                "llm",
                "catdb",
                "chain",
                "caafe",
                "aide",
                "autogen",
                "a.sklearn",
                "h2o",
                "flaml",
                "autogluon",
                "preproc",
            ],
            &rows,
        )
    );
    save_results("tab7_single", &json!({ "records": records }));
}

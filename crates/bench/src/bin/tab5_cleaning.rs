//! Table 5 — accuracy on the six cleaning datasets: CatDB on original vs
//! refined data, the LLM-based baselines (CAAFE TabPFN / RandomForest,
//! AIDE, AutoGen), plain AutoML (H2O, FLAML, AutoGluon), and AutoML after
//! a cleaning workflow (SAGA or Learn2Clean).
//!
//! Paper shapes: refinement lifts CatDB's test accuracy sharply on dirty
//! datasets (EU IT 39.2 → 91.8-style); baselines without data-centric
//! cleaning trail on those datasets.

use catdb_automl::{run_automl, AutoMlConfig, AutoMlOutcome, ToolProfile};
use catdb_baselines::{
    run_aide, run_autogen, run_caafe, AideConfig, AutoGenConfig, CaafeConfig, CaafeModel,
};
use catdb_bench::{llm_for, prepare, render_table, save_results, BenchArgs};
use catdb_clean::{learn2clean, saga, SagaConfig};
use catdb_core::{generate_pipeline, CatDbConfig};
use catdb_data::generate;
use serde_json::json;

const CLEANING_DATASETS: [&str; 6] = ["eu-it", "wifi", "etailing", "survey", "utility", "yelp"];

fn acc_cells(train: Option<f64>, test: Option<f64>) -> (String, String) {
    let f = |v: Option<f64>| v.map(|v| format!("{v:.1}")).unwrap_or_else(|| "N/A".into());
    (f(train), f(test))
}

fn main() {
    let args = BenchArgs::parse();
    let mut rows = Vec::new();
    let mut records = Vec::new();

    for name in CLEANING_DATASETS {
        let g = generate(name, &args.gen_options()).expect("known dataset");
        let llm = llm_for("gemini-1.5-pro", args.seed);
        let p = prepare(&g, true, &llm, args.seed);
        let mut row = vec![name.to_string()];
        let mut record = serde_json::Map::new();
        record.insert("dataset".into(), json!(name));

        // CatDB on original vs refined catalog/data.
        let cfg = CatDbConfig { seed: args.seed, ..Default::default() };
        let original = generate_pipeline(&p.raw_entry, &p.raw_train, &p.raw_test, &llm, &cfg);
        let refined = generate_pipeline(&p.entry, &p.train, &p.test, &llm, &cfg);
        for (label, outcome) in [("catdb_original", &original), ("catdb_refined", &refined)] {
            let (tr, te) = match &outcome.evaluation {
                Some(e) => (Some(e.train.accuracy_pct()), Some(e.test.accuracy_pct())),
                None => (None, None),
            };
            let cells = acc_cells(tr, te);
            row.push(cells.0);
            row.push(cells.1.clone());
            record.insert(label.into(), json!({ "train": tr, "test": te }));
        }

        // LLM-based baselines run on the ORIGINAL (dirty) data.
        for (label, outcome) in [
            (
                "caafe_tabpfn",
                run_caafe(
                    &p.raw_train,
                    &p.raw_test,
                    &p.target,
                    p.task,
                    &llm,
                    &CaafeConfig::default(),
                ),
            ),
            (
                "caafe_rforest",
                run_caafe(
                    &p.raw_train,
                    &p.raw_test,
                    &p.target,
                    p.task,
                    &llm,
                    &CaafeConfig { model: CaafeModel::RandomForest, ..Default::default() },
                ),
            ),
            (
                "aide",
                run_aide(
                    &p.raw_train,
                    &p.raw_test,
                    &p.target,
                    p.task,
                    &llm,
                    &AideConfig::default(),
                ),
            ),
            (
                "autogen",
                run_autogen(
                    &p.raw_train,
                    &p.raw_test,
                    &p.target,
                    p.task,
                    &llm,
                    &AutoGenConfig::default(),
                ),
            ),
        ] {
            let cell = match outcome.test_accuracy_pct {
                Some(v) => format!("{v:.1}"),
                None => outcome.cell(),
            };
            row.push(cell);
            record.insert(
                label.into(),
                json!({ "test": outcome.test_accuracy_pct, "failure": outcome.failure }),
            );
        }

        // AutoML on original data, then AutoML after a cleaning workflow.
        let automl_cfg =
            AutoMlConfig { time_budget_seconds: 12.0, seed: args.seed, ..Default::default() };
        let cleaned = match saga(&p.raw_train, &p.target, p.task, &SagaConfig::default()) {
            Ok(r) => Some(("SAGA", r)),
            Err(_) => {
                learn2clean(&p.raw_train, &p.target, p.task, args.seed).ok().map(|r| ("L2C", r))
            }
        };
        let clean_label =
            cleaned.as_ref().map(|(l, _)| l.to_string()).unwrap_or_else(|| "N/A".into());
        for tool in [ToolProfile::h2o(), ToolProfile::flaml(), ToolProfile::autogluon()] {
            let raw = run_automl(&tool, &p.raw_train, &p.raw_test, &p.target, p.task, &automl_cfg);
            let cell_raw = match &raw {
                AutoMlOutcome::Success { test_accuracy_pct, .. } => {
                    format!("{test_accuracy_pct:.1}")
                }
                other => other.cell(),
            };
            let with_clean = match &cleaned {
                Some((_, r)) => {
                    let test = r.apply_value_ops(&p.raw_test, &p.target);
                    run_automl(&tool, &r.cleaned, &test, &p.target, p.task, &automl_cfg)
                }
                None => AutoMlOutcome::Unsupported("cleaning failed"),
            };
            let cell_clean = match &with_clean {
                AutoMlOutcome::Success { test_accuracy_pct, .. } => {
                    format!("{test_accuracy_pct:.1}")
                }
                other => other.cell(),
            };
            row.push(format!("{cell_raw}/{cell_clean}"));
            record.insert(
                format!("automl_{}", tool.name),
                json!({ "raw": cell_raw, "cleaned": cell_clean, "cleaner": clean_label }),
            );
        }
        row.push(clean_label);
        rows.push(row);
        records.push(serde_json::Value::Object(record));
    }

    println!(
        "{}",
        render_table(
            "Table 5: Six cleaning datasets — accuracy % (train/test for CatDB; raw/cleaned for AutoML)",
            &[
                "dataset",
                "catdb orig tr",
                "catdb orig te",
                "catdb ref tr",
                "catdb ref te",
                "caafe tabpfn",
                "caafe rf",
                "aide",
                "autogen",
                "h2o raw/cln",
                "flaml raw/cln",
                "ag raw/cln",
                "cleaner",
            ],
            &rows,
        )
    );
    save_results("tab5_cleaning", &json!({ "records": records }));
}

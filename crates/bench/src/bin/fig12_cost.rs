//! Figure 12 — token cost and total runtime over 10 iterations on
//! Diabetes, Gas-Drift, and Volkert for the LLM-based systems.
//!
//! Paper shapes: CatDB is cheaper than CatDB Chain; CAAFE's cost is
//! dominated by input tokens (schema + 10 samples per feature); AIDE is
//! cheap when generation succeeds and expensive when it retries; CatDB's
//! pipeline runtime is the smallest.

use catdb_baselines::{run_aide, run_autogen, run_caafe, AideConfig, AutoGenConfig, CaafeConfig};
use catdb_bench::{
    llm_for, paper_llms, prepare, render_table, run_catdb, save_results, traced, BenchArgs,
};
use catdb_data::generate;
use serde_json::json;

const DATASETS: [&str; 3] = ["diabetes", "gas-drift", "volkert"];

#[derive(Default, Clone, Copy)]
struct Acc {
    input: usize,
    output: usize,
    usd: f64,
    llm_seconds: f64,
    local_seconds: f64,
    runs: usize,
    cache_hits: usize,
    cache_saved_usd: f64,
}

impl Acc {
    /// Token and dollar numbers come straight from the run's trace; the
    /// clock numbers from the outcome structs.
    fn add(&mut self, trace: &catdb_trace::Trace, llm_s: f64, local_s: f64) {
        let (input, output) = trace.total_llm_tokens();
        self.input += input;
        self.output += output;
        self.usd += trace.total_llm_cost();
        self.llm_seconds += llm_s;
        self.local_seconds += local_s;
        self.runs += 1;
        self.cache_hits += trace.cache_hit_count();
        self.cache_saved_usd += trace.cache_saved_cost();
    }

    fn row(&self, dataset: &str, llm: &str, system: &str) -> Vec<String> {
        let n = self.runs.max(1) as f64;
        vec![
            dataset.to_string(),
            llm.to_string(),
            system.to_string(),
            format!("{:.0}", self.input as f64 / n),
            format!("{:.0}", self.output as f64 / n),
            format!("{:.4}", self.usd / n),
            format!("{:.2}", self.llm_seconds / n),
            format!("{:.3}", self.local_seconds / n),
        ]
    }
}

fn main() {
    let args = BenchArgs::parse();
    let iterations = if args.quick { 2 } else { 10 };
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for name in DATASETS {
        let g = generate(name, &args.gen_options()).expect("known dataset");
        for llm_name in paper_llms() {
            let prep_llm = llm_for(llm_name, args.seed);
            let p = prepare(&g, true, &prep_llm, args.seed);
            let mut accs: Vec<(&str, Acc)> = vec![
                ("catdb", Acc::default()),
                ("catdb_chain", Acc::default()),
                ("caafe", Acc::default()),
                ("aide", Acc::default()),
                ("autogen", Acc::default()),
            ];
            // With `--route` an extra row runs CatDB through the per-role
            // routed transport, so routed vs uniform cost reads off one
            // table.
            if args.route.is_some() {
                accs.push(("catdb_routed", Acc::default()));
            }
            for i in 0..iterations {
                let seed = args.seed + 31 * i as u64;
                let llm = llm_for(llm_name, seed);
                let (o, t) = traced(|| run_catdb(&p, &llm, 1, seed));
                accs[0].1.add(&t, o.llm_seconds, o.elapsed_seconds);
                let llm = llm_for(llm_name, seed);
                let (o, t) = traced(|| run_catdb(&p, &llm, 2, seed));
                accs[1].1.add(&t, o.llm_seconds, o.elapsed_seconds);
                // Baselines are traced through the simulator's LlmCall
                // instrumentation — no baseline-side changes needed.
                let llm = llm_for(llm_name, seed);
                let (b, t) = traced(|| {
                    run_caafe(
                        &p.raw_train,
                        &p.raw_test,
                        &p.target,
                        p.task,
                        &llm,
                        &CaafeConfig { seed, ..Default::default() },
                    )
                });
                accs[2].1.add(&t, b.llm_seconds, b.elapsed_seconds);
                let llm = llm_for(llm_name, seed);
                let (b, t) = traced(|| {
                    run_aide(
                        &p.raw_train,
                        &p.raw_test,
                        &p.target,
                        p.task,
                        &llm,
                        &AideConfig { seed, ..Default::default() },
                    )
                });
                accs[3].1.add(&t, b.llm_seconds, b.elapsed_seconds);
                let llm = llm_for(llm_name, seed);
                let (b, t) = traced(|| {
                    run_autogen(
                        &p.raw_train,
                        &p.raw_test,
                        &p.target,
                        p.task,
                        &llm,
                        &AutoGenConfig { seed, ..Default::default() },
                    )
                });
                accs[4].1.add(&t, b.llm_seconds, b.elapsed_seconds);
                if let Some(llm) = args.routed_llm(llm_name, seed) {
                    let (o, t) = traced(|| run_catdb(&p, &llm, 1, seed));
                    accs[5].1.add(&t, o.llm_seconds, o.elapsed_seconds);
                }
            }
            for (system, acc) in &accs {
                rows.push(acc.row(name, llm_name, system));
                records.push(json!({
                    "dataset": name, "llm": llm_name, "system": system,
                    "avg_input_tokens": acc.input as f64 / acc.runs.max(1) as f64,
                    "avg_output_tokens": acc.output as f64 / acc.runs.max(1) as f64,
                    "avg_cost_usd": acc.usd / acc.runs.max(1) as f64,
                    "avg_llm_seconds": acc.llm_seconds / acc.runs.max(1) as f64,
                    "avg_local_seconds": acc.local_seconds / acc.runs.max(1) as f64,
                    "cache_hits": acc.cache_hits,
                    "cache_saved_usd": acc.cache_saved_usd,
                }));
            }
        }
    }
    println!(
        "{}",
        render_table(
            &format!("Figure 12: Cost and runtime, averaged over {iterations} iterations"),
            &["dataset", "llm", "system", "in tok", "out tok", "USD", "llm s", "local s"],
            &rows,
        )
    );
    save_results(
        "fig12_cost",
        &json!({ "iterations": iterations, "route": args.route, "records": records }),
    );
}

//! Table 4 — catalog refinement and data cleaning: per-column distinct
//! counts before and after the LLM-assisted refinement on the six
//! cleaning datasets (EU IT, Wifi, Etailing, Survey, Utility, Yelp).
//!
//! Paper shape: systematic reduction of distinct items; list features get
//! extracted into their unique items (Yelp 2060 → 512-style drops).

use catdb_bench::{llm_for, render_table, save_results, BenchArgs};
use catdb_catalog::{refine_dataset, RefineAction, RefineOptions};
use catdb_data::generate;
use catdb_profiler::{profile_table, ProfileOptions};
use serde_json::json;

const CLEANING_DATASETS: [&str; 6] = ["eu-it", "wifi", "etailing", "survey", "utility", "yelp"];

fn main() {
    let args = BenchArgs::parse();
    let llm = llm_for("gemini-1.5-pro", args.seed);
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for name in CLEANING_DATASETS {
        let g = generate(name, &args.gen_options()).expect("known dataset");
        let flat = g.dataset.materialize().expect("materialize");
        let profile = profile_table(name, &flat, &ProfileOptions::default());
        let (_, _, report) =
            refine_dataset(name, &flat, &profile, &g.target, &llm, &RefineOptions::default());
        for r in &report.refinements {
            let action = match &r.action {
                RefineAction::DedupValues { merged } => format!("dedup ({merged} merged)"),
                RefineAction::SplitComposite { into } => format!("split into {}", into.len()),
                RefineAction::ExpandList { items } => format!("list → {items} items"),
                RefineAction::Reclassified { from, to } => format!("{from} → {to}"),
            };
            rows.push(vec![
                name.to_string(),
                r.column.clone(),
                r.distinct_before.to_string(),
                r.distinct_after.to_string(),
                action.clone(),
            ]);
            records.push(json!({
                "dataset": name,
                "column": r.column,
                "distinct_before": r.distinct_before,
                "distinct_after": r.distinct_after,
                "action": action,
            }));
        }
    }
    println!(
        "{}",
        render_table(
            "Table 4: Catalog Refinement — distinct counts original vs CatDB",
            &["dataset", "column", "original", "refined", "action"],
            &rows,
        )
    );
    save_results("tab4_refinement", &json!({ "records": records }));
}

//! Figure 11 — pipeline quality over 10 prompt-execution iterations on
//! Diabetes, Gas-Drift, and Volkert, for CatDB / CatDB Chain and the
//! LLM-based baselines across the three LLM profiles.
//!
//! Paper shapes: CAAFE(TabPFN) is stable on small data but fails on the
//! high-dimensional Volkert; AIDE/AutoGen are unstable across LLMs; CatDB
//! variants deliver comparable-or-better AUC with somewhat higher
//! variance.

use catdb_baselines::{
    run_aide, run_autogen, run_caafe, AideConfig, AutoGenConfig, CaafeConfig, CaafeModel,
};
use catdb_bench::{
    llm_for, paper_llms, pct, prepare, render_table, run_catdb, save_results, test_score, traced,
    BenchArgs,
};
use catdb_data::generate;
use serde_json::json;

const DATASETS: [&str; 3] = ["diabetes", "gas-drift", "volkert"];

fn stats(scores: &[f64]) -> (f64, f64, usize) {
    let ok: Vec<f64> = scores.iter().copied().filter(|s| s.is_finite()).collect();
    let fails = scores.len() - ok.len();
    if ok.is_empty() {
        return (f64::NAN, 0.0, fails);
    }
    let mean = ok.iter().sum::<f64>() / ok.len() as f64;
    let var = ok.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / ok.len() as f64;
    (mean, var.sqrt(), fails)
}

/// One benchmark system: seed -> (accuracy, captured trace).
type TracedRun<'a> = Box<dyn Fn(u64) -> (f64, catdb_trace::Trace) + 'a>;

fn main() {
    let args = BenchArgs::parse();
    let iterations = if args.quick { 3 } else { 10 };
    let mut rows = Vec::new();
    let mut records = Vec::new();

    for name in DATASETS {
        let g = generate(name, &args.gen_options()).expect("known dataset");
        for llm_name in paper_llms() {
            let prep_llm = llm_for(llm_name, args.seed);
            let p = prepare(&g, true, &prep_llm, args.seed);
            let systems: Vec<(&str, TracedRun)> = vec![
                (
                    "catdb",
                    Box::new(|seed| {
                        let llm = llm_for(llm_name, seed);
                        traced(|| test_score(&run_catdb(&p, &llm, 1, seed)))
                    }),
                ),
                (
                    "catdb_chain",
                    Box::new(|seed| {
                        let llm = llm_for(llm_name, seed);
                        traced(|| test_score(&run_catdb(&p, &llm, 2, seed)))
                    }),
                ),
                (
                    "caafe_tabpfn",
                    Box::new(|seed| {
                        let llm = llm_for(llm_name, seed);
                        let cfg = CaafeConfig { seed, ..Default::default() };
                        traced(|| {
                            run_caafe(&p.raw_train, &p.raw_test, &p.target, p.task, &llm, &cfg)
                                .test_score
                                .unwrap_or(f64::NAN)
                        })
                    }),
                ),
                (
                    "caafe_rforest",
                    Box::new(|seed| {
                        let llm = llm_for(llm_name, seed);
                        let cfg = CaafeConfig {
                            model: CaafeModel::RandomForest,
                            seed,
                            ..Default::default()
                        };
                        traced(|| {
                            run_caafe(&p.raw_train, &p.raw_test, &p.target, p.task, &llm, &cfg)
                                .test_score
                                .unwrap_or(f64::NAN)
                        })
                    }),
                ),
                (
                    "aide",
                    Box::new(|seed| {
                        let llm = llm_for(llm_name, seed);
                        let cfg = AideConfig { seed, ..Default::default() };
                        traced(|| {
                            run_aide(&p.raw_train, &p.raw_test, &p.target, p.task, &llm, &cfg)
                                .test_score
                                .unwrap_or(f64::NAN)
                        })
                    }),
                ),
                (
                    "autogen",
                    Box::new(|seed| {
                        let llm = llm_for(llm_name, seed);
                        let cfg = AutoGenConfig { seed, ..Default::default() };
                        traced(|| {
                            run_autogen(&p.raw_train, &p.raw_test, &p.target, p.task, &llm, &cfg)
                                .test_score
                                .unwrap_or(f64::NAN)
                        })
                    }),
                ),
            ];
            for (system, run) in systems {
                let runs: Vec<(f64, catdb_trace::Trace)> =
                    (0..iterations).map(|i| run(args.seed + 1000 * i as u64)).collect();
                let scores: Vec<f64> = runs.iter().map(|(s, _)| *s).collect();
                // Error-management effort comes from the trace, not the
                // outcome structs: every repair attempt is an
                // ErrorIteration event, every simulator call an LlmCall.
                let error_iterations: usize =
                    runs.iter().map(|(_, t)| t.error_iteration_count()).sum();
                let llm_calls: usize = runs.iter().map(|(_, t)| t.llm_call_count()).sum();
                let (mean, std, fails) = stats(&scores);
                rows.push(vec![
                    name.to_string(),
                    llm_name.to_string(),
                    system.to_string(),
                    pct(mean),
                    format!("{:.1}", std * 100.0),
                    fails.to_string(),
                    error_iterations.to_string(),
                    llm_calls.to_string(),
                ]);
                records.push(json!({
                    "dataset": name, "llm": llm_name, "system": system,
                    "scores": scores, "mean": mean, "std": std, "failures": fails,
                    "error_iterations": error_iterations, "llm_calls": llm_calls,
                }));
            }
        }
    }
    println!(
        "{}",
        render_table(
            &format!("Figure 11: AUC over {iterations} iterations"),
            &[
                "dataset",
                "llm",
                "system",
                "mean AUC %",
                "std %",
                "failures",
                "err iters",
                "llm calls"
            ],
            &rows,
        )
    );
    save_results("fig11_iterations", &json!({ "iterations": iterations, "records": records }));
}

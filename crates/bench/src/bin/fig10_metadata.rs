//! Figure 10 — the metadata-combination micro-benchmark: pipeline quality
//! under Table 1's metadata configurations #1–#11, the top-K (α) sweep on
//! a wide dataset, and CatDB vs CatDB Chain on the same wide dataset.
//!
//! Paper shapes to reproduce: (i) more metadata is not monotonically
//! better; (ii) very large prompts degrade quality (rules get ignored);
//! (iii) CatDB Chain stays high where the single prompt degrades.

use catdb_bench::{llm_for, pct, prepare, render_table, save_results, test_score, BenchArgs};
use catdb_core::{generate_pipeline, CatDbConfig, MetadataConfig, PromptOptions};
use catdb_data::{generate, GenOptions};
use serde_json::json;

fn main() {
    let args = BenchArgs::parse();
    let opts = GenOptions { max_rows: args.max_rows.min(1_200), scale: 1.0, seed: args.seed };
    let mut results = Vec::new();

    // --- (a)/(b): metadata combinations on two contrasting datasets ---
    let mut combo_rows = Vec::new();
    for name in ["eu-it", "utility"] {
        let g = generate(name, &opts).expect("known dataset");
        let llm = llm_for("gemini-1.5-pro", args.seed);
        let p = prepare(&g, true, &llm, args.seed);
        let mut row = vec![name.to_string()];
        for combo in 1..=11 {
            let cfg = CatDbConfig {
                prompt: PromptOptions {
                    metadata: MetadataConfig::combination(combo),
                    ..Default::default()
                },
                seed: args.seed,
                ..Default::default()
            };
            let outcome = generate_pipeline(&p.entry, &p.train, &p.test, &llm, &cfg);
            let score = test_score(&outcome);
            row.push(pct(score));
            results.push(json!({
                "experiment": "combos", "dataset": name, "combo": combo, "test_score": score,
            }));
        }
        combo_rows.push(row);
    }
    let mut headers: Vec<String> = vec!["dataset".into()];
    headers.extend((1..=11).map(|i| format!("#{i}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!(
        "{}",
        render_table(
            "Figure 10(a,b): Metadata Combinations #1-#11 (test score %)",
            &header_refs,
            &combo_rows
        )
    );

    // --- (c): top-K sweep on the widest dataset (KDD98, 478 columns) ---
    let g = generate("kdd98", &opts).expect("known dataset");
    let llm = llm_for("gemini-1.5-pro", args.seed);
    let p = prepare(&g, true, &llm, args.seed);
    let mut topk_rows = Vec::new();
    let sweeps: &[Option<usize>] = &[Some(20), Some(60), Some(120), Some(260), Some(400), None];
    for alpha in sweeps {
        let cfg = CatDbConfig {
            prompt: PromptOptions { alpha: *alpha, ..Default::default() },
            seed: args.seed,
            ..Default::default()
        };
        let outcome = generate_pipeline(&p.entry, &p.train, &p.test, &llm, &cfg);
        let score = test_score(&outcome);
        let label = alpha.map(|a| a.to_string()).unwrap_or_else(|| "all".into());
        topk_rows.push(vec![
            label.clone(),
            pct(score),
            outcome.ledger.total().total().to_string(),
            outcome.attempts.to_string(),
        ]);
        results.push(json!({
            "experiment": "topk", "alpha": label, "test_score": score,
            "tokens": outcome.ledger.total().total(),
        }));
    }
    println!(
        "{}",
        render_table(
            "Figure 10(c): Top-K column sweep on kdd98 (single prompt)",
            &["alpha", "test score %", "tokens", "attempts"],
            &topk_rows,
        )
    );

    // --- (d): CatDB vs CatDB Chain on the wide dataset ---
    let mut chain_rows = Vec::new();
    for (label, beta) in [("CatDB (beta=1)", 1usize), ("CatDB Chain (beta=4)", 4)] {
        let cfg = CatDbConfig {
            prompt: PromptOptions { beta, ..Default::default() },
            seed: args.seed,
            ..Default::default()
        };
        let outcome = generate_pipeline(&p.entry, &p.train, &p.test, &llm, &cfg);
        let score = test_score(&outcome);
        chain_rows.push(vec![
            label.to_string(),
            pct(score),
            outcome.ledger.total().total().to_string(),
            outcome.ledger.n_calls.to_string(),
        ]);
        results.push(json!({
            "experiment": "chain", "variant": label, "test_score": score,
            "tokens": outcome.ledger.total().total(),
        }));
    }
    println!(
        "{}",
        render_table(
            "Figure 10(d): Single prompt vs Chain on kdd98",
            &["variant", "test score %", "tokens", "llm calls"],
            &chain_rows,
        )
    );
    save_results("fig10_metadata", &json!({ "records": results }));
}

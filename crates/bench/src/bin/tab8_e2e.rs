//! Table 8 — end-to-end generation runtime across the eight Table 7
//! datasets per LLM: failure counts, average and total runtimes
//! (catalog work + LLM latency + validation + execution).
//!
//! Paper shapes: CatDB and CatDB Chain finish on every dataset with every
//! LLM (Fail = 0); CAAFE fails on the large datasets; AIDE/AutoGen fail
//! sporadically and their runtime tracks the LLM.

use catdb_baselines::{
    run_aide, run_autogen, run_caafe, AideConfig, AutoGenConfig, CaafeConfig, CaafeModel,
};
use catdb_bench::{llm_for, paper_llms, prepare, render_table, run_catdb, save_results, BenchArgs};
use catdb_data::generate;
use serde_json::json;

const DATASETS: [&str; 8] =
    ["airline", "imdb", "accidents", "financial", "cmc", "bike-sharing", "house-sales", "nyc"];

#[derive(Default)]
struct Tally {
    fails: usize,
    total_seconds: f64,
    successes: usize,
}

impl Tally {
    fn add(&mut self, success: bool, seconds: f64) {
        if success {
            self.successes += 1;
            self.total_seconds += seconds;
        } else {
            self.fails += 1;
        }
    }

    fn row(&self, system: &str, llm: &str) -> Vec<String> {
        let avg = if self.successes > 0 { self.total_seconds / self.successes as f64 } else { 0.0 };
        vec![
            system.to_string(),
            llm.to_string(),
            self.fails.to_string(),
            format!("{avg:.2}"),
            format!("{:.2}", self.total_seconds),
        ]
    }
}

fn main() {
    let args = BenchArgs::parse();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for llm_name in paper_llms() {
        let mut tallies: Vec<(&str, Tally)> = vec![
            ("catdb", Tally::default()),
            ("catdb_chain", Tally::default()),
            ("caafe_tabpfn", Tally::default()),
            ("caafe_rforest", Tally::default()),
            ("aide", Tally::default()),
            ("autogen", Tally::default()),
        ];
        for name in DATASETS {
            let g = generate(name, &args.gen_options()).expect("known dataset");
            let prep_llm = llm_for(llm_name, args.seed);
            let p = prepare(&g, true, &prep_llm, args.seed);

            let llm = llm_for(llm_name, args.seed);
            let o = run_catdb(&p, &llm, 1, args.seed);
            tallies[0].1.add(o.success, o.elapsed_seconds + o.llm_seconds);
            let llm = llm_for(llm_name, args.seed);
            let o = run_catdb(&p, &llm, 3, args.seed);
            tallies[1].1.add(o.success, o.elapsed_seconds + o.llm_seconds);
            let llm = llm_for(llm_name, args.seed);
            let b = run_caafe(
                &p.raw_train,
                &p.raw_test,
                &p.target,
                p.task,
                &llm,
                &CaafeConfig::default(),
            );
            tallies[2].1.add(b.success, b.elapsed_seconds + b.llm_seconds);
            let llm = llm_for(llm_name, args.seed);
            let b = run_caafe(
                &p.raw_train,
                &p.raw_test,
                &p.target,
                p.task,
                &llm,
                &CaafeConfig { model: CaafeModel::RandomForest, ..Default::default() },
            );
            tallies[3].1.add(b.success, b.elapsed_seconds + b.llm_seconds);
            let llm = llm_for(llm_name, args.seed);
            let b = run_aide(
                &p.raw_train,
                &p.raw_test,
                &p.target,
                p.task,
                &llm,
                &AideConfig::default(),
            );
            tallies[4].1.add(b.success, b.elapsed_seconds + b.llm_seconds);
            let llm = llm_for(llm_name, args.seed);
            let b = run_autogen(
                &p.raw_train,
                &p.raw_test,
                &p.target,
                p.task,
                &llm,
                &AutoGenConfig::default(),
            );
            tallies[5].1.add(b.success, b.elapsed_seconds + b.llm_seconds);
        }
        for (system, tally) in &tallies {
            rows.push(tally.row(system, llm_name));
            records.push(json!({
                "system": system, "llm": llm_name,
                "fail": tally.fails,
                "avg_seconds": if tally.successes > 0 { tally.total_seconds / tally.successes as f64 } else { 0.0 },
                "sum_seconds": tally.total_seconds,
            }));
        }
    }
    println!(
        "{}",
        render_table(
            "Table 8: End-to-end runtime across 8 datasets [s]",
            &["system", "llm", "fail", "avg", "sum"],
            &rows,
        )
    );
    save_results("tab8_e2e", &json!({ "records": records }));
}

//! Table 8 — end-to-end generation runtime across the eight Table 7
//! datasets per LLM: failure counts, average and total runtimes
//! (catalog work + LLM latency + validation + execution).
//!
//! Paper shapes: CatDB and CatDB Chain finish on every dataset with every
//! LLM (Fail = 0); CAAFE fails on the large datasets; AIDE/AutoGen fail
//! sporadically and their runtime tracks the LLM.

use catdb_baselines::{
    run_aide, run_autogen, run_caafe, AideConfig, AutoGenConfig, CaafeConfig, CaafeModel,
};
use catdb_bench::{
    llm_for, paper_llms, prepare, render_table, run_catdb_with, save_results, traced, BenchArgs,
};
use catdb_core::{generate_pipeline, measured_cost, CatDbConfig, PromptOptions};
use catdb_data::generate;
use catdb_sched::CompletionCache;
use serde_json::json;
use std::sync::Arc;

const DATASETS: [&str; 8] =
    ["airline", "imdb", "accidents", "financial", "cmc", "bike-sharing", "house-sales", "nyc"];

#[derive(Default)]
struct Tally {
    fails: usize,
    total_seconds: f64,
    successes: usize,
}

impl Tally {
    fn add(&mut self, success: bool, seconds: f64) {
        if success {
            self.successes += 1;
            self.total_seconds += seconds;
        } else {
            self.fails += 1;
        }
    }

    fn row(&self, system: &str, llm: &str) -> Vec<String> {
        let avg = if self.successes > 0 { self.total_seconds / self.successes as f64 } else { 0.0 };
        vec![
            system.to_string(),
            llm.to_string(),
            self.fails.to_string(),
            format!("{avg:.2}"),
            format!("{:.2}", self.total_seconds),
        ]
    }
}

fn main() {
    let args = BenchArgs::parse();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for llm_name in paper_llms() {
        let mut tallies: Vec<(&str, Tally)> = vec![
            ("catdb", Tally::default()),
            ("catdb_chain", Tally::default()),
            ("caafe_tabpfn", Tally::default()),
            ("caafe_rforest", Tally::default()),
            ("aide", Tally::default()),
            ("autogen", Tally::default()),
        ];
        for name in DATASETS {
            let g = generate(name, &args.gen_options()).expect("known dataset");
            let prep_llm = llm_for(llm_name, args.seed);
            let p = prepare(&g, true, &prep_llm, args.seed);

            let llm = llm_for(llm_name, args.seed);
            let o = run_catdb_with(&p, &llm, 1, args.seed, args.llm_concurrency, None);
            tallies[0].1.add(o.success, o.elapsed_seconds + o.llm_seconds);
            let llm = llm_for(llm_name, args.seed);
            let o = run_catdb_with(&p, &llm, 3, args.seed, args.llm_concurrency, None);
            tallies[1].1.add(o.success, o.elapsed_seconds + o.llm_seconds);
            let llm = llm_for(llm_name, args.seed);
            let b = run_caafe(
                &p.raw_train,
                &p.raw_test,
                &p.target,
                p.task,
                &llm,
                &CaafeConfig::default(),
            );
            tallies[2].1.add(b.success, b.elapsed_seconds + b.llm_seconds);
            let llm = llm_for(llm_name, args.seed);
            let b = run_caafe(
                &p.raw_train,
                &p.raw_test,
                &p.target,
                p.task,
                &llm,
                &CaafeConfig { model: CaafeModel::RandomForest, ..Default::default() },
            );
            tallies[3].1.add(b.success, b.elapsed_seconds + b.llm_seconds);
            let llm = llm_for(llm_name, args.seed);
            let b = run_aide(
                &p.raw_train,
                &p.raw_test,
                &p.target,
                p.task,
                &llm,
                &AideConfig::default(),
            );
            tallies[4].1.add(b.success, b.elapsed_seconds + b.llm_seconds);
            let llm = llm_for(llm_name, args.seed);
            let b = run_autogen(
                &p.raw_train,
                &p.raw_test,
                &p.target,
                p.task,
                &llm,
                &AutoGenConfig::default(),
            );
            tallies[5].1.add(b.success, b.elapsed_seconds + b.llm_seconds);
        }
        for (system, tally) in &tallies {
            rows.push(tally.row(system, llm_name));
            records.push(json!({
                "system": system, "llm": llm_name,
                "fail": tally.fails,
                "avg_seconds": if tally.successes > 0 { tally.total_seconds / tally.successes as f64 } else { 0.0 },
                "sum_seconds": tally.total_seconds,
            }));
        }
    }
    println!(
        "{}",
        render_table(
            "Table 8: End-to-end runtime across 8 datasets [s]",
            &["system", "llm", "fail", "avg", "sum"],
            &rows,
        )
    );

    // Top-K (α) sweep on one dataset per LLM, all configurations sharing
    // one completion cache. Pass 2 re-visits every configuration: with
    // the same seed each run's prompts fingerprint identically, so the
    // second pass is served entirely from the cache at zero cost.
    let mut topk_rows = Vec::new();
    let mut topk_records = Vec::new();
    for llm_name in paper_llms() {
        let g = generate("cmc", &args.gen_options()).expect("known dataset");
        let prep_llm = llm_for(llm_name, args.seed);
        let p = prepare(&g, true, &prep_llm, args.seed);
        let llm = llm_for(llm_name, args.seed);
        let cache = Arc::new(CompletionCache::new(4096));
        for pass in 1..=2usize {
            for alpha in [Some(4), Some(8), None] {
                let cfg = CatDbConfig {
                    prompt: PromptOptions { alpha, ..Default::default() },
                    seed: args.seed,
                    llm_concurrency: args.llm_concurrency,
                    llm_cache: Some(cache.clone()),
                    ..Default::default()
                };
                let (o, t) = traced(|| generate_pipeline(&p.entry, &p.train, &p.test, &llm, &cfg));
                let m = measured_cost(&t);
                let alpha_label = alpha.map_or("all".to_string(), |a| a.to_string());
                topk_rows.push(vec![
                    llm_name.to_string(),
                    alpha_label.clone(),
                    pass.to_string(),
                    m.llm_calls.to_string(),
                    m.cache_hits.to_string(),
                    format!("{:.4}", m.usd),
                    format!("{:.2}", o.elapsed_seconds + o.llm_seconds),
                ]);
                topk_records.push(json!({
                    "llm": llm_name, "alpha": alpha, "pass": pass,
                    "success": o.success,
                    "llm_calls": m.llm_calls,
                    "cache_hits": m.cache_hits,
                    "cache_saved_tokens": m.cache_saved_tokens,
                    "cache_saved_usd": m.cache_saved_usd,
                    "cost_usd": m.usd,
                    "seconds": o.elapsed_seconds + o.llm_seconds,
                }));
            }
        }
    }
    println!(
        "{}",
        render_table(
            "Top-K (α) sweep on cmc with a shared completion cache",
            &["llm", "α", "pass", "llm calls", "cache hits", "USD", "s"],
            &topk_rows,
        )
    );
    save_results("tab8_e2e", &json!({ "records": records, "topk_sweep": topk_records }));
}

//! Figure 9 — (a) data-profiling runtime per dataset and (b) the feature
//! type distribution across all twenty datasets.
//!
//! Paper shape: profiling takes minutes on the largest datasets and under
//! a minute on small ones (here scaled with row count), and the corpus
//! shows "a good mix of numerical, textual, and categorical features".

use catdb_bench::{render_table, save_results, traced, BenchArgs};
use catdb_data::{generate_all, PAPER_DATASETS};
use catdb_profiler::{profile_table, FeatureType, ProfileOptions};
use serde_json::json;
use std::collections::BTreeMap;

fn main() {
    let args = BenchArgs::parse();
    let datasets = generate_all(&args.gen_options());

    let mut rows = Vec::new();
    let mut type_totals: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut records = Vec::new();
    for g in &datasets {
        let flat = g.dataset.materialize().expect("materialize");
        // Runtime numbers come from the trace, not the profiler's own
        // clock: the span covers the whole call, the ProfileColumn events
        // break it down per column.
        let (profile, trace) =
            traced(|| profile_table(g.spec.name, &flat, &ProfileOptions::default()));
        let profile_seconds =
            trace.last_span_seconds("profile_table").expect("profile_table span recorded");
        let per_column_micros = trace.profile_micros_total();
        for (ft, n) in profile.feature_type_distribution() {
            *type_totals
                .entry(match ft {
                    FeatureType::Numerical => "numerical",
                    FeatureType::Categorical => "categorical",
                    FeatureType::Boolean => "boolean",
                    FeatureType::Sentence => "sentence",
                    FeatureType::List => "list",
                })
                .or_insert(0) += n;
        }
        rows.push(vec![
            g.spec.id.to_string(),
            g.spec.name.to_string(),
            flat.n_rows().to_string(),
            flat.n_cols().to_string(),
            format!("{profile_seconds:.3}"),
            format!("{:.3}", per_column_micros as f64 / 1e6),
        ]);
        records.push(json!({
            "dataset": g.spec.name,
            "rows": flat.n_rows(),
            "cols": flat.n_cols(),
            "profile_seconds": profile_seconds,
            "per_column_micros": per_column_micros,
            "columns_profiled": trace
                .events_modulo_timing()
                .iter()
                .filter(|e| e.kind() == "profile_column")
                .count(),
        }));
    }
    println!(
        "{}",
        render_table(
            "Figure 9(a): Data Profiling Runtime",
            &["id", "dataset", "rows", "cols", "seconds"],
            &rows,
        )
    );

    let total: usize = type_totals.values().sum();
    let dist_rows: Vec<Vec<String>> = type_totals
        .iter()
        .map(|(k, v)| {
            vec![k.to_string(), v.to_string(), format!("{:.1}%", *v as f64 / total as f64 * 100.0)]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 9(b): Feature Type Distribution (all datasets)",
            &["feature type", "columns", "share"],
            &dist_rows,
        )
    );
    assert_eq!(datasets.len(), PAPER_DATASETS.len());
    save_results(
        "fig9_profiling",
        &json!({ "datasets": records, "type_distribution": type_totals }),
    );
}

//! Figure 13 — token consumption including error management across ten
//! datasets (the Table 7 eight plus Diabetes and Gas-Drift), split into
//! initial-generation vs error-management tokens per LLM.
//!
//! Paper shapes: CatDB and CAAFE have comparable totals; CatDB Chain is
//! sometimes costlier; error-management cost dominates for the Llama
//! profile and for regression / multi-table datasets.

use catdb_baselines::{run_caafe, CaafeConfig};
use catdb_bench::{
    llm_for, paper_llms, prepare, render_table, run_catdb_traced, save_results, traced, BenchArgs,
};
use catdb_data::generate;
use serde_json::json;

const DATASETS: [&str; 10] = [
    "airline",
    "imdb",
    "accidents",
    "financial",
    "cmc",
    "bike-sharing",
    "house-sales",
    "nyc",
    "diabetes",
    "gas-drift",
];

/// Split one run's trace into generation vs error-management tokens and
/// append the table row + JSON record. Each LlmCall is attributed to the
/// task of the PromptBuilt that preceded it.
fn push_split(
    rows: &mut Vec<Vec<String>>,
    records: &mut Vec<serde_json::Value>,
    dataset: &str,
    llm_name: &str,
    system: &str,
    trace: &catdb_trace::Trace,
) {
    let by_task = trace.llm_tokens_by_task();
    let err_tokens: usize = by_task
        .iter()
        .filter(|(task, _)| task.as_str() == "error_fix")
        .map(|(_, (i, o))| i + o)
        .sum();
    let (total_in, total_out) = trace.total_llm_tokens();
    let total = total_in + total_out;
    let gen_tokens = total - err_tokens;
    rows.push(vec![
        dataset.to_string(),
        llm_name.to_string(),
        system.to_string(),
        gen_tokens.to_string(),
        err_tokens.to_string(),
        total.to_string(),
    ]);
    records.push(json!({
        "dataset": dataset, "llm": llm_name, "system": system,
        "generation_tokens": gen_tokens,
        "error_tokens": err_tokens,
        "total_tokens": total,
        "error_iterations": trace.error_iteration_count(),
        "cache_hits": trace.cache_hit_count(),
        "cache_saved_tokens": trace.cache_saved_tokens(),
    }));
}

fn main() {
    let args = BenchArgs::parse();
    let llms = if args.quick { vec!["gemini-1.5-pro"] } else { paper_llms() };
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for name in DATASETS {
        let g = generate(name, &args.gen_options()).expect("known dataset");
        for llm_name in &llms {
            let prep_llm = llm_for(llm_name, args.seed);
            let p = prepare(&g, true, &prep_llm, args.seed);
            for (system, beta) in [("catdb", 1usize), ("catdb_chain", 3)] {
                let llm = llm_for(llm_name, args.seed);
                let (_o, trace) = run_catdb_traced(&p, &llm, beta, args.seed);
                push_split(&mut rows, &mut records, name, llm_name, system, &trace);
            }
            if let Some(llm) = args.routed_llm(llm_name, args.seed) {
                let (_o, trace) = run_catdb_traced(&p, &llm, 1, args.seed);
                push_split(&mut rows, &mut records, name, llm_name, "catdb_routed", &trace);
            }
            // CAAFE total for comparison (single ledger bucket).
            let llm = llm_for(llm_name, args.seed);
            let (b, trace) = traced(|| {
                run_caafe(
                    &p.raw_train,
                    &p.raw_test,
                    &p.target,
                    p.task,
                    &llm,
                    &CaafeConfig::default(),
                )
            });
            let (total_in, total_out) = trace.total_llm_tokens();
            rows.push(vec![
                name.to_string(),
                llm_name.to_string(),
                "caafe".to_string(),
                b.ledger.generation.total().to_string(),
                b.ledger.error_fixing.total().to_string(),
                (total_in + total_out).to_string(),
            ]);
            records.push(json!({
                "dataset": name, "llm": llm_name, "system": "caafe",
                "generation_tokens": b.ledger.generation.total(),
                "error_tokens": b.ledger.error_fixing.total(),
                "total_tokens": total_in + total_out,
            }));
        }
    }
    println!(
        "{}",
        render_table(
            "Figure 13: Token consumption incl. error management",
            &["dataset", "llm", "system", "gen tokens", "err tokens", "total"],
            &rows,
        )
    );
    save_results("fig13_tokens", &json!({ "route": args.route, "records": records }));
}

//! Figure 13 — token consumption including error management across ten
//! datasets (the Table 7 eight plus Diabetes and Gas-Drift), split into
//! initial-generation vs error-management tokens per LLM.
//!
//! Paper shapes: CatDB and CAAFE have comparable totals; CatDB Chain is
//! sometimes costlier; error-management cost dominates for the Llama
//! profile and for regression / multi-table datasets.

use catdb_baselines::{run_caafe, CaafeConfig};
use catdb_bench::{llm_for, paper_llms, prepare, render_table, run_catdb, save_results, BenchArgs};
use catdb_data::generate;
use serde_json::json;

const DATASETS: [&str; 10] = [
    "airline",
    "imdb",
    "accidents",
    "financial",
    "cmc",
    "bike-sharing",
    "house-sales",
    "nyc",
    "diabetes",
    "gas-drift",
];

fn main() {
    let args = BenchArgs::parse();
    let llms = if args.quick { vec!["gemini-1.5-pro"] } else { paper_llms() };
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for name in DATASETS {
        let g = generate(name, &args.gen_options()).expect("known dataset");
        for llm_name in &llms {
            let prep_llm = llm_for(llm_name, args.seed);
            let p = prepare(&g, true, &prep_llm, args.seed);
            for (system, beta) in [("catdb", 1usize), ("catdb_chain", 3)] {
                let llm = llm_for(llm_name, args.seed);
                let o = run_catdb(&p, &llm, beta, args.seed);
                rows.push(vec![
                    name.to_string(),
                    llm_name.to_string(),
                    system.to_string(),
                    o.ledger.generation.total().to_string(),
                    o.ledger.error_fixing.total().to_string(),
                    o.ledger.total().total().to_string(),
                ]);
                records.push(json!({
                    "dataset": name, "llm": llm_name, "system": system,
                    "generation_tokens": o.ledger.generation.total(),
                    "error_tokens": o.ledger.error_fixing.total(),
                    "total_tokens": o.ledger.total().total(),
                }));
            }
            // CAAFE total for comparison (single ledger bucket).
            let llm = llm_for(llm_name, args.seed);
            let b = run_caafe(
                &p.raw_train,
                &p.raw_test,
                &p.target,
                p.task,
                &llm,
                &CaafeConfig::default(),
            );
            rows.push(vec![
                name.to_string(),
                llm_name.to_string(),
                "caafe".to_string(),
                b.ledger.generation.total().to_string(),
                b.ledger.error_fixing.total().to_string(),
                b.ledger.total().total().to_string(),
            ]);
            records.push(json!({
                "dataset": name, "llm": llm_name, "system": "caafe",
                "generation_tokens": b.ledger.generation.total(),
                "error_tokens": b.ledger.error_fixing.total(),
                "total_tokens": b.ledger.total().total(),
            }));
        }
    }
    println!(
        "{}",
        render_table(
            "Figure 13: Token consumption incl. error management",
            &["dataset", "llm", "system", "gen tokens", "err tokens", "total"],
            &rows,
        )
    );
    save_results("fig13_tokens", &json!({ "records": records }));
}

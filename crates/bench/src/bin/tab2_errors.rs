//! Table 2 / Figure 8 — the error-trace dataset: run many generation
//! sessions across datasets and LLM profiles, collect every error
//! occurrence, and report the per-LLM category distribution (Table 2) and
//! per-kind histogram (Figure 8). `--quick` trims the session count.
//!
//! Also runs the error-management ablation (KB only / LLM-fix only /
//! both / none) to quantify what each correction channel contributes.
//!
//! Paper shapes: RE dominates everywhere; the Gemini-like profile has a
//! much larger KB share than the Llama-like profile (21 % vs 2.5 %);
//! disabling error management collapses the success rate.

use catdb_bench::{llm_for, paper_llms, prepare, render_table, save_results, BenchArgs};
use catdb_core::{generate_pipeline, CatDbConfig, ErrorTraceDb};
use catdb_data::generate;
use serde_json::json;

const DATASETS: [&str; 6] = ["eu-it", "wifi", "etailing", "survey", "yelp", "diabetes"];

fn main() {
    let args = BenchArgs::parse();
    let sessions = if args.quick { 3 } else { 12 };
    let mut db = ErrorTraceDb::default();
    let mut ablation_rows = Vec::new();

    for llm_name in paper_llms() {
        for name in DATASETS {
            let g = generate(name, &args.gen_options()).expect("known dataset");
            let prep_llm = llm_for(llm_name, args.seed);
            let p = prepare(&g, true, &prep_llm, args.seed);
            for s in 0..sessions {
                let seed = args.seed + 7919 * s as u64;
                let llm = llm_for(llm_name, seed);
                let cfg = CatDbConfig { seed, ..Default::default() };
                let outcome = generate_pipeline(&p.entry, &p.train, &p.test, &llm, &cfg);
                db.extend(outcome.traces);
            }
        }
    }

    // Table 2: per-LLM category distribution.
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for llm_name in paper_llms() {
        let (total, kb, se, re) = db.category_distribution(llm_name);
        rows.push(vec![
            llm_name.to_string(),
            total.to_string(),
            format!("{kb:.3}"),
            format!("{se:.3}"),
            format!("{re:.3}"),
        ]);
        records.push(json!({
            "llm": llm_name, "total": total, "kb_pct": kb, "se_pct": se, "re_pct": re,
        }));
    }
    println!(
        "{}",
        render_table(
            "Table 2: Error distributions of the error-trace dataset",
            &["llm", "total errors", "KB [%]", "SE [%]", "RE [%]"],
            &rows,
        )
    );

    // Figure 8: per-kind histogram.
    let kind_rows: Vec<Vec<String>> = db
        .kind_distribution()
        .into_iter()
        .map(|(kind, n)| {
            vec![kind.category().label().to_string(), kind.code().to_string(), n.to_string()]
        })
        .collect();
    println!(
        "{}",
        render_table("Figure 8: Error kinds", &["category", "kind", "count"], &kind_rows)
    );

    // Error-management ablation on the dirtiest dataset.
    let g = generate("eu-it", &args.gen_options()).expect("known dataset");
    let prep_llm = llm_for("llama3.1-70b", args.seed);
    let p = prepare(&g, true, &prep_llm, args.seed);
    for (label, kb, llm_fix, fallback) in [
        ("kb + llm + fallback", true, true, true),
        ("kb + llm", true, true, false),
        ("kb only", true, false, false),
        ("llm only", false, true, false),
        ("none", false, false, false),
    ] {
        let mut successes = 0;
        let runs = sessions.max(4);
        for s in 0..runs {
            let seed = args.seed + 104_729 * s as u64;
            let llm = llm_for("llama3.1-70b", seed);
            let cfg = CatDbConfig {
                seed,
                use_knowledge_base: kb,
                use_llm_fix: llm_fix,
                handcraft_fallback: fallback,
                ..Default::default()
            };
            if generate_pipeline(&p.entry, &p.train, &p.test, &llm, &cfg).success {
                successes += 1;
            }
        }
        ablation_rows.push(vec![label.to_string(), format!("{successes}/{runs}")]);
    }
    println!(
        "{}",
        render_table(
            "Error-management ablation (eu-it, llama profile)",
            &["channels", "success rate"],
            &ablation_rows,
        )
    );
    save_results(
        "tab2_errors",
        &json!({
            "table2": records,
            "kinds": db.kind_distribution().into_iter().map(|(k, n)| json!({"kind": k.code(), "count": n})).collect::<Vec<_>>(),
            "total_traces": db.len(),
        }),
    );
}

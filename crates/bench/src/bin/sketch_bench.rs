//! Out-of-core sketch-profiling benchmark and synthetic CSV generator.
//!
//! ```text
//! sketch_bench gen PATH ROWS    # write a deterministic ROWS-row CSV
//! sketch_bench bench [ROWS]     # stream-ingest + sketch-profile ROWS
//!                               # rows (default 10M) via a spill file,
//!                               # print one `key=value ...` line
//! ```
//!
//! The bench mode is what `scripts/bench_quick.sh` records as
//! `profiler/sketch_10m_rows`: the CSV is written to a temp directory,
//! ingested through [`ChunkedTable`] (peak RSS stays O(chunk)), and
//! profiled with mergeable sketches; ingest and profile are timed
//! separately. The `gen` mode feeds `scripts/outofcore_smoke.sh`, which
//! profiles a file several times larger than a hard `ulimit -v` cap.

use catdb_profiler::{profile_chunked, ProfileMode, ProfileOptions};
use catdb_table::{ChunkedTable, CsvOptions, DEFAULT_CHUNK_ROWS};
use std::io::Write;
use std::time::Instant;

/// Four columns exercising every page kind: a unique int, a float, a
/// low-cardinality string, and a bool — with a sprinkle of nulls.
fn write_csv(path: &std::path::Path, rows: usize) -> std::io::Result<u64> {
    let f = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::with_capacity(1 << 20, f);
    writeln!(w, "id,val,cat,flag")?;
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..rows {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let cat = (state >> 33) % 16;
        let frac = (state >> 12) % 100_000;
        if i % 101 == 0 {
            writeln!(w, "{i},,c{cat},")?;
        } else {
            writeln!(w, "{i},{}.{frac:05},c{cat},{}", i % 977, i % 3 == 0)?;
        }
    }
    w.flush()?;
    Ok(std::fs::metadata(path)?.len())
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    match argv.get(1).map(String::as_str) {
        Some("gen") => {
            let (Some(path), Some(rows)) =
                (argv.get(2), argv.get(3).and_then(|s| s.parse::<usize>().ok()))
            else {
                eprintln!("usage: sketch_bench gen PATH ROWS");
                std::process::exit(2);
            };
            let bytes = write_csv(std::path::Path::new(path), rows).expect("write CSV");
            eprintln!("[wrote {rows} row(s), {bytes} byte(s) to {path}]");
        }
        Some("bench") | None => {
            let rows = argv.get(2).and_then(|s| s.parse::<usize>().ok()).unwrap_or(10_000_000);
            let dir =
                std::env::temp_dir().join(format!("catdb-sketch-bench-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("create temp dir");
            let csv = dir.join("bench.csv");
            let bytes = write_csv(&csv, rows).expect("write CSV");

            let t0 = Instant::now();
            let chunked = ChunkedTable::from_csv_path(
                csv.to_str().unwrap(),
                &CsvOptions::default(),
                DEFAULT_CHUNK_ROWS,
            )
            .expect("ingest");
            let ingest_ms = t0.elapsed().as_secs_f64() * 1e3;

            let opts = ProfileOptions {
                mode: ProfileMode::Sketch { chunk_rows: DEFAULT_CHUNK_ROWS },
                ..Default::default()
            };
            let t1 = Instant::now();
            let profile = profile_chunked("bench", &chunked, &opts).expect("profile");
            let profile_ms = t1.elapsed().as_secs_f64() * 1e3;

            println!(
                "sketch_bench rows={rows} csv_bytes={bytes} chunks={} ingest_ms={ingest_ms:.1} \
                 profile_ms={profile_ms:.1} profile_rows_per_sec={:.0} columns={}",
                chunked.n_chunks(),
                rows as f64 / (profile_ms / 1e3),
                profile.columns.len(),
            );
            drop(chunked);
            std::fs::remove_dir_all(&dir).ok();
        }
        Some(other) => {
            eprintln!("unknown mode '{other}' (expected `gen` or `bench`)");
            std::process::exit(2);
        }
    }
}

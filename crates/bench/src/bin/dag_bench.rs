//! `pipeline/dag_parallel` bench: one preprocessing-heavy pipeline
//! executed sequentially and as a step DAG on the shared pool. The
//! program fans out per-column impute/scale/encode steps — the shape
//! Algorithm 2's generated pipelines actually take — so the DAG
//! scheduler's antichain waves get real independent work. Prints a
//! single `key=value` line for `scripts/bench_quick.sh` /
//! `scripts/dag_smoke.sh` to parse.
//!
//! Usage: dag_bench [rows] [float_cols] [cat_cols]

use catdb_ml::TaskKind;
use catdb_pipeline::{execute, parse, Environment, ExecMode, ExecutionConfig};
use catdb_table::{Column, Table};
use std::fmt::Write as _;
use std::time::Instant;

fn dataset(rows: usize, float_cols: usize, cat_cols: usize) -> (Table, Table) {
    let mut columns: Vec<(String, Column)> = Vec::new();
    for c in 0..float_cols {
        let vals: Vec<Option<f64>> = (0..rows)
            .map(|i| {
                if (i + c) % 17 == 0 {
                    None
                } else {
                    Some(((i * 31 + c * 7) % 1009) as f64 * 0.37 - 50.0)
                }
            })
            .collect();
        columns.push((format!("f{c}"), Column::Float(vals)));
    }
    for c in 0..cat_cols {
        let vals: Vec<Option<String>> = (0..rows)
            .map(|i| {
                if (i + c) % 13 == 0 {
                    None
                } else {
                    Some(format!("cat{c}_free_text_value_{:04}", (i * 13 + c * 5) % 509))
                }
            })
            .collect();
        columns.push((format!("c{c}"), Column::Str(vals)));
    }
    let label: Vec<&str> =
        (0..rows).map(|i| if (i * 29) % 97 < 48 { "neg" } else { "pos" }).collect();
    columns.push(("y".to_string(), Column::from_strings(label)));
    let table = Table::from_columns(columns).unwrap();
    table.train_test_split(0.7, 0).unwrap()
}

fn program_src(float_cols: usize, cat_cols: usize) -> String {
    let mut src = String::from("pipeline {\n");
    for c in 0..float_cols {
        writeln!(src, "  impute \"f{c}\" strategy mean;").unwrap();
    }
    for c in 0..cat_cols {
        writeln!(src, "  impute \"c{c}\" strategy most_frequent;").unwrap();
    }
    for c in 0..float_cols {
        writeln!(src, "  scale \"f{c}\" method standard;").unwrap();
    }
    // Free-text columns carry no signal for the model (and unencoded
    // strings fail featurization); cleaning then dropping them is the
    // shape a generated pipeline takes, and both steps are local.
    for c in 0..cat_cols {
        writeln!(src, "  drop \"c{c}\";").unwrap();
    }
    src.push_str("  model classifier decision_tree target \"y\";\n}");
    src
}

fn run_ms(
    mode: ExecMode,
    iters: usize,
    rows: usize,
    float_cols: usize,
    cat_cols: usize,
) -> (f64, f64) {
    let (train, test) = dataset(rows, float_cols, cat_cols);
    let program = parse(&program_src(float_cols, cat_cols)).unwrap();
    let cfg =
        ExecutionConfig { exec_mode: mode, ..ExecutionConfig::new(TaskKind::BinaryClassification) };
    let env = Environment::default();
    let mut best = f64::MAX;
    let mut headline = 0.0;
    for _ in 0..iters {
        let started = Instant::now();
        let eval = execute(&program, &train, &test, &env, &cfg).unwrap();
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
        headline = eval.test.headline();
    }
    (best, headline)
}

fn main() {
    let rows: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(30_000);
    let float_cols: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let cat_cols: usize = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(16);
    let steps = 2 * float_cols + 2 * cat_cols + 1;
    let iters = 3;
    let (seq_ms, seq_headline) = run_ms(ExecMode::Seq, iters, rows, float_cols, cat_cols);
    let (dag_ms, dag_headline) = run_ms(ExecMode::Dag, iters, rows, float_cols, cat_cols);
    assert_eq!(seq_headline, dag_headline, "dag evaluation diverged from sequential");
    println!(
        "dag_bench: rows={rows} steps={steps} threads={} seq_ms={seq_ms:.1} dag_ms={dag_ms:.1} speedup={:.2}",
        catdb_runtime::pool_size(),
        seq_ms / dag_ms,
    );
}

//! Table 6 — runtime comparison on the six cleaning datasets: the
//! *pipeline execution* time of CatDB's generated pipeline (original vs
//! refined data), CAAFE's fixed-model pipeline, AIDE, AutoGen, and the
//! cleaning + augmentation workflow.
//!
//! Paper shape: CatDB's lean generated pipelines run an order of
//! magnitude faster than CAAFE-style stacks; cleaning workflows are the
//! slowest because of their search loops.

use catdb_baselines::{
    run_aide, run_autogen, run_caafe, AideConfig, AutoGenConfig, CaafeConfig, CaafeModel,
};
use catdb_bench::{llm_for, prepare, render_table, save_results, traced, BenchArgs};
use catdb_clean::{saga, SagaConfig};
use catdb_core::{generate_pipeline, CatDbConfig};
use catdb_data::generate;
use catdb_ml::{AugmentMethod, Augmenter, TaskKind, Transform};
use serde_json::json;
use std::time::Instant;

const CLEANING_DATASETS: [&str; 6] = ["eu-it", "wifi", "etailing", "survey", "utility", "yelp"];

fn secs(v: f64) -> String {
    format!("{v:.3}")
}

fn main() {
    let args = BenchArgs::parse();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for name in CLEANING_DATASETS {
        let g = generate(name, &args.gen_options()).expect("known dataset");
        let llm = llm_for("gemini-1.5-pro", args.seed);
        let p = prepare(&g, true, &llm, args.seed);
        let cfg = CatDbConfig { seed: args.seed, ..Default::default() };

        // CatDB pipeline execution time (local work: validation + runs).
        let (orig, orig_trace) =
            traced(|| generate_pipeline(&p.raw_entry, &p.raw_train, &p.raw_test, &llm, &cfg));
        let (refined, refined_trace) =
            traced(|| generate_pipeline(&p.entry, &p.train, &p.test, &llm, &cfg));

        let caafe =
            run_caafe(&p.raw_train, &p.raw_test, &p.target, p.task, &llm, &CaafeConfig::default());
        let caafe_rf = run_caafe(
            &p.raw_train,
            &p.raw_test,
            &p.target,
            p.task,
            &llm,
            &CaafeConfig { model: CaafeModel::RandomForest, ..Default::default() },
        );
        let aide =
            run_aide(&p.raw_train, &p.raw_test, &p.target, p.task, &llm, &AideConfig::default());
        let autogen = run_autogen(
            &p.raw_train,
            &p.raw_test,
            &p.target,
            p.task,
            &llm,
            &AutoGenConfig::default(),
        );

        // Cleaning + augmentation workflow timing.
        let clean_start = Instant::now();
        let clean_elapsed = match saga(&p.raw_train, &p.target, p.task, &SagaConfig::default()) {
            Ok(result) => {
                let aug_start = Instant::now();
                let method = if p.task == TaskKind::Regression {
                    AugmentMethod::Smogn
                } else {
                    AugmentMethod::Adasyn
                };
                let _ = Augmenter::new(p.target.clone(), method).fit_transform(&result.cleaned);
                Some((result.elapsed_seconds, aug_start.elapsed().as_secs_f64()))
            }
            Err(_) => None,
        };
        let _ = clean_start;

        let fail_cell = |success: bool, v: f64| {
            if success {
                secs(v)
            } else {
                "N/A".to_string()
            }
        };
        // Paper Table 6 reports pipeline *execution* time, excluding
        // generation: the last execute_pipeline span in the trace is the
        // final (successful) full run.
        let exec_time = |o: &catdb_core::GenerationOutcome, t: &catdb_trace::Trace| {
            if o.success {
                t.last_span_seconds("execute_pipeline").unwrap_or(f64::NAN)
            } else {
                f64::NAN
            }
        };
        rows.push(vec![
            name.to_string(),
            secs(exec_time(&orig, &orig_trace)),
            secs(exec_time(&refined, &refined_trace)),
            fail_cell(caafe.success, caafe.elapsed_seconds),
            fail_cell(caafe_rf.success, caafe_rf.elapsed_seconds),
            fail_cell(aide.success, aide.elapsed_seconds),
            fail_cell(autogen.success, autogen.elapsed_seconds),
            match clean_elapsed {
                Some((c, a)) => format!("{} + {}", secs(c), secs(a)),
                None => "N/A".to_string(),
            },
        ]);
        records.push(json!({
            "dataset": name,
            "catdb_original": exec_time(&orig, &orig_trace),
            "catdb_refined": exec_time(&refined, &refined_trace),
            "catdb_refined_op_micros": refined_trace.pipeline_micros_total(),
            "caafe_tabpfn": if caafe.success { Some(caafe.elapsed_seconds) } else { None },
            "caafe_rforest": if caafe_rf.success { Some(caafe_rf.elapsed_seconds) } else { None },
            "aide": if aide.success { Some(aide.elapsed_seconds) } else { None },
            "autogen": if autogen.success { Some(autogen.elapsed_seconds) } else { None },
            "cleaning_plus_aug": clean_elapsed.map(|(c, a)| c + a),
        }));
    }
    println!(
        "{}",
        render_table(
            "Table 6: Pipeline runtime on the six cleaning datasets [s]",
            &[
                "dataset",
                "catdb orig",
                "catdb refined",
                "caafe tabpfn",
                "caafe rf",
                "aide",
                "autogen",
                "cleaning + aug",
            ],
            &rows,
        )
    );
    save_results("tab6_runtime", &json!({ "records": records }));
}

//! Figure 14 — end-to-end robustness study: inject outliers, missing
//! values, and mixed corruptions (0–5 %) into Utility (regression) and
//! Volkert (classification) and compare CatDB against the AutoML tools
//! and CAAFE.
//!
//! Paper shapes: CatDB holds its quality as corruption grows; AutoML
//! tools deteriorate beyond ~1 % outliers; missing values in regression
//! are handled by several tools; mixed errors hurt AutoML most.

use catdb_automl::{run_automl, AutoMlConfig, AutoMlOutcome, ToolProfile};
use catdb_baselines::{run_caafe, CaafeConfig, CaafeModel};
use catdb_bench::{llm_for, pct, render_table, save_results, BenchArgs};
use catdb_catalog::CatalogEntry;
use catdb_core::{generate_pipeline, CatDbConfig};
use catdb_data::{corrupt, generate, Corruption};
use catdb_profiler::{profile_table, ProfileOptions};
use serde_json::json;

const RATIOS: [f64; 4] = [0.0, 0.01, 0.03, 0.05];

fn main() {
    let args = BenchArgs::parse();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for name in ["utility", "volkert"] {
        let g = generate(name, &args.gen_options()).expect("known dataset");
        let flat = g.dataset.materialize().expect("materialize");
        for kind in [Corruption::Outliers, Corruption::MissingValues, Corruption::Mixed] {
            for ratio in RATIOS {
                let corrupted = corrupt(&flat, &g.target, kind, ratio, args.seed);
                let (train, test) = corrupted.train_test_split(0.7, args.seed).expect("split");
                // CatDB re-profiles the corrupted data (its rules see the
                // injected missingness/outliers and react).
                let profile = profile_table(name, &corrupted, &ProfileOptions::default());
                let entry = CatalogEntry::new(name, g.target.clone(), g.task, profile);
                // CatDB's score per cell is the mean of three generation
                // seeds (single generations are noisy; the paper's curves
                // average over repetitions).
                let catdb_scores: Vec<f64> = (0..3u64)
                    .filter_map(|i| {
                        let seed = args.seed + 97 * i;
                        let llm = llm_for("gemini-1.5-pro", seed);
                        let cfg = CatDbConfig { seed, ..Default::default() };
                        let o = generate_pipeline(&entry, &train, &test, &llm, &cfg);
                        o.evaluation.map(|e| e.test.headline())
                    })
                    .collect();
                let catdb_mean = if catdb_scores.is_empty() {
                    f64::NAN
                } else {
                    catdb_scores.iter().sum::<f64>() / catdb_scores.len() as f64
                };

                let automl_cfg = AutoMlConfig { time_budget_seconds: 8.0, seed: args.seed };
                let mut cells = vec![
                    name.to_string(),
                    kind.label().to_string(),
                    format!("{:.0}%", ratio * 100.0),
                    pct(catdb_mean),
                ];
                let mut rec = serde_json::Map::new();
                rec.insert("dataset".into(), json!(name));
                rec.insert("corruption".into(), json!(kind.label()));
                rec.insert("ratio".into(), json!(ratio));
                rec.insert("catdb".into(), json!(catdb_mean));
                for tool in [ToolProfile::flaml(), ToolProfile::autogluon(), ToolProfile::h2o()] {
                    let out = run_automl(&tool, &train, &test, &g.target, g.task, &automl_cfg);
                    cells.push(out.cell());
                    rec.insert(
                        tool.name.to_string(),
                        json!(match &out {
                            AutoMlOutcome::Success { test_score, .. } => Some(*test_score),
                            _ => None,
                        }),
                    );
                }
                let llm2 = llm_for("gemini-1.5-pro", args.seed);
                let caafe = run_caafe(
                    &train,
                    &test,
                    &g.target,
                    g.task,
                    &llm2,
                    &CaafeConfig { model: CaafeModel::RandomForest, ..Default::default() },
                );
                cells.push(caafe.cell());
                rec.insert("caafe".into(), json!(caafe.test_score));
                rows.push(cells);
                records.push(serde_json::Value::Object(rec));
            }
        }
    }
    println!(
        "{}",
        render_table(
            "Figure 14: Robustness to injected corruption (test score %)",
            &["dataset", "corruption", "ratio", "catdb", "flaml", "autogluon", "h2o", "caafe_rf"],
            &rows,
        )
    );
    save_results("fig14_robustness", &json!({ "records": records }));
}

//! Figure 14 — end-to-end robustness study, two axes:
//!
//! **14a (data corruption):** inject outliers, missing values, and mixed
//! corruptions (0–5 %) into Utility (regression) and Volkert
//! (classification) and compare CatDB against the AutoML tools and CAAFE.
//! Paper shapes: CatDB holds its quality as corruption grows; AutoML
//! tools deteriorate beyond ~1 % outliers; missing values in regression
//! are handled by several tools; mixed errors hurt AutoML most.
//!
//! **14b (LLM transport faults):** sweep the injected transport fault
//! rate and measure, from traces, how the resilient client holds the
//! success rate and what the retries cost (wasted-spend overhead,
//! degradations to cheaper models).
//!
//! `--smoke` runs only the 14b sweep on a tiny dataset with fully
//! deterministic stdout — the CI determinism gate runs it twice and
//! diffs the output.

use catdb_automl::{run_automl, AutoMlConfig, AutoMlOutcome, ToolProfile};
use catdb_baselines::{run_caafe, CaafeConfig, CaafeModel};
use catdb_bench::{llm_for, pct, render_table, resilient_llm_for, save_results, BenchArgs};
use catdb_catalog::CatalogEntry;
use catdb_core::{generate_pipeline, measured_cost, CatDbConfig};
use catdb_data::{corrupt, generate, Corruption};
use catdb_profiler::{profile_table, ProfileOptions};
use serde_json::json;

const RATIOS: [f64; 4] = [0.0, 0.01, 0.03, 0.05];
const FAULT_RATES: [f64; 4] = [0.0, 0.1, 0.3, 0.5];

fn corruption_study(args: &BenchArgs) -> (Vec<Vec<String>>, Vec<serde_json::Value>) {
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for name in ["utility", "volkert"] {
        let g = generate(name, &args.gen_options()).expect("known dataset");
        let flat = g.dataset.materialize().expect("materialize");
        for kind in [Corruption::Outliers, Corruption::MissingValues, Corruption::Mixed] {
            for ratio in RATIOS {
                let corrupted = corrupt(&flat, &g.target, kind, ratio, args.seed);
                let (train, test) = corrupted.train_test_split(0.7, args.seed).expect("split");
                // CatDB re-profiles the corrupted data (its rules see the
                // injected missingness/outliers and react).
                let profile = profile_table(name, &corrupted, &ProfileOptions::default());
                let entry = CatalogEntry::new(name, g.target.clone(), g.task, profile);
                // CatDB's score per cell is the mean of three generation
                // seeds (single generations are noisy; the paper's curves
                // average over repetitions).
                let catdb_scores: Vec<f64> = (0..3u64)
                    .filter_map(|i| {
                        let seed = args.seed + 97 * i;
                        let llm = llm_for("gemini-1.5-pro", seed);
                        let cfg = CatDbConfig { seed, ..Default::default() };
                        let o = generate_pipeline(&entry, &train, &test, &llm, &cfg);
                        o.evaluation.map(|e| e.test.headline())
                    })
                    .collect();
                let catdb_mean = if catdb_scores.is_empty() {
                    f64::NAN
                } else {
                    catdb_scores.iter().sum::<f64>() / catdb_scores.len() as f64
                };

                let automl_cfg = AutoMlConfig {
                    time_budget_seconds: 8.0,
                    seed: args.seed,
                    ..Default::default()
                };
                let mut cells = vec![
                    name.to_string(),
                    kind.label().to_string(),
                    format!("{:.0}%", ratio * 100.0),
                    pct(catdb_mean),
                ];
                let mut rec = serde_json::Map::new();
                rec.insert("dataset".into(), json!(name));
                rec.insert("corruption".into(), json!(kind.label()));
                rec.insert("ratio".into(), json!(ratio));
                rec.insert("catdb".into(), json!(catdb_mean));
                for tool in [ToolProfile::flaml(), ToolProfile::autogluon(), ToolProfile::h2o()] {
                    let out = run_automl(&tool, &train, &test, &g.target, g.task, &automl_cfg);
                    cells.push(out.cell());
                    rec.insert(
                        tool.name.to_string(),
                        json!(match &out {
                            AutoMlOutcome::Success { test_score, .. } => Some(*test_score),
                            _ => None,
                        }),
                    );
                }
                let llm2 = llm_for("gemini-1.5-pro", args.seed);
                let caafe = run_caafe(
                    &train,
                    &test,
                    &g.target,
                    g.task,
                    &llm2,
                    &CaafeConfig { model: CaafeModel::RandomForest, ..Default::default() },
                );
                cells.push(caafe.cell());
                rec.insert("caafe".into(), json!(caafe.test_score));
                rows.push(cells);
                records.push(serde_json::Value::Object(rec));
            }
        }
    }
    (rows, records)
}

/// The 14b sweep: success-rate and cost-overhead curves over the injected
/// transport fault rate, everything sourced from traces.
fn fault_sweep(args: &BenchArgs) -> (Vec<Vec<String>>, Vec<serde_json::Value>) {
    let datasets: &[&str] = if args.smoke { &["diabetes"] } else { &["utility", "volkert"] };
    let rates: &[f64] = if args.smoke { &[0.0, 0.3] } else { &FAULT_RATES };
    let n_seeds: u64 = 3;
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for name in datasets {
        let g = generate(name, &args.gen_options()).expect("known dataset");
        for &rate in rates {
            let mut successes = 0u64;
            let mut scores = Vec::new();
            let mut llm_calls = 0usize;
            let mut retries = 0usize;
            let mut degradations = 0usize;
            let mut circuit_opens = 0usize;
            let mut usd_total = 0.0;
            let mut retry_usd = 0.0;
            for i in 0..n_seeds {
                let seed = args.seed + 97 * i;
                let llm = resilient_llm_for(
                    "gemini-1.5-pro",
                    seed,
                    rate,
                    args.max_retries,
                    args.llm_timeout,
                );
                let cfg = CatDbConfig { seed, ..Default::default() };
                // The whole session — catalog refinement and generation —
                // rides the resilient transport, so the sweep sees the
                // call volume a production run would.
                let (outcome, trace) = catdb_bench::traced(|| {
                    let p = catdb_bench::prepare(&g, true, &llm, seed);
                    generate_pipeline(&p.entry, &p.train, &p.test, &llm, &cfg)
                });
                if outcome.success {
                    successes += 1;
                }
                if let Some(e) = &outcome.evaluation {
                    scores.push(e.test.headline());
                }
                let measured = measured_cost(&trace);
                llm_calls += measured.llm_calls;
                retries += measured.retries;
                degradations += trace.degraded_count();
                circuit_opens += trace.circuit_open_count();
                usd_total += measured.usd;
                retry_usd += measured.retry_usd;
            }
            let success_rate = successes as f64 / n_seeds as f64;
            let mean_score = if scores.is_empty() {
                f64::NAN
            } else {
                scores.iter().sum::<f64>() / scores.len() as f64
            };
            let overhead = if usd_total > 0.0 { retry_usd / usd_total } else { 0.0 };
            rows.push(vec![
                name.to_string(),
                format!("{:.0}%", rate * 100.0),
                format!("{:.0}%", success_rate * 100.0),
                pct(mean_score),
                llm_calls.to_string(),
                retries.to_string(),
                circuit_opens.to_string(),
                degradations.to_string(),
                format!("{:.1}%", overhead * 100.0),
            ]);
            records.push(json!({
                "dataset": name,
                "fault_rate": rate,
                "success_rate": success_rate,
                "llm_calls": llm_calls,
                "mean_score": if mean_score.is_nan() { None } else { Some(mean_score) },
                "retries": retries,
                "circuit_opens": circuit_opens,
                "degradations": degradations,
                "retry_cost_overhead": overhead,
            }));
        }
    }
    (rows, records)
}

fn main() {
    let args = BenchArgs::parse();
    let mut results = serde_json::Map::new();
    if !args.smoke {
        let (rows, records) = corruption_study(&args);
        println!(
            "{}",
            render_table(
                "Figure 14a: Robustness to injected corruption (test score %)",
                &[
                    "dataset",
                    "corruption",
                    "ratio",
                    "catdb",
                    "flaml",
                    "autogluon",
                    "h2o",
                    "caafe_rf"
                ],
                &rows,
            )
        );
        results.insert("records".into(), json!(records));
    }
    let (fault_rows, fault_records) = fault_sweep(&args);
    println!(
        "{}",
        render_table(
            "Figure 14b: Resilience to LLM transport faults (per fault rate)",
            &[
                "dataset",
                "fault_rate",
                "success",
                "score",
                "llm_calls",
                "retries",
                "circuit_opens",
                "degradations",
                "retry_cost_overhead",
            ],
            &fault_rows,
        )
    );
    results.insert("fault_sweep".into(), json!(fault_records));
    save_results("fig14_robustness", &serde_json::Value::Object(results));
}

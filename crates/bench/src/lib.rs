//! # catdb-bench — experiment harness
//!
//! Shared utilities for the per-table/per-figure experiment binaries
//! (`src/bin/*.rs`): dataset preparation (generate → materialize →
//! profile → optionally refine → split), system runners with uniform
//! result rows, plain-text table rendering, and JSON result persistence
//! under `results/`.

use catdb_catalog::CatalogEntry;
use catdb_core::{generate_pipeline, CatDbConfig, GenerationOutcome, PromptOptions};
use catdb_data::{GenOptions, GeneratedDataset};
use catdb_llm::{
    resolve_route, FaultSpec, LanguageModel, ModelProfile, ResilientClient, RetryPolicy, RoutedLlm,
    SimLlm, DEFAULT_ROUTE_TARGET_ACCURACY,
};
use catdb_ml::TaskKind;
use catdb_profiler::{profile_table, ProfileOptions};
use catdb_sched::{CompletionCache, DEFAULT_LLM_CONCURRENCY};
use catdb_table::Table;
use serde_json::json;
use std::path::PathBuf;
use std::sync::Arc;

/// A dataset prepared for experiments.
pub struct Prepared {
    pub name: String,
    pub entry: CatalogEntry,
    pub train: Table,
    pub test: Table,
    /// Raw (unrefined) variants for original-vs-refined comparisons.
    pub raw_entry: CatalogEntry,
    pub raw_train: Table,
    pub raw_test: Table,
    pub refinement: Option<catdb_catalog::RefinementReport>,
    pub profile_seconds: f64,
    pub task: TaskKind,
    pub target: String,
}

/// Generate + profile + (optionally) refine + split one paper dataset.
pub fn prepare(g: &GeneratedDataset, refine: bool, llm: &dyn LanguageModel, seed: u64) -> Prepared {
    let materialized = g.dataset.materialize().expect("materialize");
    let popts = ProfileOptions::default();
    let profile = profile_table(g.spec.name, &materialized, &popts);
    let profile_seconds = profile.elapsed_seconds;
    let raw_entry = CatalogEntry::new(g.spec.name, g.target.clone(), g.task, profile.clone());
    let (raw_train, raw_test) = materialized.train_test_split(0.7, seed).expect("split");

    let (entry, train, test, refinement) = if refine {
        let (prepared, refined_profile, report) = catdb_catalog::refine_dataset(
            g.spec.name,
            &materialized,
            &profile,
            &g.target,
            llm,
            &catdb_catalog::RefineOptions::default(),
        );
        let entry = CatalogEntry::new(g.spec.name, g.target.clone(), g.task, refined_profile);
        let (train, test) = prepared.train_test_split(0.7, seed).expect("split");
        (entry, train, test, Some(report))
    } else {
        (raw_entry.clone(), raw_train.clone(), raw_test.clone(), None)
    };

    Prepared {
        name: g.spec.name.to_string(),
        entry,
        train,
        test,
        raw_entry,
        raw_train,
        raw_test,
        refinement,
        profile_seconds,
        task: g.task,
        target: g.target.clone(),
    }
}

/// Build a simulated LLM for one of the paper's model names.
pub fn llm_for(name: &str, seed: u64) -> SimLlm {
    let profile = ModelProfile::by_name(name).unwrap_or_else(ModelProfile::gpt_4o);
    SimLlm::new(profile, seed)
}

/// The three paper models in table order.
pub fn paper_llms() -> Vec<&'static str> {
    vec!["gpt-4o", "gemini-1.5-pro", "llama3.1-70b"]
}

/// Build the full resilient transport stack for a paper model: seeded
/// fault injection under retry/backoff/circuit-breaking with degradation
/// to the cheaper paper models (the fig14 fault-sweep configuration).
pub fn resilient_llm_for(
    name: &str,
    seed: u64,
    fault_rate: f64,
    max_retries: usize,
    llm_timeout: Option<f64>,
) -> ResilientClient {
    let profile = ModelProfile::by_name(name).unwrap_or_else(ModelProfile::gpt_4o);
    ResilientClient::simulated(
        profile,
        FaultSpec::from_rate(fault_rate),
        RetryPolicy { max_retries, call_timeout_seconds: llm_timeout, ..Default::default() },
        seed,
    )
}

/// Build the per-role routed transport for a bench run: one simulated
/// resilient backend per distinct model in the route spec, all sharing
/// `seed` so routed runs stay byte-deterministic. `route` accepts the
/// same grammar as `catdb run --route` (including `auto`).
pub fn routed_llm_for(
    default_model: &str,
    route: &str,
    target_accuracy: f64,
    seed: u64,
    fault_rate: f64,
    max_retries: usize,
    llm_timeout: Option<f64>,
) -> Result<RoutedLlm, catdb_llm::RouteError> {
    let profile = ModelProfile::by_name(default_model).unwrap_or_else(ModelProfile::gpt_4o);
    let spec = resolve_route(route, target_accuracy)?;
    Ok(RoutedLlm::simulated(
        &profile,
        &spec,
        FaultSpec::from_rate(fault_rate),
        RetryPolicy { max_retries, call_timeout_seconds: llm_timeout, ..Default::default() },
        seed,
    ))
}

/// Run CatDB (β = 1) or CatDB Chain (β > 1) on a prepared dataset.
pub fn run_catdb(
    p: &Prepared,
    llm: &dyn LanguageModel,
    beta: usize,
    seed: u64,
) -> GenerationOutcome {
    run_catdb_with(p, llm, beta, seed, DEFAULT_LLM_CONCURRENCY, None)
}

/// [`run_catdb`] with explicit scheduler knobs: the fan-out bound for the
/// chain's independent per-chunk prompts, and an optional completion
/// cache shared across runs (a sweep re-visiting a configuration replays
/// its completions for free).
pub fn run_catdb_with(
    p: &Prepared,
    llm: &dyn LanguageModel,
    beta: usize,
    seed: u64,
    llm_concurrency: usize,
    cache: Option<Arc<CompletionCache>>,
) -> GenerationOutcome {
    let cfg = CatDbConfig {
        prompt: PromptOptions { beta, ..Default::default() },
        seed,
        llm_concurrency,
        llm_cache: cache,
        ..Default::default()
    };
    generate_pipeline(&p.entry, &p.train, &p.test, llm, &cfg)
}

/// Like [`run_catdb`], but under a fresh trace sink: returns the outcome
/// together with the recorded [`catdb_trace::Trace`], from which the
/// figure binaries read their token/cost/iteration/runtime numbers.
pub fn run_catdb_traced(
    p: &Prepared,
    llm: &dyn LanguageModel,
    beta: usize,
    seed: u64,
) -> (GenerationOutcome, catdb_trace::Trace) {
    let sink = std::sync::Arc::new(catdb_trace::TraceSink::new());
    let outcome = {
        let _guard = catdb_trace::install(sink.clone());
        run_catdb(p, llm, beta, seed)
    };
    (outcome, sink.snapshot())
}

/// Run any closure under a fresh trace sink, returning its value and the
/// recorded trace (used to trace baseline systems, whose LLM calls are
/// captured by the simulator's instrumentation).
pub fn traced<T>(f: impl FnOnce() -> T) -> (T, catdb_trace::Trace) {
    let sink = std::sync::Arc::new(catdb_trace::TraceSink::new());
    let value = {
        let _guard = catdb_trace::install(sink.clone());
        f()
    };
    (value, sink.snapshot())
}

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    pub max_rows: usize,
    pub seed: u64,
    /// Quick mode trims iteration counts for smoke runs.
    pub quick: bool,
    /// CI smoke mode: tiny dataset, one seed, fully deterministic stdout
    /// (implies `quick`; used by the determinism gate, which runs a bin
    /// twice and diffs the output).
    pub smoke: bool,
    /// Injected LLM transport fault rate for resilience sweeps.
    pub fault_rate: f64,
    /// Transport retries per model rung after the first attempt.
    pub max_retries: usize,
    /// Per-call deadline on simulated LLM latency, seconds.
    pub llm_timeout: Option<f64>,
    /// Concurrent in-flight LLM requests for the chain's fan-out stages.
    pub llm_concurrency: usize,
    /// Per-role model routing spec (`refine=llama,fix=mini` or `auto`);
    /// when set, figure binaries add a `catdb_routed` system row.
    pub route: Option<String>,
    /// End-to-end accuracy target for `--route auto`.
    pub route_target_accuracy: f64,
}

impl BenchArgs {
    /// Parse `--max-rows N`, `--seed N`, `--quick`, `--smoke`,
    /// `--fault-rate F`, `--max-retries N`, `--llm-timeout S`,
    /// `--llm-concurrency N`, `--route SPEC|auto`,
    /// `--route-target-accuracy F` from argv.
    pub fn parse() -> BenchArgs {
        let mut args = BenchArgs {
            max_rows: 2_000,
            seed: 7,
            quick: false,
            smoke: false,
            fault_rate: 0.0,
            max_retries: 3,
            llm_timeout: None,
            llm_concurrency: DEFAULT_LLM_CONCURRENCY,
            route: None,
            route_target_accuracy: DEFAULT_ROUTE_TARGET_ACCURACY,
        };
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--max-rows" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        args.max_rows = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        args.seed = v;
                        i += 1;
                    }
                }
                "--fault-rate" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        args.fault_rate = v;
                        i += 1;
                    }
                }
                "--max-retries" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        args.max_retries = v;
                        i += 1;
                    }
                }
                "--llm-timeout" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        args.llm_timeout = Some(v);
                        i += 1;
                    }
                }
                "--llm-concurrency" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        args.llm_concurrency = v;
                        i += 1;
                    }
                }
                "--route" => {
                    if let Some(v) = argv.get(i + 1) {
                        args.route = Some(v.clone());
                        i += 1;
                    }
                }
                "--route-target-accuracy" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        args.route_target_accuracy = v;
                        i += 1;
                    }
                }
                "--quick" => args.quick = true,
                "--smoke" => {
                    args.smoke = true;
                    args.quick = true;
                    args.max_rows = 300;
                }
                _ => {}
            }
            i += 1;
        }
        args
    }

    /// The routed LLM for this run's `--route`, or `None` when unrouted.
    /// A malformed spec aborts the binary with the structured parse error
    /// (bench runs should fail loudly, not silently fall back).
    pub fn routed_llm(&self, default_model: &str, seed: u64) -> Option<RoutedLlm> {
        self.route.as_ref().map(|route| {
            routed_llm_for(
                default_model,
                route,
                self.route_target_accuracy,
                seed,
                self.fault_rate,
                self.max_retries,
                self.llm_timeout,
            )
            .unwrap_or_else(|e| {
                eprintln!("bad --route '{route}': {e}");
                std::process::exit(2);
            })
        })
    }

    pub fn gen_options(&self) -> GenOptions {
        GenOptions { max_rows: self.max_rows, scale: 1.0, seed: self.seed }
    }
}

/// Render an aligned plain-text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = format!("\n=== {title} ===\n");
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers.iter().map(|h| h.to_string()).collect(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Persist a JSON result under `results/<name>.json` (best effort).
pub fn save_results(name: &str, value: &serde_json::Value) {
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(text) = serde_json::to_string_pretty(value) {
            let _ = std::fs::write(&path, text);
            eprintln!("[saved {}]", path.display());
        }
    }
}

/// Summarize a generation outcome as a JSON record.
pub fn outcome_json(outcome: &GenerationOutcome) -> serde_json::Value {
    json!({
        "success": outcome.success,
        "handcrafted": outcome.handcrafted,
        "attempts": outcome.attempts,
        "test_score": outcome.evaluation.as_ref().map(|e| e.test.headline()),
        "train_score": outcome.evaluation.as_ref().map(|e| e.train.headline()),
        "tokens_total": outcome.ledger.total().total(),
        "tokens_error_fixing": outcome.ledger.error_fixing.total(),
        "llm_calls": outcome.ledger.n_calls,
        "llm_seconds": outcome.llm_seconds,
        "local_seconds": outcome.elapsed_seconds,
        "errors": outcome.traces.len(),
    })
}

/// Convenience accessor: outcome's headline test score or NaN.
pub fn test_score(outcome: &GenerationOutcome) -> f64 {
    outcome.evaluation.as_ref().map(|e| e.test.headline()).unwrap_or(f64::NAN)
}

/// Format a score cell as the paper does (percent with one decimal).
pub fn pct(score: f64) -> String {
    if score.is_nan() {
        "N/A".to_string()
    } else {
        format!("{:.1}", score * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdb_data::generate;

    #[test]
    fn prepare_produces_consistent_splits() {
        let opts = GenOptions { max_rows: 300, ..Default::default() };
        let g = generate("diabetes", &opts).unwrap();
        let llm = llm_for("gemini-1.5-pro", 1);
        let p = prepare(&g, true, &llm, 3);
        assert_eq!(p.train.n_rows() + p.test.n_rows(), 300);
        assert_eq!(p.raw_train.n_rows(), p.train.n_rows());
        assert!(p.refinement.is_some());
        assert!(p.profile_seconds >= 0.0);
    }

    #[test]
    fn run_catdb_end_to_end_on_prepared() {
        let opts = GenOptions { max_rows: 300, ..Default::default() };
        let g = generate("diabetes", &opts).unwrap();
        let llm = llm_for("gpt-4o", 1);
        let p = prepare(&g, true, &llm, 3);
        let outcome = run_catdb(&p, &llm, 1, 3);
        assert!(outcome.success);
        assert!(test_score(&outcome) > 0.5);
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let text = render_table(
            "T",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(text.contains("=== T ==="));
        assert!(text.contains("333"));
    }

    #[test]
    fn routed_llm_for_builds_from_spec_and_rejects_garbage() {
        let llm = routed_llm_for("gpt-4o", "refine=llama,fix=mini", 0.95, 7, 0.0, 3, None)
            .expect("valid spec");
        use catdb_llm::LanguageModel;
        assert_eq!(llm.model_name(), "gpt-4o");
        assert!(routed_llm_for("gpt-4o", "refine=claude", 0.95, 7, 0.0, 3, None).is_err());
    }

    #[test]
    fn pct_formats_like_paper() {
        assert_eq!(pct(0.918), "91.8");
        assert_eq!(pct(f64::NAN), "N/A");
    }
}

//! The user-facing CatDB API, mirroring the paper's snippet:
//!
//! ```text
//! md  = catdb_collect(M)            /* collect metadata            */
//! llm = LLM(model, client_url, cfg) /* configure LLM               */
//! P   = catdb_pipgen(md, llm)       /* P.code, P.results           */
//! ```
//!
//! [`catdb_collect`] materializes a (possibly multi-table) dataset,
//! profiles it, optionally runs the LLM-assisted catalog refinement, and
//! returns the catalog entry together with the prepared table.
//! [`catdb_pipgen`] splits the prepared data, runs Algorithm 4, and
//! returns the generated code plus its execution results.

use crate::generate::{generate_pipeline, CatDbConfig, GenerationOutcome};
use catdb_catalog::{
    refine_dataset, CatalogEntry, MultiTableDataset, RefineOptions, RefinementReport,
};
use catdb_llm::LanguageModel;
use catdb_ml::TaskKind;
use catdb_profiler::{profile_table, ProfileOptions};
use catdb_table::Table;

/// Options for metadata collection.
#[derive(Debug, Clone, Default)]
pub struct CollectOptions {
    pub profile: ProfileOptions,
    /// Run the LLM-assisted catalog refinement + data preparation.
    pub refine: bool,
    pub refine_options: RefineOptions,
}

/// `catdb_collect`: profile (and optionally refine) a dataset into a
/// catalog entry plus the prepared single-table data.
pub fn catdb_collect(
    dataset: &MultiTableDataset,
    target: &str,
    task: TaskKind,
    llm: &dyn LanguageModel,
    opts: &CollectOptions,
) -> Result<(CatalogEntry, Table, Option<RefinementReport>), catdb_table::TableError> {
    let materialized = dataset.materialize()?;
    let profile = profile_table(&dataset.name, &materialized, &opts.profile);
    if !opts.refine {
        let entry = CatalogEntry::new(dataset.name.clone(), target, task, profile);
        return Ok((entry, materialized, None));
    }
    let (prepared, refined_profile, report) =
        refine_dataset(&dataset.name, &materialized, &profile, target, llm, &opts.refine_options);
    let entry = CatalogEntry::new(dataset.name.clone(), target, task, refined_profile);
    Ok((entry, prepared, Some(report)))
}

/// The result object of `catdb_pipgen` (`P.code` / `P.results`).
pub struct PipgenResult {
    /// `P.code` — source of the generated pipeline.
    pub code: String,
    /// `P.results` — outputs of the pipeline's execution plus session
    /// accounting.
    pub results: GenerationOutcome,
}

/// `catdb_pipgen`: generate and validate a pipeline for a catalogued,
/// prepared dataset. Splits 70/30 like all paper experiments.
pub fn catdb_pipgen(
    entry: &CatalogEntry,
    prepared: &Table,
    llm: &dyn LanguageModel,
    cfg: &CatDbConfig,
) -> Result<PipgenResult, catdb_table::TableError> {
    let (train, test) = prepared.train_test_split(0.7, cfg.seed)?;
    let outcome = generate_pipeline(entry, &train, &test, llm, cfg);
    Ok(PipgenResult { code: outcome.source.clone(), results: outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdb_llm::{ModelProfile, SimLlm};
    use catdb_table::Column;

    fn toy_dataset() -> MultiTableDataset {
        let n = 400;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let g: Vec<&str> = (0..n).map(|i| ["F", "Female", "M", "Male"][i % 4]).collect();
        let y: Vec<&str> = (0..n).map(|i| if i < n / 2 { "lo" } else { "hi" }).collect();
        let t = Table::from_columns(vec![
            ("x", Column::from_f64(x)),
            ("gender", Column::from_strings(g)),
            ("y", Column::from_strings(y)),
        ])
        .unwrap();
        MultiTableDataset::single("toy", t)
    }

    #[test]
    fn collect_then_pipgen_mirrors_paper_api() {
        let dataset = toy_dataset();
        let llm = SimLlm::new(ModelProfile::gpt_4o(), 2);
        let opts = CollectOptions { refine: true, ..Default::default() };
        let (entry, prepared, report) =
            catdb_collect(&dataset, "y", TaskKind::BinaryClassification, &llm, &opts).unwrap();
        assert!(report.is_some());
        let result = catdb_pipgen(&entry, &prepared, &llm, &CatDbConfig::default()).unwrap();
        assert!(result.results.success);
        assert!(result.code.contains("pipeline {"));
        assert!(result.results.evaluation.is_some());
    }

    #[test]
    fn collect_without_refinement_keeps_raw_values() {
        let dataset = toy_dataset();
        let llm = SimLlm::new(ModelProfile::gpt_4o(), 2);
        let (entry, prepared, report) = catdb_collect(
            &dataset,
            "y",
            TaskKind::BinaryClassification,
            &llm,
            &CollectOptions::default(),
        )
        .unwrap();
        assert!(report.is_none());
        assert_eq!(entry.column("gender").unwrap().distinct_count, 4);
        assert_eq!(prepared.n_rows(), 400);
    }
}

//! Pipeline generation and validation — paper Algorithm 4 (single prompt)
//! and the CatDB Chain variant (Figure 6), with the Figure 7 error
//! management: knowledge-base fixes first, then LLM error prompts (with
//! projected catalog metadata for runtime errors), bounded by τ₂ attempts,
//! and a handcrafted fallback so no dataset is ever left without a
//! pipeline (the paper's HANDCRAFTPIPELINE / "no silent errors" guarantee).

use crate::kb::{ErrorTrace, FixedBy, KbFix, KnowledgeBase};
use crate::prompt::{PromptBuilder, PromptOptions};
use catdb_catalog::CatalogEntry;
use catdb_llm::{CostLedger, LanguageModel, LlmError, LlmTaskKind, Prompt};
use catdb_ml::TaskKind;
use catdb_pipeline::{
    execute, parse, ColumnRef, EncodeSpec, Environment, ErrorCategory, Evaluation, ExecMode,
    ExecutionConfig, ImputeSpec, ModelAlgo, ModelFamily, ModelSpec, PipelineError, Program, Step,
    StepCache,
};
use catdb_sched::{CompletionCache, LlmScheduler, DEFAULT_LLM_CONCURRENCY};
use catdb_table::{DataType, Table};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Entries held by a session-scoped (non-shared) completion cache. Large
/// enough that a single generation session never evicts.
const SESSION_CACHE_CAPACITY: usize = 4096;

/// CatDB generation configuration.
#[derive(Debug, Clone)]
pub struct CatDbConfig {
    pub prompt: PromptOptions,
    /// τ₂ — maximum error-correction attempts (the single-iteration
    /// experiments allow up to 15).
    pub max_fix_attempts: usize,
    /// Rows sampled for the quick local validation run.
    pub validation_rows: usize,
    /// Simulated memory envelope for pipeline execution.
    pub memory_limit: Option<usize>,
    pub seed: u64,
    /// Ablation switches for the error-management study.
    pub use_knowledge_base: bool,
    pub use_llm_fix: bool,
    pub handcraft_fallback: bool,
    /// Library compliance (the paper's Section 4.3 future-work item):
    /// packages organizations disallow. Generated pipelines are locally
    /// rewritten to avoid them (boosting/tabpfn fall back to preinstalled
    /// algorithms; their `require` lines are dropped).
    pub disallowed_packages: Vec<String>,
    /// Maximum simultaneously in-flight LLM requests when fanning out
    /// independent prompts (`--llm-concurrency`). Chunk-ordered assembly
    /// keeps results byte-identical at any value.
    pub llm_concurrency: usize,
    /// JSON-lines file backing the completion cache (`--llm-cache`);
    /// entries persist across runs and warm starts are zero-billed.
    pub llm_cache_path: Option<PathBuf>,
    /// Pre-built cache handle, shared across sessions (e.g. one cache
    /// spanning a whole config sweep). Takes precedence over
    /// `llm_cache_path`.
    pub llm_cache: Option<Arc<CompletionCache>>,
    /// Split-search strategy forwarded to the tree-family estimators
    /// (`--split-mode`): exact scans or histogram-binned training.
    pub split_mode: catdb_ml::SplitMode,
    /// Profiling strategy (`--profile-mode`): exact full-column scans
    /// or chunked single-pass sketches for out-of-core inputs.
    pub profile_mode: catdb_profiler::ProfileMode,
    /// Pipeline scheduling strategy (`--exec-mode`): strict source order
    /// or dependency-DAG antichains with step memoization. DAG mode
    /// shares one [`StepCache`] across the whole session, so Algorithm 4
    /// fix-loop iterations re-execute only the steps a fix changed.
    pub exec_mode: ExecMode,
}

impl Default for CatDbConfig {
    fn default() -> Self {
        CatDbConfig {
            prompt: PromptOptions::default(),
            max_fix_attempts: 15,
            validation_rows: 400,
            memory_limit: None,
            seed: 42,
            use_knowledge_base: true,
            use_llm_fix: true,
            handcraft_fallback: true,
            disallowed_packages: Vec::new(),
            llm_concurrency: DEFAULT_LLM_CONCURRENCY,
            llm_cache_path: None,
            llm_cache: None,
            split_mode: catdb_ml::SplitMode::Exact,
            profile_mode: catdb_profiler::ProfileMode::Exact,
            exec_mode: ExecMode::Seq,
        }
    }
}

impl CatDbConfig {
    /// The completion cache this config asks for: the shared handle if
    /// one was provided, else a fresh cache (disk-backed when
    /// `llm_cache_path` is set).
    pub fn completion_cache(&self) -> Arc<CompletionCache> {
        if let Some(cache) = &self.llm_cache {
            return cache.clone();
        }
        Arc::new(match &self.llm_cache_path {
            Some(path) => CompletionCache::persistent(path, SESSION_CACHE_CAPACITY),
            None => CompletionCache::new(SESSION_CACHE_CAPACITY),
        })
    }
}

/// The result of one generation session.
#[derive(Debug, Clone)]
pub struct GenerationOutcome {
    /// Final pipeline source (possibly handcrafted).
    pub source: String,
    pub program: Option<Program>,
    pub evaluation: Option<Evaluation>,
    pub ledger: CostLedger,
    pub traces: Vec<ErrorTrace>,
    /// Simulated LLM latency (generation + fixes), seconds.
    pub llm_seconds: f64,
    /// Wall-clock seconds of the local work (validation + execution).
    pub elapsed_seconds: f64,
    pub attempts: usize,
    pub success: bool,
    /// True when the handcrafted fallback produced the final pipeline.
    pub handcrafted: bool,
}

/// Enforce library compliance: drop `require` lines naming disallowed
/// packages and rewrite model algorithms that would import them onto
/// preinstalled alternatives. Purely local and deterministic — compliance
/// must not depend on LLM cooperation.
fn enforce_library_policy(source: &str, disallowed: &[String]) -> String {
    if disallowed.is_empty() {
        return source.to_string();
    }
    let banned = |pkg: &str| disallowed.iter().any(|d| d == pkg);
    source
        .lines()
        .filter_map(|line| {
            let t = line.trim();
            if let Some(rest) = t.strip_prefix("require ") {
                if let Some(pkg) = rest.trim().strip_prefix('"').and_then(|r| r.split('"').next()) {
                    let name = pkg.split("==").next().unwrap_or(pkg);
                    if banned(name) {
                        return None;
                    }
                }
            }
            let mut out = line.to_string();
            if banned("boosting") {
                out = out.replace("gradient_boosting", "random_forest");
            }
            if banned("tabpfn") {
                out = out.replace(" tabpfn ", " random_forest ");
            }
            if banned("imbalanced")
                && (out.trim_start().starts_with("augment ")
                    || out.trim_start().starts_with("rebalance "))
            {
                return None;
            }
            if banned("text_features")
                && (out.contains("method khot") || out.contains("method hash"))
            {
                // Fall back to the preinstalled encoder.
                let idx = out.find("method").expect("encode line");
                out = format!("{}method onehot;", &out[..idx]);
            }
            if banned("outlier_tools") && out.contains("method lof") {
                out = "  outliers * method iqr factor 1.5;".to_string();
            }
            Some(out)
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// The paper's "automatic method for extracting required packages and
/// creating local environments": before running a pipeline, install every
/// package its `require` declarations name (unpinned, index-known ones).
/// Packages a faulty generation *forgot* to declare — or declared with a
/// stale pin or a hallucinated name — still surface as KB-class errors at
/// execution, which is exactly the paper's missing-package error channel.
fn preinstall_requirements(source: &str, env: &mut Environment) {
    for line in source.lines() {
        let t = line.trim();
        let Some(rest) = t.strip_prefix("require ") else { continue };
        let Some(pkg) = rest.trim().strip_prefix('"').and_then(|r| r.split('"').next()) else {
            continue;
        };
        if !pkg.contains("==") {
            let _ = env.install(pkg);
        }
    }
}

/// Quoted column names in an error message that exist in the catalog
/// (drives GETCATALOGDATA's metadata projection for runtime errors).
fn referenced_columns(entry: &CatalogEntry, message: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = message;
    while let Some(open) = rest.find('\'') {
        let Some(close) = rest[open + 1..].find('\'') else { break };
        let name = &rest[open + 1..open + 1 + close];
        if entry.column(name).is_some() && !out.iter().any(|n| n == name) {
            out.push(name.to_string());
        }
        rest = &rest[open + 1 + close + 1..];
    }
    out
}

/// The deterministic fallback pipeline built straight from the catalog.
pub fn handcraft_program(entry: &CatalogEntry) -> Program {
    let mut steps = Vec::new();
    steps.push(Step::Impute { column: ColumnRef::All, strategy: ImputeSpec::Median });
    steps.push(Step::Impute { column: ColumnRef::All, strategy: ImputeSpec::MostFrequent });
    let mut needs_text_features = false;
    for col in entry.feature_columns() {
        if col.data_type != DataType::Str {
            continue;
        }
        let method = match col.feature_type {
            catdb_profiler::FeatureType::List => {
                needs_text_features = true;
                EncodeSpec::KHot { separator: ",".into() }
            }
            _ if col.distinct_count > 50 => {
                needs_text_features = true;
                EncodeSpec::Hash { buckets: 32 }
            }
            _ => EncodeSpec::OneHot,
        };
        steps.push(Step::Encode { column: ColumnRef::Named(col.name.clone()), method });
    }
    if needs_text_features {
        steps.insert(0, Step::Require { package: "text_features".into() });
    }
    let family = if entry.task_kind() == TaskKind::Regression {
        ModelFamily::Regressor
    } else {
        ModelFamily::Classifier
    };
    steps.push(Step::Model(ModelSpec {
        family,
        algo: ModelAlgo::RandomForest,
        target: entry.target.clone(),
        params: vec![("trees".into(), 60.0), ("depth".into(), 12.0)],
    }));
    Program::new(steps)
}

struct Session<'a> {
    entry: &'a CatalogEntry,
    builder: PromptBuilder<'a>,
    /// Every completion goes through the scheduler: cache lookups,
    /// in-flight coalescing, and bounded fan-out sit between the session
    /// and the underlying (possibly resilient) model.
    sched: LlmScheduler<'a>,
    cfg: &'a CatDbConfig,
    env: Environment,
    kb: KnowledgeBase,
    ledger: CostLedger,
    traces: Vec<ErrorTrace>,
    llm_seconds: f64,
}

impl Session<'_> {
    fn record(&mut self, error: &PipelineError, attempt: usize, fixed_by: FixedBy) {
        catdb_trace::emit(catdb_trace::TraceEvent::ErrorIteration {
            kind: error.kind.code().to_string(),
            attempt,
        });
        self.traces.push(ErrorTrace {
            dataset: self.entry.dataset_name.clone(),
            llm: self.sched.model_name().to_string(),
            kind: error.kind,
            category: error.kind.category(),
            attempt,
            fixed_by,
        });
    }

    /// Submit a generation-stage prompt (context-overflow falls back to
    /// top-K column reduction via α, halving until the prompt fits).
    fn complete_generation(&mut self, task: LlmTaskKind, code: Option<&str>) -> Option<String> {
        let mut opts = self.builder_opts();
        for _ in 0..6 {
            let builder = PromptBuilder::new(self.entry, opts.clone());
            let prompt = match task {
                LlmTaskKind::PipelineGeneration => builder.single_prompt(),
                _ => {
                    let cols = builder.select_columns();
                    builder.stage_prompt(task, &cols, code)
                }
            };
            match self.sched.complete(&prompt) {
                Ok(c) => {
                    self.ledger.record_generation(c.usage);
                    self.llm_seconds += c.latency_seconds;
                    return Some(c.text);
                }
                Err(LlmError::ContextLengthExceeded { .. }) => {
                    // "We reduce the number of features via the parameter α"
                    let current = opts.alpha.unwrap_or(self.entry.profile.columns.len());
                    if current <= 4 {
                        return None;
                    }
                    opts.alpha = Some(current / 2);
                }
                // Transport failures (5xx, timeouts, rate limits) that
                // survived the client's own retry/degradation budget:
                // resubmit at this level until the attempt cap runs out.
                Err(_) => continue,
            }
        }
        None
    }

    fn builder_opts(&self) -> PromptOptions {
        // PromptBuilder holds the canonical options; clone them for local
        // mutation (α reduction on overflow).
        self.cfg.prompt.clone()
    }

    /// Submit an error-fix prompt. A recurring identical (source, error)
    /// pair renders the identical prompt, so the scheduler's cache
    /// short-circuits it without an upstream call — the returned flag
    /// reports that, and the attempt log records it as
    /// [`FixedBy::CachedLlmFix`].
    fn complete_fix(&mut self, source: &str, error: &PipelineError) -> Option<(String, bool)> {
        let include_metadata = error.kind.category() == ErrorCategory::Runtime;
        let relevant = referenced_columns(self.entry, &error.message);
        let prompt =
            self.builder.error_prompt(source, &error.render(), include_metadata, &relevant);
        match self.sched.complete_cached(&prompt) {
            Ok((c, cached)) => {
                self.ledger.record_error_fix(c.usage);
                self.llm_seconds += c.latency_seconds;
                Some((c.text, cached))
            }
            Err(_) => None,
        }
    }

    /// Handle one failure: KB first, then LLM. Returns the next source to
    /// try, or `None` when unfixable through the enabled channels.
    fn handle_error(
        &mut self,
        source: String,
        error: &PipelineError,
        attempt: usize,
    ) -> Option<String> {
        if self.cfg.use_knowledge_base {
            match self.kb.try_fix(error, &source, &mut self.env) {
                KbFix::EnvironmentRepaired { .. } | KbFix::Retry => {
                    self.record(error, attempt, FixedBy::KnowledgeBase);
                    return Some(source); // same code, repaired environment
                }
                KbFix::CleanedSource(cleaned) => {
                    let by = if error.kind.category() == ErrorCategory::Syntax {
                        FixedBy::LocalSyntaxCleanup
                    } else {
                        FixedBy::KnowledgeBase
                    };
                    self.record(error, attempt, by);
                    return Some(cleaned);
                }
                KbFix::NotFixable => {}
            }
        }
        if self.cfg.use_llm_fix {
            if let Some((fixed, cached)) = self.complete_fix(&source, error) {
                let by = if cached { FixedBy::CachedLlmFix } else { FixedBy::LlmResubmission };
                self.record(error, attempt, by);
                return Some(fixed);
            }
        }
        self.record(error, attempt, FixedBy::Unfixed);
        None
    }
}

/// Run CatDB pipeline generation end to end over prepared train/test
/// tables. `beta` in the prompt options picks single-prompt vs chain.
pub fn generate_pipeline(
    entry: &CatalogEntry,
    train: &Table,
    test: &Table,
    llm: &dyn LanguageModel,
    cfg: &CatDbConfig,
) -> GenerationOutcome {
    let _span = catdb_trace::span("generate_pipeline");
    let started = Instant::now();
    let mut session = Session {
        entry,
        builder: PromptBuilder::new(entry, cfg.prompt.clone()),
        sched: scheduler_for(llm, cfg),
        cfg,
        env: Environment::default(),
        kb: KnowledgeBase,
        ledger: CostLedger::default(),
        traces: Vec::new(),
        llm_seconds: 0.0,
    };

    // ---- Initial generation ----
    let initial = if cfg.prompt.beta <= 1 {
        session.complete_generation(LlmTaskKind::PipelineGeneration, None)
    } else {
        generate_chain(&mut session)
    };

    let task = entry.task_kind();
    // One step cache for the whole session: validation runs, full runs,
    // and every fix-loop iteration share it, so only the steps an error
    // fix actually changed (plus their dependents) re-execute.
    let step_cache = (cfg.exec_mode == ExecMode::Dag).then(|| Arc::new(StepCache::new()));
    let exec_cfg = ExecutionConfig {
        memory_limit: cfg.memory_limit,
        task,
        seed: cfg.seed,
        fast_validation: false,
        split_mode: cfg.split_mode,
        profile_mode: cfg.profile_mode,
        exec_mode: cfg.exec_mode,
        step_cache: step_cache.clone(),
        inject_fault_step: None,
    };
    let n_train = train.n_rows().max(1);
    let validation_fraction =
        (cfg.validation_rows.min(n_train) as f64 / n_train as f64).clamp(0.0, 1.0);
    let val_train = train.sample(cfg.validation_rows, cfg.seed);
    let val_test = test.sample((cfg.validation_rows / 3).max(30), cfg.seed ^ 1);
    let val_cfg = ExecutionConfig {
        memory_limit: cfg
            .memory_limit
            .map(|m| ((m as f64) * validation_fraction).max(64_000.0) as usize),
        task,
        seed: cfg.seed,
        fast_validation: true,
        split_mode: cfg.split_mode,
        profile_mode: cfg.profile_mode,
        exec_mode: cfg.exec_mode,
        step_cache,
        inject_fault_step: None,
    };

    // ---- Validation & error-management loop (Algorithm 4, lines 3–15) ----
    let mut source = initial.unwrap_or_else(|| handcraft_program(entry).render());
    let mut outcome_eval: Option<(Program, Evaluation)> = None;
    let mut attempts = 0;
    while attempts < cfg.max_fix_attempts {
        attempts += 1;
        source = enforce_library_policy(&source, &cfg.disallowed_packages);
        preinstall_requirements(&source, &mut session.env);
        // Parse (syntax check).
        let program = match parse(&source) {
            Ok(p) => p,
            Err(e) => match session.handle_error(source.clone(), &e, attempts) {
                Some(next) => {
                    source = next;
                    continue;
                }
                None => break,
            },
        };
        // Runtime check on a local validation sample.
        if let Err(e) = execute(&program, &val_train, &val_test, &session.env, &val_cfg) {
            match session.handle_error(source.clone(), &e, attempts) {
                Some(next) => {
                    source = next;
                    continue;
                }
                None => break,
            }
        }
        // Full run.
        match execute(&program, train, test, &session.env, &exec_cfg) {
            Ok(eval) => {
                source = program.render();
                outcome_eval = Some((program, eval));
                break;
            }
            Err(e) => match session.handle_error(source.clone(), &e, attempts) {
                Some(next) => {
                    source = next;
                    continue;
                }
                None => break,
            },
        }
    }

    // ---- Handcrafted fallback (VERIFYPIPELINECODE / HANDCRAFTPIPELINE) ----
    let mut handcrafted = false;
    if outcome_eval.is_none() && cfg.handcraft_fallback {
        // The last step of the degradation ladder: no LLM (resilient or
        // otherwise) produced a working pipeline, so CatDB falls back to
        // the deterministic catalog-derived program.
        catdb_trace::emit(catdb_trace::TraceEvent::Degraded {
            from: llm.model_name().to_string(),
            to: "handcraft_program".to_string(),
            reason: "generation_exhausted".to_string(),
        });
        let program = handcraft_program(entry);
        let mut env = session.env.clone();
        for pkg in catdb_pipeline::required_packages(&program.steps) {
            let _ = env.install(pkg);
        }
        if let Ok(eval) = execute(&program, train, test, &env, &exec_cfg) {
            source = program.render();
            if let Some(last) = session.traces.last_mut() {
                last.fixed_by = FixedBy::Handcrafted;
            }
            outcome_eval = Some((program, eval));
            handcrafted = true;
        }
    }

    let success = outcome_eval.is_some();
    let (program, evaluation) = match outcome_eval {
        Some((p, e)) => (Some(p), Some(e)),
        None => (None, None),
    };
    GenerationOutcome {
        source,
        program,
        evaluation,
        ledger: session.ledger,
        traces: session.traces,
        llm_seconds: session.llm_seconds,
        elapsed_seconds: started.elapsed().as_secs_f64(),
        attempts,
        success,
        handcrafted,
    }
}

/// Build the per-session scheduler: the configured cache, the configured
/// fan-out bound, and a decode tag carrying the sampling seed (the
/// simulator's output is seed-dependent, so a persisted cache entry from
/// another seed must never be served).
fn scheduler_for<'a>(llm: &'a dyn LanguageModel, cfg: &CatDbConfig) -> LlmScheduler<'a> {
    LlmScheduler::new(llm, cfg.completion_cache())
        .with_concurrency(cfg.llm_concurrency)
        .with_decode_tag(format!("seed={}", cfg.seed))
}

/// Merge chain stage outputs into one program in chunk order: keep each
/// stage's step lines, drop wrappers and `require` declarations (the
/// model-selection stage recomputes requires over the whole body, exactly
/// as the simulator does for accumulated `<CODE>`).
fn merge_chain_code<'a>(stage_outputs: impl IntoIterator<Item = &'a String>) -> String {
    let mut lines = vec!["pipeline {".to_string()];
    for text in stage_outputs {
        for line in text.lines() {
            let t = line.trim();
            if t.is_empty()
                || t == "pipeline {"
                || t == "}"
                || t.starts_with('#')
                || t.starts_with("require ")
            {
                continue;
            }
            lines.push(format!("  {t}"));
        }
    }
    lines.push("}".to_string());
    lines.join("\n") + "\n"
}

/// CatDB Chain (Figure 6 / Algorithm 3): per-chunk pre-processing
/// prompts, then per-chunk feature-engineering prompts, then one
/// model-selection prompt over the accumulated `<CODE>`.
///
/// The per-chunk prompts within one stage are mutually independent —
/// each acts on its own catalog partition — so both stages fan out
/// through the scheduler with at most `llm_concurrency` in flight.
/// Results are assembled strictly in chunk order, and the simulated
/// models answer each prompt independently of serving order, so the
/// final pipeline is byte-identical at any concurrency. Model selection
/// stays sequential: it consumes the merged code of *every* chunk, so
/// nothing can overlap with it.
fn generate_chain(session: &mut Session<'_>) -> Option<String> {
    let builder = PromptBuilder::new(session.entry, session.cfg.prompt.clone());
    let chunks = builder.chain_chunks();

    // Collect a fanned-out stage: bill every completion in chunk order,
    // parse-check each chunk ("we verify each pipeline step
    // independently, simplifying error detection"), local cleanup for
    // broken ones. Fails the chain if any chunk failed outright.
    let collect_stage =
        |session: &mut Session<'_>, results: Vec<Result<catdb_llm::Completion, LlmError>>| {
            let mut texts = Vec::with_capacity(results.len());
            let mut failed = false;
            for result in results {
                match result {
                    Ok(c) => {
                        session.ledger.record_generation(c.usage);
                        session.llm_seconds += c.latency_seconds;
                        let mut text = c.text;
                        if let Err(e) = parse(&text) {
                            let cleaned = catdb_llm::clean_pipeline_syntax(&text);
                            session.record(&e, 0, FixedBy::LocalSyntaxCleanup);
                            if parse(&cleaned).is_ok() {
                                text = cleaned;
                            }
                        }
                        texts.push(text);
                    }
                    Err(_) => failed = true,
                }
            }
            if failed {
                None
            } else {
                Some(texts)
            }
        };

    let stage_prompts = |task: LlmTaskKind| -> Vec<Prompt> {
        chunks.iter().map(|chunk| builder.stage_prompt(task, chunk, None)).collect()
    };

    let pre_prompts = stage_prompts(LlmTaskKind::Preprocessing);
    let pre_results = session.sched.complete_many(&pre_prompts);
    let pre_texts = collect_stage(session, pre_results)?;

    let fe_prompts = stage_prompts(LlmTaskKind::FeatureEngineering);
    let fe_results = session.sched.complete_many(&fe_prompts);
    let fe_texts = collect_stage(session, fe_results)?;

    let merged = merge_chain_code(pre_texts.iter().chain(fe_texts.iter()));
    let all: Vec<&catdb_profiler::ColumnProfile> = builder.select_columns();
    let prompt = builder.stage_prompt(LlmTaskKind::ModelSelection, &all, Some(&merged));
    let results = session.sched.complete_many(std::slice::from_ref(&prompt));
    let mut texts = collect_stage(session, results)?;
    texts.pop()
}

/// Chain generation alone — no validation, no error-management loop.
/// Exposes the fan-out path directly so benches can measure pure chain
/// wall-clock against the scheduler without local execution diluting it.
pub fn generate_chain_source(
    entry: &CatalogEntry,
    llm: &dyn LanguageModel,
    cfg: &CatDbConfig,
) -> Option<String> {
    let mut session = Session {
        entry,
        builder: PromptBuilder::new(entry, cfg.prompt.clone()),
        sched: scheduler_for(llm, cfg),
        cfg,
        env: Environment::default(),
        kb: KnowledgeBase,
        ledger: CostLedger::default(),
        traces: Vec::new(),
        llm_seconds: 0.0,
    };
    generate_chain(&mut session)
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdb_llm::{ModelProfile, SimLlm};
    use catdb_profiler::{profile_table, ProfileOptions};
    use catdb_table::Column;

    fn dataset() -> (CatalogEntry, Table, Table) {
        let n = 600;
        let age: Vec<Option<f64>> =
            (0..n).map(|i| if i % 13 == 0 { None } else { Some(20.0 + (i % 45) as f64) }).collect();
        let city: Vec<&str> = (0..n).map(|i| ["paris", "rome", "oslo"][i % 3]).collect();
        let y: Vec<String> = (0..n)
            .map(|i| {
                let signal = (i % 45) as f64 + if i % 3 == 0 { 20.0 } else { 0.0 };
                if signal > 30.0 {
                    "yes".to_string()
                } else {
                    "no".to_string()
                }
            })
            .collect();
        let t = Table::from_columns(vec![
            ("age", Column::Float(age)),
            ("city", Column::from_strings(city)),
            ("y", Column::from_strings(y)),
        ])
        .unwrap();
        let profile = profile_table("toy", &t, &ProfileOptions::default());
        let entry = CatalogEntry::new("toy", "y", TaskKind::BinaryClassification, profile);
        let (train, test) = t.train_test_split(0.7, 3).unwrap();
        (entry, train, test)
    }

    #[test]
    fn single_prompt_generation_succeeds_end_to_end() {
        let (entry, train, test) = dataset();
        let llm = SimLlm::new(ModelProfile::gpt_4o(), 11);
        let outcome = generate_pipeline(&entry, &train, &test, &llm, &CatDbConfig::default());
        assert!(outcome.success, "traces: {:?}", outcome.traces);
        let eval = outcome.evaluation.unwrap();
        assert!(eval.test.headline() > 0.6, "{:?}", eval.test);
        assert!(outcome.ledger.n_calls >= 1);
        assert!(outcome.llm_seconds > 0.0);
    }

    #[test]
    fn chain_generation_succeeds_end_to_end() {
        let (entry, train, test) = dataset();
        let llm = SimLlm::new(ModelProfile::gemini_1_5_pro(), 11);
        let cfg = CatDbConfig {
            prompt: PromptOptions { beta: 2, ..Default::default() },
            ..Default::default()
        };
        let outcome = generate_pipeline(&entry, &train, &test, &llm, &cfg);
        assert!(outcome.success, "traces: {:?}", outcome.traces);
        // Chain makes more generation calls than the single prompt.
        assert!(outcome.ledger.n_calls >= 3);
    }

    #[test]
    fn error_prone_model_converges_via_error_management() {
        let (entry, train, test) = dataset();
        // A deliberately unreliable model: every generation carries a
        // semantic fault; fixes succeed at the Llama rate.
        let profile = ModelProfile { semantic_fault_rate: 1.0, ..ModelProfile::llama3_1_70b() };
        let llm = SimLlm::new(profile, 23);
        let outcome = generate_pipeline(&entry, &train, &test, &llm, &CatDbConfig::default());
        assert!(outcome.success);
        assert!(!outcome.traces.is_empty(), "faults must surface as traces");
    }

    #[test]
    fn disabled_error_management_fails_then_fallback_rescues() {
        let (entry, train, test) = dataset();
        let profile = ModelProfile {
            semantic_fault_rate: 1.0,
            syntax_fault_rate: 0.0,
            ..ModelProfile::llama3_1_70b()
        };
        let llm = SimLlm::new(profile, 23);
        let cfg = CatDbConfig {
            use_knowledge_base: false,
            use_llm_fix: false,
            handcraft_fallback: false,
            ..Default::default()
        };
        let outcome = generate_pipeline(&entry, &train, &test, &llm, &cfg);
        assert!(!outcome.success);

        let cfg2 =
            CatDbConfig { use_llm_fix: false, use_knowledge_base: false, ..Default::default() };
        let llm2 = SimLlm::new(
            ModelProfile { semantic_fault_rate: 1.0, ..ModelProfile::llama3_1_70b() },
            23,
        );
        let outcome2 = generate_pipeline(&entry, &train, &test, &llm2, &cfg2);
        assert!(outcome2.success, "handcrafted fallback must rescue");
        assert!(outcome2.handcrafted);
    }

    #[test]
    fn handcrafted_program_is_valid_and_runs() {
        let (entry, train, test) = dataset();
        let program = handcraft_program(&entry);
        let parsed = parse(&program.render()).unwrap();
        assert_eq!(parsed, program);
        let mut env = Environment::default();
        for pkg in catdb_pipeline::required_packages(&program.steps) {
            env.install(pkg).unwrap();
        }
        let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
        let eval = execute(&program, &train, &test, &env, &cfg).unwrap();
        assert!(eval.test.headline() > 0.6);
    }

    #[test]
    fn library_policy_is_enforced_locally() {
        let (entry, train, test) = dataset();
        let llm = SimLlm::new(ModelProfile::gpt_4o(), 11);
        let cfg = CatDbConfig {
            disallowed_packages: vec![
                "boosting".to_string(),
                "imbalanced".to_string(),
                "text_features".to_string(),
            ],
            ..Default::default()
        };
        let outcome = generate_pipeline(&entry, &train, &test, &llm, &cfg);
        assert!(outcome.success);
        assert!(!outcome.source.contains("gradient_boosting"), "{}", outcome.source);
        assert!(!outcome.source.contains("require \"boosting\""));
        assert!(!outcome.source.contains("augment method"));
        assert!(!outcome.source.contains("method khot"));
    }

    #[test]
    fn policy_rewrite_preserves_parseability() {
        let src = "pipeline {\n  require \"boosting\";\n  encode \"a\" method khot sep \",\";\n  augment method adasyn target \"y\";\n  outliers * method lof k 5 factor 4;\n  model classifier gradient_boosting target \"y\" rounds 40;\n}\n";
        let out = enforce_library_policy(
            src,
            &[
                "boosting".to_string(),
                "imbalanced".to_string(),
                "text_features".to_string(),
                "outlier_tools".to_string(),
            ],
        );
        let program = parse(&out).expect("rewritten program parses");
        assert!(program.model().unwrap().algo == catdb_pipeline::ModelAlgo::RandomForest);
    }

    #[test]
    fn chain_is_byte_identical_at_any_concurrency() {
        let (entry, _, _) = dataset();
        let mut sources = Vec::new();
        for concurrency in [1usize, 2, 8] {
            let llm = SimLlm::new(ModelProfile::gemini_1_5_pro(), 11);
            let cfg = CatDbConfig {
                prompt: PromptOptions { beta: 2, ..Default::default() },
                llm_concurrency: concurrency,
                ..Default::default()
            };
            sources.push(generate_chain_source(&entry, &llm, &cfg).expect("chain succeeds"));
        }
        assert_eq!(sources[0], sources[1], "concurrency 1 vs 2");
        assert_eq!(sources[0], sources[2], "concurrency 1 vs 8");
        assert!(sources[0].contains("model "), "{}", sources[0]);
    }

    #[test]
    fn routed_chain_is_byte_identical_at_any_concurrency() {
        use catdb_llm::{Role, RouteSpec, RoutedLlm};
        let (entry, _, _) = dataset();
        let spec = RouteSpec::parse("refine=llama,generate=gpt-4o,select=gemini,fix=mini")
            .expect("valid spec");
        let mut sources = Vec::new();
        for concurrency in [1usize, 2, 8] {
            let table: Vec<(Role, Arc<dyn LanguageModel>)> = spec
                .resolve(&ModelProfile::gpt_4o())
                .into_iter()
                .map(|(role, profile)| {
                    (role, Arc::new(SimLlm::new(profile, 11)) as Arc<dyn LanguageModel>)
                })
                .collect();
            let llm = RoutedLlm::from_backends(table);
            let cfg = CatDbConfig {
                prompt: PromptOptions { beta: 2, ..Default::default() },
                llm_concurrency: concurrency,
                ..Default::default()
            };
            sources.push(generate_chain_source(&entry, &llm, &cfg).expect("chain succeeds"));
        }
        assert_eq!(sources[0], sources[1], "concurrency 1 vs 2");
        assert_eq!(sources[0], sources[2], "concurrency 1 vs 8");
    }

    #[test]
    fn different_routes_never_share_cache_entries() {
        use catdb_llm::{FaultSpec, RetryPolicy};
        use catdb_llm::{RouteSpec, RoutedLlm};
        let (entry, _, _) = dataset();
        let cache = Arc::new(CompletionCache::new(256));
        let cfg = CatDbConfig {
            prompt: PromptOptions { beta: 2, ..Default::default() },
            llm_cache: Some(cache.clone()),
            ..Default::default()
        };
        let run = |route: &str| {
            let spec = RouteSpec::parse(route).expect("valid spec");
            let llm = RoutedLlm::simulated(
                &ModelProfile::gpt_4o(),
                &spec,
                FaultSpec::none(),
                RetryPolicy::default(),
                cfg.seed,
            );
            let sink = Arc::new(catdb_trace::TraceSink::new());
            let guard = catdb_trace::install(sink.clone());
            let source = generate_chain_source(&entry, &llm, &cfg).expect("chain succeeds");
            drop(guard);
            (source, sink.snapshot())
        };
        let (_, cold) = run("generate=gpt-4o");
        assert_eq!(cold.cache_hit_count(), 0);
        // Same prompts, different routed models: the second route must
        // go upstream for its re-routed roles, not replay the first
        // route's completions.
        let (_, rerouted) = run("generate=gpt-4o,refine=llama,select=llama");
        assert!(rerouted.llm_call_count() > 0, "re-routed roles must miss the cache");
        // A repeat of either route is fully warm.
        let (_, warm) = run("generate=gpt-4o,refine=llama,select=llama");
        assert_eq!(warm.llm_call_count(), 0, "identical route replays from cache");
    }

    #[test]
    fn shared_cache_makes_second_run_free_and_identical() {
        let (entry, _, _) = dataset();
        let cache = Arc::new(CompletionCache::new(256));
        let cfg = CatDbConfig {
            prompt: PromptOptions { beta: 2, ..Default::default() },
            llm_cache: Some(cache.clone()),
            ..Default::default()
        };
        let run = |seed_llm: &SimLlm| {
            let sink = Arc::new(catdb_trace::TraceSink::new());
            let guard = catdb_trace::install(sink.clone());
            let source = generate_chain_source(&entry, seed_llm, &cfg).expect("chain succeeds");
            drop(guard);
            (source, sink.snapshot())
        };
        // One SimLlm across both runs: the second run must not consult it
        // at all (its per-prompt repeat counters would otherwise shift).
        let llm = SimLlm::new(ModelProfile::gemini_1_5_pro(), 11);
        let (cold, cold_trace) = run(&llm);
        let calls_after_cold = llm.call_count();
        let (warm, warm_trace) = run(&llm);
        assert_eq!(cold, warm, "warm cache must replay byte-identically");
        assert_eq!(llm.call_count(), calls_after_cold, "warm run is fully served from cache");
        assert_eq!(cold_trace.cache_hit_count(), 0);
        assert!(warm_trace.cache_hit_count() > 0, "warm run records cache.hit events");
        // Zero additional measured cost: hits emit no LlmCall.
        assert_eq!(warm_trace.llm_call_count(), 0);
        assert_eq!(warm_trace.total_llm_cost(), 0.0);
        assert!(warm_trace.counters["cache.hit"] > 0.0);
        assert!(cache.stats().hits > 0);
    }

    #[test]
    fn recurring_fix_prompts_short_circuit_through_the_cache() {
        let (entry, train, test) = dataset();
        // Fixes always fail to change anything meaningful at quality 0:
        // the same (source, error) pair recurs until attempts run out.
        let profile = ModelProfile {
            semantic_fault_rate: 1.0,
            syntax_fault_rate: 0.0,
            env_fault_rate: 0.0,
            fix_skill: 0.0,
            ..ModelProfile::llama3_1_70b()
        };
        let llm = SimLlm::new(profile, 23);
        let cfg = CatDbConfig { use_knowledge_base: false, ..Default::default() };
        let outcome = generate_pipeline(&entry, &train, &test, &llm, &cfg);
        let cached_fixes =
            outcome.traces.iter().filter(|t| t.fixed_by == FixedBy::CachedLlmFix).count();
        let llm_fixes =
            outcome.traces.iter().filter(|t| t.fixed_by == FixedBy::LlmResubmission).count();
        assert!(
            cached_fixes > 0,
            "identical (source, error) re-prompts must be served from cache; traces: {:?}",
            outcome.traces
        );
        assert!(llm_fixes > 0, "the first occurrence still goes upstream");
    }

    #[test]
    fn referenced_columns_extracts_known_names() {
        let (entry, _, _) = dataset();
        let cols = referenced_columns(&entry, "column 'age' not found, also 'bogus' and 'city'");
        assert_eq!(cols, vec!["age".to_string(), "city".to_string()]);
    }
}

//! Metadata projection and rule definition — paper Algorithm 2 and the
//! Table 1 metadata combinations.
//!
//! Prompts consist of **S** (schema & metadata lines, filtered/projected
//! per a [`MetadataConfig`]) and **R** (rules derived from the data
//! characteristics: imputation when columns have missing values,
//! rebalancing when labels are imbalanced, augmentation for small
//! datasets, encoding / selection / model-selection guidance).

use catdb_catalog::CatalogEntry;
use catdb_ml::TaskKind;
use catdb_profiler::{ColumnProfile, FeatureType};

/// Which data-profiling items go into the schema lines — the columns of
/// paper Table 1. Schema (names + types) is always present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetadataConfig {
    pub distinct_count: bool,
    pub missing_frequency: bool,
    pub statistics: bool,
    pub categorical_values: bool,
    pub user_description: bool,
    /// Refined ML feature types (always on for CatDB proper; off models a
    /// catalog without refinement).
    pub feature_types: bool,
}

impl MetadataConfig {
    /// Table 1's combination `#n` (1–11). User description defaults off;
    /// toggle it separately.
    pub fn combination(n: usize) -> MetadataConfig {
        let base = MetadataConfig {
            distinct_count: false,
            missing_frequency: false,
            statistics: false,
            categorical_values: false,
            user_description: false,
            feature_types: true,
        };
        match n {
            1 => base,
            2 => MetadataConfig { distinct_count: true, ..base },
            3 => MetadataConfig { missing_frequency: true, ..base },
            4 => MetadataConfig { statistics: true, ..base },
            5 => MetadataConfig { categorical_values: true, ..base },
            6 => MetadataConfig { distinct_count: true, missing_frequency: true, ..base },
            7 => MetadataConfig { distinct_count: true, statistics: true, ..base },
            8 => MetadataConfig { missing_frequency: true, statistics: true, ..base },
            9 => MetadataConfig { missing_frequency: true, categorical_values: true, ..base },
            10 => MetadataConfig { statistics: true, categorical_values: true, ..base },
            _ => MetadataConfig::full(),
        }
    }

    /// Combination #11: everything (CatDB's default).
    pub fn full() -> MetadataConfig {
        MetadataConfig {
            distinct_count: true,
            missing_frequency: true,
            statistics: true,
            categorical_values: true,
            user_description: false,
            feature_types: true,
        }
    }
}

impl Default for MetadataConfig {
    fn default() -> Self {
        MetadataConfig::full()
    }
}

/// Render one column's schema line (`col name="…" …`) under the config.
pub fn schema_line(col: &ColumnProfile, entry: &CatalogEntry, cfg: &MetadataConfig) -> String {
    let mut line = format!("col name=\"{}\" type=\"{}\"", col.name, col.data_type.name());
    if cfg.feature_types {
        line.push_str(&format!(" feature=\"{}\"", col.feature_type.label()));
        if col.feature_type == FeatureType::List {
            line.push_str(" sep=\",\"");
        }
    }
    if cfg.distinct_count {
        line.push_str(&format!(
            " distinct=\"{:.4}\" distinct_count=\"{}\"",
            col.distinct_percentage, col.distinct_count
        ));
    }
    if cfg.missing_frequency {
        line.push_str(&format!(" missing=\"{:.4}\"", col.missing_percentage));
    }
    if cfg.statistics {
        if let Some(stats) = &col.statistics {
            line.push_str(&format!(
                " min=\"{}\" max=\"{}\" median=\"{}\"",
                stats.min, stats.max, stats.median
            ));
        }
    }
    if cfg.categorical_values && col.is_categorical() {
        let rendered = col
            .samples
            .iter()
            .take(24)
            .map(|s| s.replace('"', "'").replace('|', "/"))
            .collect::<Vec<_>>()
            .join("|");
        line.push_str(&format!(" values=\"{rendered}\""));
    }
    // Correlation with the target helps top-K selection downstream.
    if let Some((_, corr)) = col.correlations.iter().find(|(n, _)| n == &entry.target) {
        line.push_str(&format!(" corr_target=\"{corr:.3}\""));
    }
    line
}

/// Is the classification target imbalanced enough to warrant rebalancing?
/// (majority class holds over 1.5× its fair share).
pub fn labels_imbalanced(entry: &CatalogEntry) -> bool {
    if !entry.task_kind().is_classification() {
        return false;
    }
    let Some(target) = entry.column(&entry.target) else { return false };
    let n_classes = target.distinct_count.max(2) as f64;
    target.top_value_ratio > (1.5 / n_classes).min(0.95)
}

/// Algorithm 2's rule derivation: returns `rule <stage> <name> …` lines.
pub fn derive_rules(entry: &CatalogEntry, cols: &[&ColumnProfile]) -> Vec<String> {
    let mut rules = Vec::new();
    let task = entry.task_kind();

    // --- Data preparation rules ---
    if cols.iter().any(|c| c.missing_count > 0) {
        rules.push("rule preprocessing impute_missing".to_string());
    }
    if cols.iter().any(|c| c.distinct_count <= 1) {
        rules.push("rule preprocessing drop_constant".to_string());
    }
    if cols.iter().any(|c| c.missing_percentage > 0.9) {
        rules.push("rule preprocessing drop_high_missing".to_string());
    }
    // Outlier guidance: a numeric column whose max is far outside the bulk.
    let has_outliers = cols.iter().any(|c| {
        c.statistics
            .as_ref()
            .map(|s| s.std > 1e-12 && (s.max - s.mean) / s.std > 4.0)
            .unwrap_or(false)
    });
    if has_outliers {
        rules.push("rule preprocessing outlier_removal".to_string());
    }
    // --- Data augmentation rules (small or imbalanced data) ---
    if labels_imbalanced(entry) {
        rules.push("rule preprocessing rebalance".to_string());
    } else if entry.profile.n_rows < 600 {
        rules.push("rule preprocessing augmentation".to_string());
    }

    // --- Feature engineering rules ---
    if cols.iter().any(|c| {
        matches!(
            c.feature_type,
            FeatureType::Categorical | FeatureType::Sentence | FeatureType::List
        )
    }) {
        rules.push("rule fe encode_categorical".to_string());
    }
    // Normalization guidance when numeric scales are wildly different.
    let scales: Vec<f64> = cols
        .iter()
        .filter_map(|c| c.statistics.as_ref())
        .map(|s| (s.max - s.min).abs().max(1e-12))
        .collect();
    if let (Some(max), Some(min)) =
        (scales.iter().cloned().reduce(f64::max), scales.iter().cloned().reduce(f64::min))
    {
        if max / min > 1e3 {
            rules.push("rule fe normalize".to_string());
        }
    }
    if cols.len() > 64 {
        rules.push(format!("rule fe feature_selection k=\"{}\"", (cols.len() / 2).max(32)));
    }

    // --- Model selection rules ---
    let mut model_rule = "rule model model_selection".to_string();
    if task == TaskKind::Regression {
        model_rule.push_str(" task=\"regression\"");
    } else {
        model_rule.push_str(" task=\"classification\"");
    }
    rules.push(model_rule);
    rules.push("rule model multithreading".to_string());
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdb_profiler::{profile_table, ProfileOptions};
    use catdb_table::{Column, Table};

    fn entry_with(table: &Table, target: &str, task: TaskKind) -> CatalogEntry {
        let profile = profile_table("t", table, &ProfileOptions::default());
        CatalogEntry::new("t", target, task, profile)
    }

    fn imbalanced_table() -> Table {
        let n = 1000;
        let y: Vec<&str> = (0..n).map(|i| if i % 10 == 0 { "pos" } else { "neg" }).collect();
        let x: Vec<Option<f64>> =
            (0..n).map(|i| if i % 11 == 0 { None } else { Some(i as f64) }).collect();
        let c: Vec<&str> = (0..n).map(|i| ["a", "b", "c"][i % 3]).collect();
        Table::from_columns(vec![
            ("x", Column::Float(x)),
            ("cat", Column::from_strings(c)),
            ("y", Column::from_strings(y)),
        ])
        .unwrap()
    }

    #[test]
    fn combinations_match_table_1() {
        let c1 = MetadataConfig::combination(1);
        assert!(!c1.distinct_count && !c1.missing_frequency && !c1.statistics);
        let c6 = MetadataConfig::combination(6);
        assert!(c6.distinct_count && c6.missing_frequency && !c6.statistics);
        let c11 = MetadataConfig::combination(11);
        assert!(
            c11.distinct_count && c11.missing_frequency && c11.statistics && c11.categorical_values
        );
    }

    #[test]
    fn schema_line_respects_config() {
        let t = imbalanced_table();
        let entry = entry_with(&t, "y", TaskKind::BinaryClassification);
        let col = entry.column("x").unwrap();
        let bare = schema_line(col, &entry, &MetadataConfig::combination(1));
        assert!(!bare.contains("missing="));
        assert!(!bare.contains("min="));
        let full = schema_line(col, &entry, &MetadataConfig::full());
        assert!(full.contains("missing="));
        assert!(full.contains("min="));
        let cat = entry.column("cat").unwrap();
        let cat_line = schema_line(cat, &entry, &MetadataConfig::full());
        assert!(cat_line.contains("values=\"a|b|c\""), "{cat_line}");
    }

    #[test]
    fn rules_react_to_data_characteristics() {
        let t = imbalanced_table();
        let entry = entry_with(&t, "y", TaskKind::BinaryClassification);
        let cols: Vec<&ColumnProfile> = entry.feature_columns().collect();
        let rules = derive_rules(&entry, &cols);
        assert!(rules.iter().any(|r| r.contains("impute_missing")), "{rules:?}");
        assert!(rules.iter().any(|r| r.contains("rebalance")), "{rules:?}");
        assert!(rules.iter().any(|r| r.contains("encode_categorical")), "{rules:?}");
        assert!(rules.iter().any(|r| r.contains("model_selection")), "{rules:?}");
    }

    #[test]
    fn clean_balanced_data_has_fewer_rules() {
        let n = 1000;
        let t = Table::from_columns(vec![
            ("x", Column::from_f64((0..n).map(|i| i as f64).collect())),
            (
                "y",
                Column::from_strings(
                    (0..n).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect::<Vec<_>>(),
                ),
            ),
        ])
        .unwrap();
        let entry = entry_with(&t, "y", TaskKind::BinaryClassification);
        let cols: Vec<&ColumnProfile> = entry.feature_columns().collect();
        let rules = derive_rules(&entry, &cols);
        assert!(!rules.iter().any(|r| r.contains("impute_missing")));
        assert!(!rules.iter().any(|r| r.contains("rebalance")));
    }

    #[test]
    fn small_dataset_triggers_augmentation_rule() {
        let t = Table::from_columns(vec![
            ("x", Column::from_f64((0..100).map(f64::from).collect())),
            (
                "y",
                Column::from_strings(
                    (0..100).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect::<Vec<_>>(),
                ),
            ),
        ])
        .unwrap();
        let entry = entry_with(&t, "y", TaskKind::BinaryClassification);
        let cols: Vec<&ColumnProfile> = entry.feature_columns().collect();
        let rules = derive_rules(&entry, &cols);
        assert!(rules.iter().any(|r| r.contains("augmentation")), "{rules:?}");
    }

    #[test]
    fn regression_targets_are_never_imbalanced() {
        let t = Table::from_columns(vec![
            ("x", Column::from_f64(vec![1.0, 2.0])),
            ("y", Column::from_f64(vec![1.0, 1.0])),
        ])
        .unwrap();
        let entry = entry_with(&t, "y", TaskKind::Regression);
        assert!(!labels_imbalanced(&entry));
    }
}

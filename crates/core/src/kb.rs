//! The CatDB knowledge base and the error-trace dataset.
//!
//! The KB API is the cost-free local correction channel (Figure 7):
//! environment/package errors are fixed by installing or reinstalling
//! packages; transient environment failures resolve on retry; syntax
//! errors get a local AST-level cleanup before any LLM resubmission. All
//! error occurrences are recorded as traces — the "substantial error
//! traces dataset" behind Table 2 and Figure 8.

use catdb_llm::clean_pipeline_syntax;
use catdb_pipeline::{Environment, ErrorCategory, ErrorKind, PipelineError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How an error occurrence was ultimately resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FixedBy {
    KnowledgeBase,
    LocalSyntaxCleanup,
    LlmResubmission,
    /// An identical (source, error) pair recurred within one session and
    /// the fix was replayed from the completion cache — no upstream call.
    CachedLlmFix,
    Handcrafted,
    Unfixed,
}

/// One recorded error occurrence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorTrace {
    pub dataset: String,
    pub llm: String,
    pub kind: ErrorKind,
    pub category: ErrorCategory,
    pub attempt: usize,
    pub fixed_by: FixedBy,
}

/// The error-trace dataset (Table 2 / Figure 8).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ErrorTraceDb {
    traces: Vec<ErrorTrace>,
}

impl ErrorTraceDb {
    pub fn record(&mut self, trace: ErrorTrace) {
        self.traces.push(trace);
    }

    pub fn extend(&mut self, traces: impl IntoIterator<Item = ErrorTrace>) {
        self.traces.extend(traces);
    }

    pub fn len(&self) -> usize {
        self.traces.len()
    }

    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    pub fn traces(&self) -> &[ErrorTrace] {
        &self.traces
    }

    /// Table 2's row for one LLM: (total, KB %, SE %, RE %).
    pub fn category_distribution(&self, llm: &str) -> (usize, f64, f64, f64) {
        let relevant: Vec<&ErrorTrace> = self.traces.iter().filter(|t| t.llm == llm).collect();
        let total = relevant.len();
        if total == 0 {
            return (0, 0.0, 0.0, 0.0);
        }
        let pct = |cat: ErrorCategory| {
            relevant.iter().filter(|t| t.category == cat).count() as f64 / total as f64 * 100.0
        };
        (
            total,
            pct(ErrorCategory::KnowledgeBase),
            pct(ErrorCategory::Syntax),
            pct(ErrorCategory::Runtime),
        )
    }

    /// Figure 8's per-kind occurrence counts, all LLMs combined.
    pub fn kind_distribution(&self) -> BTreeMap<ErrorKind, usize> {
        let mut out = BTreeMap::new();
        for t in &self.traces {
            *out.entry(t.kind).or_insert(0) += 1;
        }
        out
    }
}

/// A local fix the knowledge base performed.
#[derive(Debug, Clone, PartialEq)]
pub enum KbFix {
    /// A package was installed / reinstalled; re-run the same pipeline.
    EnvironmentRepaired { package: String },
    /// Transient failure; re-run the same pipeline.
    Retry,
    /// Syntax locally cleaned; here is the new source.
    CleanedSource(String),
    /// The KB has no local remedy; escalate to the LLM.
    NotFixable,
}

/// The knowledge-base API.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase;

impl KnowledgeBase {
    /// Attempt a local, LLM-free fix.
    pub fn try_fix(&self, error: &PipelineError, source: &str, env: &mut Environment) -> KbFix {
        match error.kind.category() {
            ErrorCategory::KnowledgeBase => match error.kind {
                ErrorKind::MissingPackage => {
                    // "No module named 'x'" / "package 'x' not found".
                    let Some(pkg) = quoted_entity(&error.message) else {
                        return KbFix::NotFixable;
                    };
                    match env.install(&pkg) {
                        Ok(()) => KbFix::EnvironmentRepaired { package: pkg },
                        Err(_) => KbFix::NotFixable, // hallucinated package → LLM
                    }
                }
                ErrorKind::PackageVersionMismatch => {
                    let Some(pkg) = quoted_entity(&error.message) else {
                        return KbFix::NotFixable;
                    };
                    match env.reinstall_latest(&pkg) {
                        // Reinstalling does not satisfy a stale pin in the
                        // code itself; strip pins locally too.
                        Ok(()) => KbFix::CleanedSource(strip_version_pins(source)),
                        Err(_) => KbFix::NotFixable,
                    }
                }
                // Transient environment conditions clear on retry.
                ErrorKind::EnvironmentPathError
                | ErrorKind::PermissionDenied
                | ErrorKind::ResourceTemporarilyUnavailable
                | ErrorKind::MissingSystemDependency => KbFix::Retry,
                _ => KbFix::NotFixable,
            },
            ErrorCategory::Syntax => {
                // Local AST-style cleanup (uncommented text, missing
                // semicolons, indentation) — "typically fixed in one
                // iteration".
                let cleaned = clean_pipeline_syntax(source);
                if cleaned != source {
                    KbFix::CleanedSource(cleaned)
                } else {
                    KbFix::NotFixable
                }
            }
            ErrorCategory::Runtime => KbFix::NotFixable,
        }
    }
}

/// First single-quoted entity in an error message.
fn quoted_entity(message: &str) -> Option<String> {
    let open = message.find('\'')?;
    let close = message[open + 1..].find('\'')?;
    Some(message[open + 1..open + 1 + close].to_string())
}

/// Remove `==version` pins from require statements.
fn strip_version_pins(source: &str) -> String {
    source
        .lines()
        .map(|l| {
            if l.trim_start().starts_with("require") && l.contains("==") {
                if let (Some(start), Some(end)) = (l.find("=="), l.rfind('"')) {
                    if start < end {
                        let mut s = l.to_string();
                        s.replace_range(start..end, "");
                        return s;
                    }
                }
            }
            l.to_string()
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn installs_missing_packages() {
        let kb = KnowledgeBase;
        let mut env = Environment::default();
        let err = PipelineError::new(ErrorKind::MissingPackage, "No module named 'boosting'");
        let fix = kb.try_fix(&err, "pipeline {\n}\n", &mut env);
        assert_eq!(fix, KbFix::EnvironmentRepaired { package: "boosting".into() });
        assert!(env.is_installed("boosting"));
    }

    #[test]
    fn hallucinated_package_escalates() {
        let kb = KnowledgeBase;
        let mut env = Environment::default();
        let err = PipelineError::new(ErrorKind::MissingPackage, "No module named 'magic_automl'");
        assert_eq!(kb.try_fix(&err, "", &mut env), KbFix::NotFixable);
    }

    #[test]
    fn version_pin_is_stripped_and_reinstalled() {
        let kb = KnowledgeBase;
        let mut env = Environment::default();
        let err = PipelineError::new(
            ErrorKind::PackageVersionMismatch,
            "package 'models' 1.2.0 installed but 0.9.0 required",
        );
        let src = "pipeline {\n  require \"models==0.9.0\";\n}\n";
        match kb.try_fix(&err, src, &mut env) {
            KbFix::CleanedSource(s) => assert!(s.contains("require \"models\";"), "{s}"),
            other => panic!("unexpected fix {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_get_local_cleanup() {
        let kb = KnowledgeBase;
        let mut env = Environment::default();
        let err = PipelineError::new(ErrorKind::StrayProse, "unexpected text");
        let src = "Sure! Here's the pipeline:\npipeline {\n  drop_constant;\n}\n";
        match kb.try_fix(&err, src, &mut env) {
            KbFix::CleanedSource(s) => assert!(!s.contains("Sure!")),
            other => panic!("unexpected fix {other:?}"),
        }
    }

    #[test]
    fn runtime_errors_escalate_to_llm() {
        let kb = KnowledgeBase;
        let mut env = Environment::default();
        let err = PipelineError::new(ErrorKind::NanInFeatures, "input contains NaN");
        assert_eq!(kb.try_fix(&err, "", &mut env), KbFix::NotFixable);
    }

    #[test]
    fn trace_db_distributions() {
        let mut db = ErrorTraceDb::default();
        for (kind, n) in [
            (ErrorKind::NanInFeatures, 8),
            (ErrorKind::MissingPackage, 1),
            (ErrorKind::MissingSemicolon, 1),
        ] {
            for i in 0..n {
                db.record(ErrorTrace {
                    dataset: "d".into(),
                    llm: "llama3.1-70b".into(),
                    kind,
                    category: kind.category(),
                    attempt: i,
                    fixed_by: FixedBy::LlmResubmission,
                });
            }
        }
        let (total, kb_pct, se_pct, re_pct) = db.category_distribution("llama3.1-70b");
        assert_eq!(total, 10);
        assert_eq!(kb_pct, 10.0);
        assert_eq!(se_pct, 10.0);
        assert_eq!(re_pct, 80.0);
        assert_eq!(db.kind_distribution()[&ErrorKind::NanInFeatures], 8);
        let (none, _, _, _) = db.category_distribution("gpt-4o");
        assert_eq!(none, 0);
    }
}

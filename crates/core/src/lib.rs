//! # catdb-core — CatDB: data-catalog-guided, LLM-based pipeline generation
//!
//! The paper's primary contribution, assembled from the substrate crates:
//!
//! * [`rules`] — metadata projection (Table 1 combinations) and rule
//!   derivation (Algorithm 2).
//! * [`prompt`] — single-prompt and chain prompt construction
//!   (Algorithm 3, Figure 6) plus error-prompt templates (Figure 7).
//! * [`generate`] — the generation + validation loop with knowledge-base
//!   and LLM error management and the handcrafted fallback (Algorithm 4).
//! * [`kb`] — the knowledge base and the error-trace dataset behind
//!   Table 2 / Figure 8.
//! * [`cost`] — the token cost model (Equations 1–2).
//! * [`api`] — the paper's user API: `catdb_collect` / `catdb_pipgen`.
//!
//! ```no_run
//! use catdb_core::{catdb_collect, catdb_pipgen, CatDbConfig, CollectOptions};
//! use catdb_catalog::MultiTableDataset;
//! use catdb_llm::{ModelProfile, SimLlm};
//! use catdb_ml::TaskKind;
//! use catdb_table::{read_csv_path, CsvOptions};
//!
//! let table = read_csv_path("salary.csv", &CsvOptions::default()).unwrap();
//! let dataset = MultiTableDataset::single("salary", table);
//! let llm = SimLlm::new(ModelProfile::gpt_4o(), 42);
//! let opts = CollectOptions { refine: true, ..Default::default() };
//! let (entry, prepared, _report) =
//!     catdb_collect(&dataset, "income", TaskKind::Regression, &llm, &opts).unwrap();
//! let result = catdb_pipgen(&entry, &prepared, &llm, &CatDbConfig::default()).unwrap();
//! println!("{}", result.code);
//! ```

pub mod api;
pub mod cost;
pub mod generate;
pub mod kb;
pub mod prompt;
pub mod rules;

pub use api::{catdb_collect, catdb_pipgen, CollectOptions, PipgenResult};
pub use cost::{measured_cost, reprice, MeasuredCost};
pub use generate::{
    generate_chain_source, generate_pipeline, handcraft_program, CatDbConfig, GenerationOutcome,
};
pub use kb::{ErrorTrace, ErrorTraceDb, FixedBy, KbFix, KnowledgeBase};
pub use prompt::{PromptBuilder, PromptOptions};
pub use rules::{derive_rules, labels_imbalanced, schema_line, MetadataConfig};

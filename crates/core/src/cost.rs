//! The token cost model of Section 4.1 (Equations 1 and 2).
//!
//! `C(P_p, P_e, γ, τ₂) = γ·L(P_p) + Σᵢ Σⱼ L(P_eᵢⱼ)` for single-prompt
//! CatDB, and the chain variant adds per-chunk pre-processing and
//! feature-engineering prompt costs. These are *predictions* from prompt
//! sizes; actual measured usage lives in [`catdb_llm::CostLedger`].

/// Eq. 1 — predicted cost of single-prompt CatDB.
///
/// * `pipeline_prompt_tokens` — `L(P_p)`.
/// * `error_prompt_tokens[i][j]` — `L(P_eᵢⱼ)` for interaction `i`,
///   correction attempt `j` (ragged; attempts vary per interaction).
pub fn single_prompt_cost(
    pipeline_prompt_tokens: usize,
    gamma: usize,
    error_prompt_tokens: &[Vec<usize>],
) -> usize {
    let base = gamma * pipeline_prompt_tokens;
    let fixes: usize = error_prompt_tokens.iter().flatten().sum();
    base + fixes
}

/// Eq. 2 — predicted cost of CatDB Chain: the model-selection prompt cost
/// plus, for each of the β chunks, the pre-processing and feature-
/// engineering prompt costs (each with their own error-handling terms).
pub struct ChainStageCost {
    pub prompt_tokens: usize,
    pub gamma: usize,
    pub error_prompt_tokens: Vec<Vec<usize>>,
}

impl ChainStageCost {
    pub fn cost(&self) -> usize {
        single_prompt_cost(self.prompt_tokens, self.gamma, &self.error_prompt_tokens)
    }
}

pub fn chain_cost(
    model_selection: &ChainStageCost,
    preprocessing: &[ChainStageCost],
    feature_engineering: &[ChainStageCost],
) -> usize {
    model_selection.cost()
        + preprocessing.iter().map(|s| s.cost()).sum::<usize>()
        + feature_engineering.iter().map(|s| s.cost()).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_sums_interactions_and_fixes() {
        // γ=2 interactions at 100 tokens, with fixes of 10+20 and 5.
        let cost = single_prompt_cost(100, 2, &[vec![10, 20], vec![5]]);
        assert_eq!(cost, 235);
        assert_eq!(single_prompt_cost(100, 1, &[]), 100);
    }

    #[test]
    fn eq2_adds_stage_costs() {
        let stage = |p: usize| ChainStageCost {
            prompt_tokens: p,
            gamma: 1,
            error_prompt_tokens: vec![],
        };
        let total = chain_cost(&stage(50), &[stage(30), stage(30)], &[stage(40), stage(40)]);
        assert_eq!(total, 190);
    }

    #[test]
    fn chain_costs_exceed_single_for_same_content() {
        // The chain re-sends context per stage, so with equal per-prompt
        // sizes and more prompts it always costs at least as much.
        let single = single_prompt_cost(120, 1, &[]);
        let stage = |p: usize| ChainStageCost {
            prompt_tokens: p,
            gamma: 1,
            error_prompt_tokens: vec![],
        };
        let chain = chain_cost(&stage(120), &[stage(80)], &[stage(80)]);
        assert!(chain > single);
    }
}

//! The token cost model of Section 4.1 (Equations 1 and 2).
//!
//! `C(P_p, P_e, γ, τ₂) = γ·L(P_p) + Σᵢ Σⱼ L(P_eᵢⱼ)` for single-prompt
//! CatDB, and the chain variant adds per-chunk pre-processing and
//! feature-engineering prompt costs. These are *predictions* from prompt
//! sizes; actual measured usage lives in [`catdb_llm::CostLedger`].

/// Eq. 1 — predicted cost of single-prompt CatDB.
///
/// * `pipeline_prompt_tokens` — `L(P_p)`.
/// * `error_prompt_tokens[i][j]` — `L(P_eᵢⱼ)` for interaction `i`,
///   correction attempt `j` (ragged; attempts vary per interaction).
pub fn single_prompt_cost(
    pipeline_prompt_tokens: usize,
    gamma: usize,
    error_prompt_tokens: &[Vec<usize>],
) -> usize {
    let base = gamma * pipeline_prompt_tokens;
    let fixes: usize = error_prompt_tokens.iter().flatten().sum();
    base + fixes
}

/// Eq. 2 — predicted cost of CatDB Chain: the model-selection prompt cost
/// plus, for each of the β chunks, the pre-processing and feature-
/// engineering prompt costs (each with their own error-handling terms).
pub struct ChainStageCost {
    pub prompt_tokens: usize,
    pub gamma: usize,
    pub error_prompt_tokens: Vec<Vec<usize>>,
}

impl ChainStageCost {
    pub fn cost(&self) -> usize {
        single_prompt_cost(self.prompt_tokens, self.gamma, &self.error_prompt_tokens)
    }
}

pub fn chain_cost(
    model_selection: &ChainStageCost,
    preprocessing: &[ChainStageCost],
    feature_engineering: &[ChainStageCost],
) -> usize {
    model_selection.cost()
        + preprocessing.iter().map(|s| s.cost()).sum::<usize>()
        + feature_engineering.iter().map(|s| s.cost()).sum::<usize>()
}

// ---------------------------------------------------------------------------
// Trace-derived measured cost (the observability counterpart of Eqs. 1–2).
// ---------------------------------------------------------------------------

/// Measured dollar/token usage aggregated from a recorded trace.
///
/// Transport retries are real spend: the `input_tokens` and `usd` totals
/// include the wasted prompt tokens/dollars of failed attempts recorded
/// as `LlmRetry` events, alongside every served `LlmCall`.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredCost {
    pub input_tokens: usize,
    pub output_tokens: usize,
    pub usd: f64,
    pub llm_calls: usize,
    /// Failed transport attempts (retried or abandoned).
    pub retries: usize,
    /// Prompt tokens consumed by failed attempts (included in
    /// `input_tokens`).
    pub retry_tokens: usize,
    /// Dollars consumed by failed attempts (included in `usd`).
    pub retry_usd: f64,
    /// Requests served from the completion cache (or coalesced onto an
    /// in-flight duplicate). Billed at zero: these never contribute to
    /// `input_tokens`, `output_tokens`, or `usd`.
    pub cache_hits: usize,
    /// Tokens the cache avoided re-spending (NOT included in the token
    /// totals above — this is the counterfactual upstream usage).
    pub cache_saved_tokens: usize,
    /// Dollars the cache avoided re-spending (NOT included in `usd`).
    pub cache_saved_usd: f64,
}

impl MeasuredCost {
    pub fn total_tokens(&self) -> usize {
        self.input_tokens + self.output_tokens
    }

    /// Fraction of the dollar total burned on failed attempts — the
    /// cost-overhead metric of the fig14 fault sweep.
    pub fn retry_overhead(&self) -> f64 {
        if self.usd <= 0.0 {
            0.0
        } else {
            self.retry_usd / self.usd
        }
    }
}

/// Sum every `LlmCall` and `LlmRetry` event in the trace into one
/// measured total.
pub fn measured_cost(trace: &catdb_trace::Trace) -> MeasuredCost {
    let (input_tokens, output_tokens) = trace.total_llm_tokens();
    let retry_tokens = trace.retry_tokens();
    let retry_usd = trace.retry_cost();
    MeasuredCost {
        input_tokens: input_tokens + retry_tokens,
        output_tokens,
        usd: trace.total_llm_cost() + retry_usd,
        llm_calls: trace.llm_call_count(),
        retries: trace.llm_retry_count(),
        retry_tokens,
        retry_usd,
        cache_hits: trace.cache_hit_count(),
        cache_saved_tokens: trace.cache_saved_tokens(),
        cache_saved_usd: trace.cache_saved_cost(),
    }
}

/// Re-price a trace's calls under a given model profile. Since the
/// simulator stamps each `LlmCall` with its profile's own pricing at
/// emission time, re-deriving the dollar total from the recorded token
/// counts must reproduce `Trace::total_llm_cost` exactly when the same
/// profile served all calls — the consistency the cost tests pin down.
pub fn reprice(trace: &catdb_trace::Trace, profile: &catdb_llm::ModelProfile) -> f64 {
    trace
        .events_modulo_timing()
        .iter()
        .map(|e| match e {
            catdb_trace::TraceEvent::LlmCall { prompt_tokens, completion_tokens, .. } => {
                profile.cost_usd(*prompt_tokens, *completion_tokens)
            }
            _ => 0.0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_sums_interactions_and_fixes() {
        // γ=2 interactions at 100 tokens, with fixes of 10+20 and 5.
        let cost = single_prompt_cost(100, 2, &[vec![10, 20], vec![5]]);
        assert_eq!(cost, 235);
        assert_eq!(single_prompt_cost(100, 1, &[]), 100);
    }

    #[test]
    fn eq2_adds_stage_costs() {
        let stage =
            |p: usize| ChainStageCost { prompt_tokens: p, gamma: 1, error_prompt_tokens: vec![] };
        let total = chain_cost(&stage(50), &[stage(30), stage(30)], &[stage(40), stage(40)]);
        assert_eq!(total, 190);
    }

    #[test]
    fn chain_costs_exceed_single_for_same_content() {
        // The chain re-sends context per stage, so with equal per-prompt
        // sizes and more prompts it always costs at least as much.
        let single = single_prompt_cost(120, 1, &[]);
        let stage =
            |p: usize| ChainStageCost { prompt_tokens: p, gamma: 1, error_prompt_tokens: vec![] };
        let chain = chain_cost(&stage(120), &[stage(80)], &[stage(80)]);
        assert!(chain > single);
    }

    use catdb_llm::{LanguageModel, ModelProfile, Prompt, SimLlm};
    use std::sync::Arc;

    fn traced_sim_run(profile: ModelProfile) -> catdb_trace::Trace {
        let sink = Arc::new(catdb_trace::TraceSink::new());
        let _guard = catdb_trace::install(sink.clone());
        let llm = SimLlm::new(profile, 9);
        let prompt = Prompt::new(
            "You are a data science assistant.",
            "<TASK>pipeline_generation</TASK>\n\
             <DATASET name=\"toy\" rows=\"300\" target=\"y\" task=\"binary_classification\" />\n\
             <SCHEMA>\n\
             col name=\"a\" type=\"float\" feature=\"numerical\" missing=\"0.1\"\n\
             col name=\"y\" type=\"string\" feature=\"categorical\" distinct_count=\"2\"\n\
             </SCHEMA>",
        );
        for _ in 0..4 {
            llm.complete(&prompt).expect("completion");
        }
        sink.snapshot()
    }

    #[test]
    fn trace_cost_matches_model_pricing_for_all_paper_models() {
        for profile in ModelProfile::paper_models() {
            let trace = traced_sim_run(profile.clone());
            let measured = measured_cost(&trace);
            assert_eq!(measured.llm_calls, 4, "{}", profile.name);
            assert!(measured.input_tokens > 0 && measured.output_tokens > 0);

            // The dollar total recorded in the trace equals re-pricing the
            // recorded token counts with the profile's per-1k rates.
            let expected = profile.cost_usd(measured.input_tokens, measured.output_tokens);
            assert!(
                (measured.usd - expected).abs() < 1e-12,
                "{}: trace {:.8} vs pricing {:.8}",
                profile.name,
                measured.usd,
                expected
            );
            assert!((reprice(&trace, &profile) - measured.usd).abs() < 1e-12);
        }
    }

    #[test]
    fn measured_cost_includes_retry_waste() {
        let sink = Arc::new(catdb_trace::TraceSink::new());
        let _guard = catdb_trace::install(sink.clone());
        let profile = ModelProfile::gpt_4o();
        // One served call…
        let llm = SimLlm::new(profile.clone(), 4);
        let prompt = Prompt::new("sys", "<TASK>pipeline_generation</TASK>");
        llm.complete(&prompt).expect("completion");
        // …plus two failed attempts recorded by a resilient client.
        for attempt in 1..=2usize {
            catdb_trace::emit(catdb_trace::TraceEvent::LlmRetry {
                model: profile.name.clone(),
                attempt,
                error: "service_unavailable".into(),
                backoff_seconds: 1.0,
                prompt_tokens: 200,
                cost: profile.cost_usd(200, 0),
            });
        }
        let trace = sink.snapshot();
        let measured = measured_cost(&trace);
        assert_eq!(measured.retries, 2);
        assert_eq!(measured.retry_tokens, 400);
        let (served_in, _) = trace.total_llm_tokens();
        assert_eq!(measured.input_tokens, served_in + 400);
        let expected_retry_usd = 2.0 * profile.cost_usd(200, 0);
        assert!((measured.retry_usd - expected_retry_usd).abs() < 1e-12);
        assert!((measured.usd - (trace.total_llm_cost() + expected_retry_usd)).abs() < 1e-12);
        assert!(measured.retry_overhead() > 0.0 && measured.retry_overhead() < 1.0);
    }

    #[test]
    fn cache_hits_are_reported_but_billed_at_zero() {
        let sink = Arc::new(catdb_trace::TraceSink::new());
        let _guard = catdb_trace::install(sink.clone());
        let llm = SimLlm::new(ModelProfile::gpt_4o(), 4);
        let sched =
            catdb_sched::LlmScheduler::new(&llm, Arc::new(catdb_sched::CompletionCache::new(64)));
        let prompt = Prompt::new("sys", "<TASK>pipeline_generation</TASK>");
        let first = sched.complete(&prompt).expect("upstream completion");
        let billed = measured_cost(&sink.snapshot());
        // Three repeats: all served from the cache, zero extra spend.
        for _ in 0..3 {
            assert_eq!(sched.complete(&prompt).expect("cached completion").text, first.text);
        }
        let measured = measured_cost(&sink.snapshot());
        assert_eq!(measured.cache_hits, 3);
        assert_eq!(measured.llm_calls, 1);
        assert_eq!(measured.input_tokens, billed.input_tokens);
        assert_eq!(measured.output_tokens, billed.output_tokens);
        assert!((measured.usd - billed.usd).abs() < 1e-15, "hits must not add cost");
        // The savings figure reflects the counterfactual re-spend.
        assert_eq!(measured.cache_saved_tokens, 3 * billed.total_tokens());
        assert!((measured.cache_saved_usd - 3.0 * billed.usd).abs() < 1e-12);
    }

    #[test]
    fn pricing_ordering_matches_the_real_apis() {
        // Per-token, GPT-4o is the most expensive of the three and the
        // Llama endpoint the cheapest; equal token usage must preserve
        // that ordering in dollars.
        let gpt = ModelProfile::gpt_4o().cost_usd(10_000, 2_000);
        let gem = ModelProfile::gemini_1_5_pro().cost_usd(10_000, 2_000);
        let llama = ModelProfile::llama3_1_70b().cost_usd(10_000, 2_000);
        assert!(gpt > gem && gem > llama, "{gpt} {gem} {llama}");
        // Spot-check the gpt-4o rate card: 2.5 $/1M input, 10 $/1M output.
        assert!((ModelProfile::gpt_4o().cost_usd(1_000_000, 0) - 2.5).abs() < 1e-9);
        assert!((ModelProfile::gpt_4o().cost_usd(0, 1_000_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn repricing_with_another_profile_scales_by_rate_ratio() {
        let trace = traced_sim_run(ModelProfile::gemini_1_5_pro());
        let as_gpt = reprice(&trace, &ModelProfile::gpt_4o());
        let as_gem = reprice(&trace, &ModelProfile::gemini_1_5_pro());
        // gpt-4o charges exactly 2× gemini-1.5-pro on both token kinds.
        assert!((as_gpt - 2.0 * as_gem).abs() < 1e-12, "{as_gpt} vs {as_gem}");
    }
}

//! Overall prompt construction — paper Algorithm 3 and Figure 6.
//!
//! Builds CatDB's single prompt (β = 1) or the CatDB Chain prompt sequence
//! (β > 1: per-chunk pre-processing and feature-engineering prompts plus
//! one model-selection prompt that carries the accumulated `<CODE>`), plus
//! the Figure 7 error-correction prompt templates.

use crate::rules::{derive_rules, schema_line, MetadataConfig};
use catdb_catalog::CatalogEntry;
use catdb_llm::{LlmTaskKind, Prompt};
use catdb_profiler::{ColumnProfile, FeatureType};

/// System message shared by all generation prompts.
const SYSTEM: &str = "You are an expert data scientist. Reply ONLY with a pipeline program in the \
                      declarative pipeline DSL, no explanations.";

/// Prompt construction parameters (Algorithm 3's α and β).
#[derive(Debug, Clone)]
pub struct PromptOptions {
    pub metadata: MetadataConfig,
    /// Top-K column selection; `None` keeps every column.
    pub alpha: Option<usize>,
    /// Number of chain chunks; 1 = single prompt (CatDB default).
    pub beta: usize,
    /// Drop columns with fewer than this fraction of non-null values
    /// (Algorithm 3 removes columns with values in < 2 % of rows).
    pub min_coverage: f64,
}

impl Default for PromptOptions {
    fn default() -> Self {
        PromptOptions { metadata: MetadataConfig::full(), alpha: None, beta: 1, min_coverage: 0.02 }
    }
}

/// Builder over one catalog entry.
pub struct PromptBuilder<'a> {
    entry: &'a CatalogEntry,
    opts: PromptOptions,
}

impl<'a> PromptBuilder<'a> {
    pub fn new(entry: &'a CatalogEntry, opts: PromptOptions) -> PromptBuilder<'a> {
        PromptBuilder { entry, opts }
    }

    /// CLEANDATACATALOG: remove empty, constant, and low-coverage columns.
    pub fn clean_columns(&self) -> Vec<&'a ColumnProfile> {
        self.entry
            .feature_columns()
            .filter(|c| {
                let coverage = 1.0 - c.missing_percentage;
                c.distinct_count > 1 && coverage >= self.opts.min_coverage
            })
            .collect()
    }

    /// SELECTTOPKCOLUMNS: priority groups — (1) categorical, (2) features
    /// highly correlated with the target but with missing values,
    /// (3) sentence/list, (4) numerical, (5) boolean (Section 3.4).
    pub fn select_columns(&self) -> Vec<&'a ColumnProfile> {
        let cols = self.clean_columns();
        let Some(alpha) = self.opts.alpha else { return cols };
        let priority = |c: &ColumnProfile| -> (u8, f64) {
            let target_corr = c
                .correlations
                .iter()
                .find(|(n, _)| n == &self.entry.target)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            let group = match c.feature_type {
                FeatureType::Categorical => 0,
                _ if target_corr > 0.3 && c.missing_count > 0 => 1,
                FeatureType::Sentence | FeatureType::List => 2,
                FeatureType::Numerical => 3,
                FeatureType::Boolean => 4,
            };
            // Within a group, prefer stronger target correlation.
            (group, -target_corr)
        };
        let mut ranked = cols;
        ranked.sort_by(|a, b| {
            let (ga, sa) = priority(a);
            let (gb, sb) = priority(b);
            ga.cmp(&gb).then(sa.total_cmp(&sb)).then_with(|| a.name.cmp(&b.name))
        });
        ranked.truncate(alpha);
        ranked
    }

    fn dataset_line(&self) -> String {
        format!(
            "<DATASET name=\"{}\" format=\"{}\" delimiter=\"{}\" rows=\"{}\" target=\"{}\" task=\"{}\" />",
            self.entry.dataset_name,
            self.entry.format,
            self.entry.delimiter,
            self.entry.profile.n_rows,
            self.entry.target,
            self.entry.task
        )
    }

    fn schema_block(&self, cols: &[&ColumnProfile]) -> String {
        let mut block = String::from("<SCHEMA>\n");
        for col in cols {
            block.push_str(&schema_line(col, self.entry, &self.opts.metadata));
            block.push('\n');
        }
        // The target column's schema line is always present and flagged.
        if let Some(target) = self.entry.column(&self.entry.target) {
            let mut line = schema_line(target, self.entry, &self.opts.metadata);
            line.push_str(" role=\"target\"");
            block.push_str(&line);
            block.push('\n');
        }
        block.push_str("</SCHEMA>\n");
        block
    }

    fn rules_block(&self, cols: &[&ColumnProfile], stages: &[&str]) -> String {
        let mut block = String::from("<RULES>\n");
        for rule in derive_rules(self.entry, cols) {
            let stage = rule.split_whitespace().nth(1).unwrap_or("");
            if stages.is_empty() || stages.contains(&stage) {
                block.push_str(&rule);
                block.push('\n');
            }
        }
        block.push_str("</RULES>\n");
        block
    }

    fn description_block(&self) -> String {
        match (&self.entry.user_description, self.opts.metadata.user_description) {
            (Some(desc), true) => format!("<DESCRIPTION>{desc}</DESCRIPTION>\n"),
            _ => String::new(),
        }
    }

    /// Record the finished prompt in the active trace (if any).
    fn built(task: &str, prompt: Prompt) -> Prompt {
        catdb_trace::emit(catdb_trace::TraceEvent::PromptBuilt {
            task: task.to_string(),
            tokens: prompt.token_len(),
        });
        prompt
    }

    /// β = 1: the single CatDB prompt (all metadata and rules together).
    pub fn single_prompt(&self) -> Prompt {
        let cols = self.select_columns();
        let user = format!(
            "<TASK>{}</TASK>\n{}\n{}{}{}",
            LlmTaskKind::PipelineGeneration.tag(),
            self.dataset_line(),
            self.description_block(),
            self.schema_block(&cols),
            self.rules_block(&cols, &[]),
        );
        Self::built(LlmTaskKind::PipelineGeneration.tag(), Prompt::new(SYSTEM, user))
    }

    /// Column chunks for CatDB Chain (β > 1): ⌈|c| / β⌉ columns each.
    pub fn chain_chunks(&self) -> Vec<Vec<&'a ColumnProfile>> {
        let cols = self.select_columns();
        let beta = self.opts.beta.max(1);
        let k = cols.len().div_ceil(beta).max(1);
        cols.chunks(k).map(|c| c.to_vec()).collect()
    }

    /// One chain-stage prompt over a column chunk. `code` carries the
    /// pipeline accumulated by earlier stages (Figure 6's ordering).
    pub fn stage_prompt(
        &self,
        stage: LlmTaskKind,
        cols: &[&ColumnProfile],
        code: Option<&str>,
    ) -> Prompt {
        let stages: &[&str] = match stage {
            LlmTaskKind::Preprocessing => &["preprocessing"],
            LlmTaskKind::FeatureEngineering => &["fe"],
            LlmTaskKind::ModelSelection => &["model"],
            _ => &[],
        };
        let mut user = format!(
            "<TASK>{}</TASK>\n{}\n{}{}{}",
            stage.tag(),
            self.dataset_line(),
            self.description_block(),
            self.schema_block(cols),
            self.rules_block(cols, stages),
        );
        if let Some(code) = code {
            user.push_str("<CODE>\n");
            user.push_str(code);
            if !code.ends_with('\n') {
                user.push('\n');
            }
            user.push_str("</CODE>\n");
        }
        Self::built(stage.tag(), Prompt::new(SYSTEM, user))
    }

    /// Figure 7's error-correction template: code + error, plus projected
    /// metadata for runtime errors (`relevant_columns` filters the schema
    /// to what the error touches; empty = include everything).
    pub fn error_prompt(
        &self,
        code: &str,
        error: &str,
        include_metadata: bool,
        relevant_columns: &[String],
    ) -> Prompt {
        let mut user =
            format!("<TASK>{}</TASK>\n{}\n", LlmTaskKind::ErrorFix.tag(), self.dataset_line());
        if include_metadata {
            let cols: Vec<&ColumnProfile> = if relevant_columns.is_empty() {
                self.select_columns()
            } else {
                self.select_columns()
                    .into_iter()
                    .filter(|c| relevant_columns.iter().any(|r| r == &c.name))
                    .collect()
            };
            user.push_str(&self.schema_block(&cols));
        }
        user.push_str("<CODE>\n");
        user.push_str(code);
        if !code.ends_with('\n') {
            user.push('\n');
        }
        user.push_str("</CODE>\n<ERROR>\n");
        user.push_str(error);
        user.push_str("\n</ERROR>\n");
        Self::built(
            LlmTaskKind::ErrorFix.tag(),
            Prompt::new(
                "You fix broken pipeline programs. Reply ONLY with the corrected pipeline.",
                user,
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdb_ml::TaskKind;
    use catdb_profiler::{profile_table, ProfileOptions};
    use catdb_table::{Column, Table};

    fn make_entry() -> CatalogEntry {
        let n = 500;
        let age: Vec<Option<f64>> =
            (0..n).map(|i| if i % 9 == 0 { None } else { Some(20.0 + (i % 45) as f64) }).collect();
        let city: Vec<&str> = (0..n).map(|i| ["paris", "rome", "oslo"][i % 3]).collect();
        let constant: Vec<i64> = vec![7; n];
        let sparse: Vec<Option<i64>> =
            (0..n).map(|i| if i % 100 == 0 { Some(i as i64) } else { None }).collect();
        let y: Vec<&str> = (0..n).map(|i| if i % 4 == 0 { "q" } else { "p" }).collect();
        let t = Table::from_columns(vec![
            ("age", Column::Float(age)),
            ("city", Column::from_strings(city)),
            ("constant", Column::from_i64(constant)),
            ("sparse", Column::Int(sparse)),
            ("y", Column::from_strings(y)),
        ])
        .unwrap();
        let profile = profile_table("toy", &t, &ProfileOptions::default());
        CatalogEntry::new("toy", "y", TaskKind::BinaryClassification, profile)
    }

    #[test]
    fn cleaning_drops_constant_and_sparse_columns() {
        let entry = make_entry();
        let builder = PromptBuilder::new(&entry, PromptOptions::default());
        let names: Vec<&str> = builder.clean_columns().iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"age"));
        assert!(names.contains(&"city"));
        assert!(!names.contains(&"constant"));
        assert!(!names.contains(&"sparse"));
    }

    #[test]
    fn alpha_limits_columns_with_categorical_priority() {
        let entry = make_entry();
        let opts = PromptOptions { alpha: Some(1), ..Default::default() };
        let builder = PromptBuilder::new(&entry, opts);
        let selected = builder.select_columns();
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].name, "city"); // categorical outranks numeric
    }

    #[test]
    fn single_prompt_carries_all_sections() {
        let entry = make_entry();
        let builder = PromptBuilder::new(&entry, PromptOptions::default());
        let prompt = builder.single_prompt();
        assert!(prompt.user.contains("<TASK>pipeline_generation</TASK>"));
        assert!(prompt.user.contains("target=\"y\""));
        assert!(prompt.user.contains("col name=\"age\""));
        assert!(prompt.user.contains("role=\"target\""));
        assert!(prompt.user.contains("rule model model_selection"));
    }

    #[test]
    fn chain_chunks_partition_columns() {
        let entry = make_entry();
        let opts = PromptOptions { beta: 2, ..Default::default() };
        let builder = PromptBuilder::new(&entry, opts);
        let chunks = builder.chain_chunks();
        assert_eq!(chunks.len(), 2);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, builder.clean_columns().len());
    }

    #[test]
    fn stage_prompts_filter_rules_by_stage() {
        let entry = make_entry();
        let builder = PromptBuilder::new(&entry, PromptOptions::default());
        let cols = builder.clean_columns();
        let pre = builder.stage_prompt(LlmTaskKind::Preprocessing, &cols, None);
        assert!(pre.user.contains("rule preprocessing impute_missing"));
        assert!(!pre.user.contains("rule model"));
        let model =
            builder.stage_prompt(LlmTaskKind::ModelSelection, &cols, Some("pipeline {\n}\n"));
        assert!(model.user.contains("rule model model_selection"));
        assert!(model.user.contains("<CODE>"));
        assert!(!model.user.contains("rule preprocessing"));
    }

    #[test]
    fn error_prompt_projects_relevant_metadata() {
        let entry = make_entry();
        let builder = PromptBuilder::new(&entry, PromptOptions::default());
        let p = builder.error_prompt(
            "pipeline {\n}\n",
            "[RE] line 2: column 'age' not found (column_not_found)",
            true,
            &["age".to_string()],
        );
        assert!(p.user.contains("col name=\"age\""));
        assert!(!p.user.contains("col name=\"city\""));
        assert!(p.user.contains("<ERROR>"));
        let no_meta = builder.error_prompt("pipeline {\n}\n", "err", false, &[]);
        assert!(!no_meta.user.contains("<SCHEMA>"));
    }
}

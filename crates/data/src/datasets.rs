//! The twenty paper datasets (Table 3), reproduced as seeded synthetic
//! generators that match each dataset's task type, table count, column
//! count, class count, and — crucially — the data-quality pathology the
//! paper's narrative attributes to it (Section 5.3's per-dataset analysis).
//!
//! Row counts are scaled: `GenOptions::max_rows` caps the generated rows
//! (documented substitution — the pathologies, not the raw volume, drive
//! every experiment; volume effects are exercised by the profiling and
//! runtime benches through the `scale` knob).

use crate::engine::{generate_table, Blueprint, ColKind, ColumnPlan, TargetPlan};
use catdb_catalog::{MultiTableDataset, Relationship};
use catdb_ml::TaskKind;
use catdb_table::{Column, Table, Value};
use std::collections::HashMap;

/// Static description of one paper dataset (Table 3's row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    pub id: usize,
    pub name: &'static str,
    pub n_tables: usize,
    pub paper_rows: usize,
    pub n_cols: usize,
    pub task: TaskKind,
    pub n_classes: usize,
}

/// Table 3 verbatim.
pub const PAPER_DATASETS: [DatasetSpec; 20] = [
    DatasetSpec {
        id: 1,
        name: "wifi",
        n_tables: 1,
        paper_rows: 98,
        n_cols: 9,
        task: TaskKind::BinaryClassification,
        n_classes: 2,
    },
    DatasetSpec {
        id: 2,
        name: "diabetes",
        n_tables: 1,
        paper_rows: 768,
        n_cols: 9,
        task: TaskKind::BinaryClassification,
        n_classes: 2,
    },
    DatasetSpec {
        id: 3,
        name: "tic-tac-toe",
        n_tables: 1,
        paper_rows: 958,
        n_cols: 10,
        task: TaskKind::BinaryClassification,
        n_classes: 2,
    },
    DatasetSpec {
        id: 4,
        name: "imdb",
        n_tables: 7,
        paper_rows: 30_530_313,
        n_cols: 15,
        task: TaskKind::BinaryClassification,
        n_classes: 2,
    },
    DatasetSpec {
        id: 5,
        name: "kdd98",
        n_tables: 1,
        paper_rows: 82_318,
        n_cols: 478,
        task: TaskKind::BinaryClassification,
        n_classes: 2,
    },
    DatasetSpec {
        id: 6,
        name: "walking",
        n_tables: 1,
        paper_rows: 149_332,
        n_cols: 5,
        task: TaskKind::MulticlassClassification,
        n_classes: 22,
    },
    DatasetSpec {
        id: 7,
        name: "cmc",
        n_tables: 1,
        paper_rows: 1_473,
        n_cols: 10,
        task: TaskKind::MulticlassClassification,
        n_classes: 3,
    },
    DatasetSpec {
        id: 8,
        name: "eu-it",
        n_tables: 1,
        paper_rows: 1_253,
        n_cols: 23,
        task: TaskKind::MulticlassClassification,
        n_classes: 148,
    },
    DatasetSpec {
        id: 9,
        name: "survey",
        n_tables: 1,
        paper_rows: 2_778,
        n_cols: 29,
        task: TaskKind::MulticlassClassification,
        n_classes: 9,
    },
    DatasetSpec {
        id: 10,
        name: "etailing",
        n_tables: 1,
        paper_rows: 439,
        n_cols: 44,
        task: TaskKind::MulticlassClassification,
        n_classes: 5,
    },
    DatasetSpec {
        id: 11,
        name: "accidents",
        n_tables: 3,
        paper_rows: 954_036,
        n_cols: 46,
        task: TaskKind::MulticlassClassification,
        n_classes: 6,
    },
    DatasetSpec {
        id: 12,
        name: "financial",
        n_tables: 8,
        paper_rows: 552_017,
        n_cols: 62,
        task: TaskKind::MulticlassClassification,
        n_classes: 4,
    },
    DatasetSpec {
        id: 13,
        name: "airline",
        n_tables: 19,
        paper_rows: 445_827,
        n_cols: 115,
        task: TaskKind::MulticlassClassification,
        n_classes: 3,
    },
    DatasetSpec {
        id: 14,
        name: "gas-drift",
        n_tables: 1,
        paper_rows: 13_910,
        n_cols: 129,
        task: TaskKind::MulticlassClassification,
        n_classes: 6,
    },
    DatasetSpec {
        id: 15,
        name: "volkert",
        n_tables: 1,
        paper_rows: 58_310,
        n_cols: 181,
        task: TaskKind::MulticlassClassification,
        n_classes: 10,
    },
    DatasetSpec {
        id: 16,
        name: "yelp",
        n_tables: 4,
        paper_rows: 229_907,
        n_cols: 194,
        task: TaskKind::MulticlassClassification,
        n_classes: 9,
    },
    DatasetSpec {
        id: 17,
        name: "bike-sharing",
        n_tables: 1,
        paper_rows: 17_379,
        n_cols: 12,
        task: TaskKind::Regression,
        n_classes: 869,
    },
    DatasetSpec {
        id: 18,
        name: "utility",
        n_tables: 1,
        paper_rows: 4_574,
        n_cols: 13,
        task: TaskKind::Regression,
        n_classes: 95,
    },
    DatasetSpec {
        id: 19,
        name: "nyc",
        n_tables: 1,
        paper_rows: 581_835,
        n_cols: 17,
        task: TaskKind::Regression,
        n_classes: 1_811,
    },
    DatasetSpec {
        id: 20,
        name: "house-sales",
        n_tables: 1,
        paper_rows: 21_613,
        n_cols: 18,
        task: TaskKind::Regression,
        n_classes: 4_028,
    },
];

/// Look up a spec by name.
pub fn spec(name: &str) -> Option<&'static DatasetSpec> {
    PAPER_DATASETS.iter().find(|s| s.name == name)
}

/// Generation options.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Hard row cap after scaling (keeps experiments laptop-sized).
    pub max_rows: usize,
    /// Fraction of the paper's row count to generate (before the cap).
    pub scale: f64,
    pub seed: u64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions { max_rows: 4_000, scale: 1.0, seed: 77 }
    }
}

impl GenOptions {
    pub fn rows_for(&self, spec: &DatasetSpec) -> usize {
        (((spec.paper_rows as f64) * self.scale) as usize).clamp(60, self.max_rows)
    }
}

/// A fully generated dataset ready for profiling / generation.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    pub spec: &'static DatasetSpec,
    pub dataset: MultiTableDataset,
    pub target: String,
    pub task: TaskKind,
}

fn numeric(name: &str, signal: f64, missing: f64) -> ColumnPlan {
    ColumnPlan::new(name, ColKind::Numeric { mean: 10.0, std: 5.0, signal }).with_missing(missing)
}

fn categorical(name: &str, values: &[&str], signal: f64, dirty: f64) -> ColumnPlan {
    ColumnPlan::new(
        name,
        ColKind::Categorical {
            values: values.iter().map(|s| s.to_string()).collect(),
            signal,
            dirty,
        },
    )
}

/// Fill a blueprint with `count` generic feature columns cycling through
/// numeric (mostly), integer-coded categorical, and string categorical —
/// matching Figure 9(b)'s "good mix of numerical, textual, and categorical
/// features". Signal strength decays so only a subset is informative.
fn generic_columns(prefix: &str, count: usize, missing_every: usize) -> Vec<ColumnPlan> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let signal =
            if i < count.div_ceil(3) { 0.75 - 0.4 * (i as f64 / count as f64) } else { 0.0 };
        let missing = if missing_every > 0 && i % missing_every == 2 { 0.08 } else { 0.0 };
        let plan = match i % 5 {
            0..=2 => numeric(&format!("{prefix}{i}"), signal, missing),
            3 => ColumnPlan::new(
                format!("{prefix}{i}"),
                ColKind::IntCategorical { k: 3 + i % 6, signal },
            )
            .with_missing(missing),
            _ => categorical(
                &format!("{prefix}{i}"),
                &["alpha", "beta", "gamma", "delta"],
                signal,
                0.0,
            ),
        };
        out.push(plan);
    }
    out
}

fn classification_target(spec: &DatasetSpec, imbalance: f64, dirty: f64) -> TargetPlan {
    TargetPlan::Classification {
        n_classes: spec.n_classes.min(200),
        labels: None,
        imbalance,
        dirty,
    }
}

/// Blueprint per paper dataset (single-table logical form).
fn blueprint(spec: &DatasetSpec) -> Blueprint {
    let mut columns: Vec<ColumnPlan>;
    let target;
    match spec.name {
        // Wifi: constant feature + highly-correlated categorical refined by
        // CatDB (Table 5 narrative), dirty category spellings.
        "wifi" => {
            columns = vec![
                numeric("rssi_a", 0.9, 0.0),
                numeric("rssi_b", 0.7, 0.05),
                ColumnPlan::new("rssi_dup", ColKind::DuplicateOf { source: 0, noise: 0.4 }),
                categorical("room", &["kitchen", "hall", "office"], 0.8, 0.3),
                ColumnPlan::new("building", ColKind::Constant { value: "B1".into() }),
                numeric("noise_1", 0.0, 0.0),
                numeric("noise_2", 0.0, 0.1),
                categorical("device", &["android", "ios"], 0.0, 0.2),
            ];
            target = classification_target(spec, 0.0, 0.0);
        }
        // Diabetes: clean numeric medical features with missing values.
        "diabetes" => {
            columns = vec![
                numeric("glucose", 0.85, 0.05),
                numeric("bmi", 0.6, 0.08),
                numeric("age", 0.45, 0.0),
                numeric("pressure", 0.3, 0.12),
                numeric("insulin", 0.5, 0.3),
                numeric("pedigree", 0.2, 0.0),
                numeric("skin", 0.1, 0.2),
                numeric("pregnancies", 0.15, 0.0),
            ];
            target = classification_target(spec, 0.4, 0.0);
        }
        // Tic-Tac-Toe: purely categorical board cells.
        "tic-tac-toe" => {
            columns = (0..9)
                .map(|i| {
                    categorical(
                        &format!("cell_{i}"),
                        &["x", "o", "b"],
                        if i % 2 == 0 { 0.6 } else { 0.3 },
                        0.0,
                    )
                })
                .collect();
            target = classification_target(spec, 0.3, 0.0);
        }
        // EU IT: the flagship dirty dataset — target labels exist in many
        // semantically identical spellings, plus dirty categoricals
        // (Figure 1's 39.2 % → 91.8 % example).
        "eu-it" => {
            const ROLES: [&str; 24] = [
                "backend_developer",
                "frontend_developer",
                "data_analyst",
                "sys_admin",
                "solution_architect",
                "devops_engineer",
                "qa_engineer",
                "db_administrator",
                "ml_engineer",
                "security_analyst",
                "network_engineer",
                "product_manager",
                "scrum_master",
                "ui_designer",
                "data_engineer",
                "cloud_engineer",
                "support_engineer",
                "release_manager",
                "tech_writer",
                "site_reliability",
                "etl_developer",
                "bi_analyst",
                "game_developer",
                "embedded_developer",
            ];
            columns = vec![
                categorical("role", &ROLES, 0.85, 0.35),
                categorical("country", &["de", "fr", "it", "es", "pl", "nl"], 0.4, 0.25),
                ColumnPlan::new("experience", ColKind::DurationSentence),
                numeric("salary_eur", 0.7, 0.1),
                numeric("hours", 0.2, 0.05),
            ];
            columns.extend(generic_columns("v", spec.n_cols - 6, 4));
            // The target is the (dirtily re-spelled) occupation — the
            // paper's "semantically identical but differently formatted
            // duplicates" in the EU IT target.
            target = TargetPlan::Mirror { column: 0, fidelity: 0.96, dirty: 0.45 };
        }
        // Survey: a sentence feature that is really categorical.
        "survey" => {
            columns = vec![
                ColumnPlan::new("tenure", ColKind::DurationSentence).with_missing(0.05),
                categorical("dept", &["sales", "eng", "hr", "ops"], 0.7, 0.2),
                numeric("satisfaction", 0.8, 0.06),
            ];
            columns.extend(generic_columns("q", spec.n_cols - 4, 5));
            target = classification_target(spec, 0.2, 0.0);
        }
        // Etailing: duplicate category values correlated with the target
        // (cleaning lifts accuracy by ~30 % in Table 5).
        "etailing" => {
            columns = vec![
                categorical(
                    "segment",
                    &["Pro Shopper", "Casual", "Window", "Bulk Buyer"],
                    0.9,
                    0.45,
                ),
                categorical("channel", &["web", "app", "store"], 0.5, 0.3),
                numeric("basket", 0.6, 0.1),
            ];
            columns.extend(generic_columns("f", spec.n_cols - 4, 6));
            target = classification_target(spec, 0.25, 0.0);
        }
        // Utility (regression): categorical handling and dedup matter.
        "utility" => {
            columns = vec![
                categorical("plant_type", &["coal", "gas", "hydro", "solar", "wind"], 0.85, 0.3),
                numeric("capacity", 0.8, 0.04),
                numeric("age_years", 0.4, 0.0),
                categorical("region", &["north", "south", "east", "west"], 0.3, 0.2),
                numeric("staff", 0.2, 0.1),
                ColumnPlan::new("grid", ColKind::Constant { value: "EU".into() }),
            ];
            columns.extend(generic_columns("m", spec.n_cols - 7, 5));
            target = TargetPlan::Regression { scale: 120.0, noise: 9.0 };
        }
        // Yelp: list features ("Golf, Roofing, Movers") and hashed
        // day/timestamp columns misread as missing values.
        "yelp" => {
            columns = vec![
                ColumnPlan::new(
                    "categories",
                    ColKind::List {
                        vocab: [
                            "Golf", "Roofing", "Movers", "Taxis", "Bakery", "Bars", "Gym", "Spa",
                        ]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                        max_items: 3,
                        signal: 0.8,
                    },
                ),
                ColumnPlan::new(
                    "amenities",
                    ColKind::List {
                        vocab: ["wifi", "parking", "patio", "delivery", "takeout"]
                            .iter()
                            .map(|s| s.to_string())
                            .collect(),
                        max_items: 4,
                        signal: 0.4,
                    },
                ),
                numeric("checkin_hash", 0.0, 0.55),
                numeric("stars_avg", 0.85, 0.02),
                categorical("city", &["vegas", "phoenix", "toronto", "madison"], 0.3, 0.25),
            ];
            columns.extend(generic_columns("y", spec.n_cols.min(80) - 6, 7));
            target = classification_target(spec, 0.3, 0.0);
        }
        // Wide numeric sensor datasets.
        "gas-drift" | "volkert" | "walking" => {
            let cols = spec.n_cols.min(spec.name.len() * 40).min(181);
            columns = (0..cols - 1)
                .map(|i| {
                    let signal =
                        if i < cols / 4 { 0.8 - 0.5 * (i as f64 / cols as f64) } else { 0.0 };
                    numeric(&format!("s{i}"), signal, if i % 9 == 4 { 0.04 } else { 0.0 })
                })
                .collect();
            target = classification_target(spec, 0.1, 0.0);
        }
        // KDD98: very wide, heavily missing mixed features.
        "kdd98" => {
            columns = generic_columns("k", spec.n_cols.min(478) - 1, 3);
            for (i, c) in columns.iter_mut().enumerate() {
                if i % 6 == 1 {
                    c.missing_rate = 0.35;
                }
            }
            target = classification_target(spec, 1.2, 0.0);
        }
        // CMC: small multiclass with integer-coded categoricals.
        "cmc" => {
            columns = vec![
                ColumnPlan::new("wife_age", ColKind::Numeric { mean: 32.0, std: 8.0, signal: 0.6 }),
                ColumnPlan::new("wife_edu", ColKind::IntCategorical { k: 4, signal: 0.7 }),
                ColumnPlan::new("husband_edu", ColKind::IntCategorical { k: 4, signal: 0.4 }),
                ColumnPlan::new("children", ColKind::Numeric { mean: 3.0, std: 2.0, signal: 0.5 }),
                ColumnPlan::new("religion", ColKind::IntCategorical { k: 2, signal: 0.2 }),
                ColumnPlan::new("working", ColKind::IntCategorical { k: 2, signal: 0.15 }),
                ColumnPlan::new("occupation", ColKind::IntCategorical { k: 4, signal: 0.3 }),
                ColumnPlan::new("living_std", ColKind::IntCategorical { k: 4, signal: 0.45 }),
                ColumnPlan::new("media", ColKind::IntCategorical { k: 2, signal: 0.1 }),
            ];
            target = classification_target(spec, 0.3, 0.0);
        }
        // Regression datasets.
        "bike-sharing" => {
            columns = vec![
                numeric("temp", 0.8, 0.0),
                numeric("humidity", 0.5, 0.03),
                numeric("windspeed", 0.3, 0.0),
                ColumnPlan::new("hour", ColKind::IntCategorical { k: 24, signal: 0.6 }),
                ColumnPlan::new("weekday", ColKind::IntCategorical { k: 7, signal: 0.2 }),
                categorical("season", &["spring", "summer", "fall", "winter"], 0.4, 0.0),
                categorical("weather", &["clear", "mist", "rain"], 0.5, 0.0),
                ColumnPlan::new("holiday", ColKind::IntCategorical { k: 2, signal: 0.1 }),
                numeric("noise_a", 0.0, 0.0),
                numeric("noise_b", 0.0, 0.0),
                numeric("noise_c", 0.0, 0.05),
            ];
            target = TargetPlan::Regression { scale: 180.0, noise: 25.0 };
        }
        "nyc" | "house-sales" => {
            columns = generic_columns("c", spec.n_cols - 1, 6);
            target = TargetPlan::Regression { scale: 400.0, noise: 45.0 };
        }
        // Multi-table transactional datasets: the flat logical form; the
        // generator below factors dimensions out.
        "imdb" | "accidents" | "financial" | "airline" => {
            columns = generic_columns("a", spec.n_cols.min(115) - 1, 5);
            target = classification_target(spec, 0.4, 0.0);
        }
        _ => {
            columns = generic_columns("g", spec.n_cols.max(4) - 1, 5);
            target = classification_target(spec, 0.0, 0.0);
        }
    }
    Blueprint {
        name: spec.name.to_string(),
        columns,
        target_name: "target".to_string(),
        target,
        task: spec.task,
    }
}

/// Factor `dims` dimension tables out of a flat table: for each dimension,
/// a group of 2–3 columns moves into a lookup table keyed by a synthetic
/// id; the fact table keeps the foreign key. This turns the flat logical
/// form into the paper's multi-table physical form.
pub fn normalize_into_star(
    flat: &Table,
    name: &str,
    n_dims: usize,
    target: &str,
) -> MultiTableDataset {
    let feature_names: Vec<String> =
        flat.schema().names().iter().filter(|n| **n != target).map(|n| n.to_string()).collect();
    let n_dims = n_dims.min(feature_names.len() / 2);
    if n_dims == 0 {
        return MultiTableDataset::single(name, flat.clone());
    }
    let mut fact = flat.clone();
    let mut tables: Vec<(String, Table)> = Vec::new();
    let mut relationships = Vec::new();

    for d in 0..n_dims {
        // Take two columns per dimension from the tail of the feature list.
        let start = feature_names.len().saturating_sub(2 * (d + 1));
        let group: Vec<String> = feature_names[start..start + 2].to_vec();
        if group.iter().any(|g| !fact.schema().contains(g)) {
            continue;
        }
        // Distinct combos → dimension rows.
        let mut combo_ids: HashMap<String, i64> = HashMap::new();
        let mut dim_rows: Vec<Vec<Value>> = Vec::new();
        let mut fk = Vec::with_capacity(fact.n_rows());
        for i in 0..fact.n_rows() {
            let combo: Vec<Value> =
                group.iter().map(|g| fact.value(i, g).expect("column present")).collect();
            let key: String = combo.iter().map(|v| v.render()).collect::<Vec<_>>().join("\u{1f}");
            let next_id = combo_ids.len() as i64;
            let id = *combo_ids.entry(key).or_insert_with(|| {
                dim_rows.push(combo);
                next_id
            });
            fk.push(Some(id));
        }
        let dim_name = format!("dim_{d}");
        let mut dim_cols: Vec<(String, Column)> =
            vec![("id".to_string(), Column::Int((0..dim_rows.len() as i64).map(Some).collect()))];
        for (gi, gname) in group.iter().enumerate() {
            let src = fact.column(gname).expect("column present");
            let mut col = Column::with_capacity(src.dtype(), dim_rows.len());
            for row in &dim_rows {
                col.push(row[gi].clone()).expect("homogeneous dimension column");
            }
            dim_cols.push((gname.clone(), col));
        }
        tables.push((dim_name.clone(), Table::from_columns(dim_cols).expect("valid dim")));
        for gname in &group {
            fact.drop_column(gname).expect("column present");
        }
        fact.add_column(format!("{dim_name}_id"), Column::Int(fk)).expect("fresh fk");
        relationships.push(Relationship {
            from_table: "fact".to_string(),
            from_column: format!("{dim_name}_id"),
            to_table: dim_name,
            to_column: "id".to_string(),
        });
    }
    let mut all_tables = vec![("fact".to_string(), fact)];
    all_tables.extend(tables);
    MultiTableDataset {
        name: name.to_string(),
        fact_table: "fact".to_string(),
        tables: all_tables,
        relationships,
    }
}

/// Generate one paper dataset by name.
pub fn generate(name: &str, opts: &GenOptions) -> Option<GeneratedDataset> {
    let spec = spec(name)?;
    let bp = blueprint(spec);
    let n_rows = opts.rows_for(spec);
    let flat = generate_table(&bp, n_rows, opts.seed ^ (spec.id as u64) << 8);
    let dataset = if spec.n_tables > 1 {
        normalize_into_star(&flat, spec.name, spec.n_tables - 1, &bp.target_name)
    } else {
        MultiTableDataset::single(spec.name, flat)
    };
    Some(GeneratedDataset { spec, dataset, target: bp.target_name, task: spec.task })
}

/// Generate every paper dataset.
pub fn generate_all(opts: &GenOptions) -> Vec<GeneratedDataset> {
    PAPER_DATASETS.iter().filter_map(|s| generate(s.name, opts)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_twenty_datasets_generate() {
        let opts = GenOptions { max_rows: 300, ..Default::default() };
        let all = generate_all(&opts);
        assert_eq!(all.len(), 20);
        for g in &all {
            let flat = g.dataset.materialize().unwrap();
            assert!(flat.schema().contains(&g.target), "{} missing target", g.spec.name);
            assert!(flat.n_rows() >= 60, "{} too small", g.spec.name);
        }
    }

    #[test]
    fn multi_table_specs_produce_multiple_tables() {
        let opts = GenOptions { max_rows: 200, ..Default::default() };
        for name in ["imdb", "airline", "financial", "accidents", "yelp"] {
            let g = generate(name, &opts).unwrap();
            assert!(g.dataset.n_tables() > 1, "{name} should be multi-table");
            // Materialization restores the flat width (plus fk columns
            // replaced by original features).
            let flat = g.dataset.materialize().unwrap();
            assert!(flat.n_cols() >= 5);
        }
    }

    #[test]
    fn star_normalization_round_trips_values() {
        let opts = GenOptions { max_rows: 150, ..Default::default() };
        let g = generate("financial", &opts).unwrap();
        let flat = g.dataset.materialize().unwrap();
        // Every dimension column is back, with its values joined in.
        for rel in &g.dataset.relationships {
            let dim = g.dataset.table(&rel.to_table).unwrap();
            for field in dim.schema().fields() {
                if field.name != "id" {
                    assert!(
                        flat.schema().contains(&field.name),
                        "{} missing after materialize",
                        field.name
                    );
                }
            }
        }
    }

    #[test]
    fn eu_it_has_dirty_target_labels() {
        let g = generate("eu-it", &GenOptions::default()).unwrap();
        let flat = g.dataset.materialize().unwrap();
        let mut distinct = std::collections::HashSet::new();
        let col = flat.column("target").unwrap();
        for i in 0..col.len() {
            distinct.insert(col.get(i).render());
        }
        assert!(distinct.len() > 24, "dirty spellings expected, got {}", distinct.len());
    }

    #[test]
    fn yelp_has_lists_and_heavy_missing() {
        let g = generate("yelp", &GenOptions::default()).unwrap();
        let flat = g.dataset.materialize().unwrap();
        let cats = flat.column("categories").unwrap();
        let any_list = (0..cats.len()).any(|i| cats.get(i).render().contains(", "));
        assert!(any_list);
        let checkin = flat.column("checkin_hash").unwrap();
        assert!(checkin.null_count() as f64 / checkin.len() as f64 > 0.4);
    }

    #[test]
    fn row_scaling_respects_caps() {
        let spec = spec("imdb").unwrap();
        let small = GenOptions { max_rows: 500, scale: 1.0, seed: 1 };
        assert_eq!(small.rows_for(spec), 500);
        let tiny = GenOptions { max_rows: 500, scale: 1e-6, seed: 1 };
        assert_eq!(tiny.rows_for(spec), 60);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate("cmc", &GenOptions::default()).unwrap();
        let b = generate("cmc", &GenOptions::default()).unwrap();
        assert_eq!(a.dataset.materialize().unwrap(), b.dataset.materialize().unwrap());
    }
}

//! The synthetic dataset engine.
//!
//! Every paper dataset is generated from a *blueprint*: a latent score per
//! row drives the target and every "informative" feature, so learned
//! pipelines genuinely beat the majority baseline, while "noise" features
//! carry nothing. Columns declare their shape (numeric, categorical with
//! optional dirty variants, integer-coded categorical, list, sentence,
//! composite, constant, correlated duplicate) and a missing rate — the
//! pathologies the CatDB paper's narrative attributes to each dataset.

use catdb_ml::TaskKind;
use catdb_table::{Column, Table};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// How a generated column relates to the data.
#[derive(Debug, Clone)]
pub enum ColKind {
    /// Gaussian numeric; `signal` ∈ [0,1] blends latent score vs noise.
    Numeric { mean: f64, std: f64, signal: f64 },
    /// Categorical over `values`; informative when `signal > 0`.
    /// `dirty_variants` re-spells a fraction of cells (case, abbreviation,
    /// trailing spaces) — the raw-vs-refined gap of Tables 4–5.
    Categorical { values: Vec<String>, signal: f64, dirty: f64 },
    /// Integer-coded categorical (the "7 distinct integer values" case).
    IntCategorical { k: usize, signal: f64 },
    /// List feature: up to `max_items` vocabulary items joined by ", ".
    List { vocab: Vec<String>, max_items: usize, signal: f64 },
    /// Free-text phrases, optionally semantically equal to a small set
    /// ("12 Months" vs "1 year").
    DurationSentence,
    /// Composite "digits ALPHA" values (zip + state).
    Composite { states: Vec<String> },
    /// A constant value.
    Constant { value: String },
    /// Near-copy of another column by index (correlated duplicate).
    DuplicateOf { source: usize, noise: f64 },
}

/// One planned column.
#[derive(Debug, Clone)]
pub struct ColumnPlan {
    pub name: String,
    pub kind: ColKind,
    pub missing_rate: f64,
}

impl ColumnPlan {
    pub fn new(name: impl Into<String>, kind: ColKind) -> ColumnPlan {
        ColumnPlan { name: name.into(), kind, missing_rate: 0.0 }
    }

    pub fn with_missing(mut self, rate: f64) -> ColumnPlan {
        self.missing_rate = rate;
        self
    }
}

/// The target plan.
#[derive(Debug, Clone)]
pub enum TargetPlan {
    /// `n_classes` labels from latent-score quantiles; `imbalance` skews
    /// the class mass toward the first label; `dirty` re-spells a fraction
    /// of labels (EU IT's duplicated target formats).
    Classification { n_classes: usize, labels: Option<Vec<String>>, imbalance: f64, dirty: f64 },
    /// Continuous function of the latent score plus noise.
    Regression { scale: f64, noise: f64 },
    /// The target mirrors a categorical feature column's *clean* value
    /// with probability `fidelity` (else a random label), then gets its
    /// own dirty re-spelling — the paper's EU IT pathology, where the
    /// occupation-like target holds semantically identical but
    /// differently formatted duplicates.
    Mirror { column: usize, fidelity: f64, dirty: f64 },
}

/// A whole-dataset blueprint.
#[derive(Debug, Clone)]
pub struct Blueprint {
    pub name: String,
    pub columns: Vec<ColumnPlan>,
    pub target_name: String,
    pub target: TargetPlan,
    pub task: TaskKind,
}

fn dirty_variant(value: &str, rng: &mut StdRng) -> String {
    match rng.gen_range(0..4) {
        0 => value.to_lowercase(),
        1 => value.to_uppercase(),
        2 => format!("{value} "),
        // Punctuation / separator variant ("class_7" vs "class 7").
        _ => value.replace(['_', '-'], " "),
    }
}

/// Map a latent score in (-∞, ∞) to a bucket 0..k (roughly quantile).
fn bucket(z: f64, k: usize) -> usize {
    // Logistic squash to (0,1) then uniform buckets.
    let u = 1.0 / (1.0 + (-z).exp());
    ((u * k as f64) as usize).min(k - 1)
}

/// Standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-9..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generate the single-table form of a blueprint.
pub fn generate_table(bp: &Blueprint, n_rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let latent: Vec<f64> = (0..n_rows).map(|_| normal(&mut rng)).collect();

    let mut columns: Vec<(String, Column)> = Vec::with_capacity(bp.columns.len() + 1);
    let mut generated_numeric: Vec<Option<Vec<Option<f64>>>> = vec![None; bp.columns.len()];
    // Clean (pre-dirtying) categorical picks, for Mirror targets.
    let mut clean_picks: Vec<Option<Vec<String>>> = vec![None; bp.columns.len()];

    for (ci, plan) in bp.columns.iter().enumerate() {
        let col = match &plan.kind {
            ColKind::Numeric { mean, std, signal } => {
                let vals: Vec<Option<f64>> = latent
                    .iter()
                    .map(|z| {
                        if rng.gen::<f64>() < plan.missing_rate {
                            return None;
                        }
                        let noise = normal(&mut rng);
                        Some(mean + std * (signal * z + (1.0 - signal) * noise))
                    })
                    .collect();
                generated_numeric[ci] = Some(vals.clone());
                Column::Float(vals)
            }
            ColKind::Categorical { values, signal, dirty } => {
                let k = values.len().max(1);
                let mut picks = Vec::with_capacity(n_rows);
                let vals: Vec<Option<String>> = latent
                    .iter()
                    .map(|z| {
                        let idx = if rng.gen::<f64>() < *signal {
                            bucket(*z, k)
                        } else {
                            rng.gen_range(0..k)
                        };
                        picks.push(values[idx].clone());
                        if rng.gen::<f64>() < plan.missing_rate {
                            return None;
                        }
                        let mut v = values[idx].clone();
                        if rng.gen::<f64>() < *dirty {
                            v = dirty_variant(&v, &mut rng);
                        }
                        Some(v)
                    })
                    .collect();
                clean_picks[ci] = Some(picks);
                Column::Str(vals)
            }
            ColKind::IntCategorical { k, signal } => {
                let k = (*k).max(2);
                let vals: Vec<Option<i64>> = latent
                    .iter()
                    .map(|z| {
                        if rng.gen::<f64>() < plan.missing_rate {
                            return None;
                        }
                        let idx = if rng.gen::<f64>() < *signal {
                            bucket(*z, k)
                        } else {
                            rng.gen_range(0..k)
                        };
                        Some(idx as i64)
                    })
                    .collect();
                Column::Int(vals)
            }
            ColKind::List { vocab, max_items, signal } => {
                let vals: Vec<Option<String>> = latent
                    .iter()
                    .map(|z| {
                        if rng.gen::<f64>() < plan.missing_rate {
                            return None;
                        }
                        let count = rng.gen_range(1..=(*max_items).max(1));
                        let mut items: Vec<&str> = Vec::with_capacity(count);
                        for _ in 0..count {
                            let idx = if rng.gen::<f64>() < *signal {
                                bucket(*z + normal(&mut rng) * 0.3, vocab.len())
                            } else {
                                rng.gen_range(0..vocab.len())
                            };
                            let item = vocab[idx].as_str();
                            if !items.contains(&item) {
                                items.push(item);
                            }
                        }
                        Some(items.join(", "))
                    })
                    .collect();
                Column::Str(vals)
            }
            ColKind::DurationSentence => {
                // Semantically equivalent duration spellings.
                const SPELLINGS: [[&str; 3]; 4] = [
                    ["1 year", "12 Months", "one year"],
                    ["2 years", "24 months", "two years"],
                    ["3 years", "36 Months", "three years"],
                    ["5 years", "60 months", "five years"],
                ];
                let vals: Vec<Option<String>> = latent
                    .iter()
                    .map(|z| {
                        if rng.gen::<f64>() < plan.missing_rate {
                            return None;
                        }
                        let level = bucket(*z, 4);
                        let spelling: usize = rng.gen_range(0..3);
                        Some(SPELLINGS[level][spelling].to_string())
                    })
                    .collect();
                Column::Str(vals)
            }
            ColKind::Composite { states } => {
                let vals: Vec<Option<String>> = latent
                    .iter()
                    .map(|z| {
                        if rng.gen::<f64>() < plan.missing_rate {
                            return None;
                        }
                        let zip = 7000 + bucket(*z, 30) as i64 * 7;
                        let state = &states[bucket(*z + normal(&mut rng), states.len())];
                        Some(format!("{zip} {state}"))
                    })
                    .collect();
                Column::Str(vals)
            }
            ColKind::Constant { value } => {
                Column::Str((0..n_rows).map(|_| Some(value.clone())).collect())
            }
            ColKind::DuplicateOf { source, noise } => {
                // Copy a previously generated column with perturbation.
                let (_, src) = &columns[*source];
                match src {
                    Column::Float(v) => Column::Float(
                        v.iter().map(|x| x.map(|x| x + noise * normal(&mut rng))).collect(),
                    ),
                    other => other.clone(),
                }
            }
        };
        columns.push((plan.name.clone(), col));
    }
    let _ = generated_numeric;

    // Target.
    let target_col = match &bp.target {
        TargetPlan::Classification { n_classes, labels, imbalance, dirty } => {
            let default_labels: Vec<String> =
                (0..*n_classes).map(|i| format!("class_{i}")).collect();
            let labels = labels.clone().unwrap_or(default_labels);
            let vals: Vec<Option<String>> = latent
                .iter()
                .map(|z| {
                    // Imbalance: shift mass toward label 0.
                    let z_adj = z + imbalance;
                    let mut v = labels[bucket(z_adj, labels.len())].clone();
                    if rng.gen::<f64>() < *dirty {
                        v = dirty_variant(&v, &mut rng);
                    }
                    Some(v)
                })
                .collect();
            Column::Str(vals)
        }
        TargetPlan::Regression { scale, noise } => {
            let vals: Vec<Option<f64>> = latent
                .iter()
                .map(|z| Some(scale * (z + 0.35 * (z * 2.0).sin()) + noise * normal(&mut rng)))
                .collect();
            Column::Float(vals)
        }
        TargetPlan::Mirror { column, fidelity, dirty } => {
            let picks = clean_picks[*column]
                .as_ref()
                .expect("Mirror target must reference a Categorical column");
            let labels: Vec<String> = {
                let mut set: Vec<String> = picks.clone();
                set.sort();
                set.dedup();
                set
            };
            let vals: Vec<Option<String>> = picks
                .iter()
                .map(|clean| {
                    let mut v = if rng.gen::<f64>() < *fidelity {
                        clean.clone()
                    } else {
                        labels[rng.gen_range(0..labels.len())].clone()
                    };
                    if rng.gen::<f64>() < *dirty {
                        v = dirty_variant(&v, &mut rng);
                    }
                    Some(v)
                })
                .collect();
            Column::Str(vals)
        }
    };
    columns.push((bp.target_name.clone(), target_col));

    Table::from_columns(columns).expect("blueprint produces a valid table")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_blueprint() -> Blueprint {
        Blueprint {
            name: "bp".into(),
            columns: vec![
                ColumnPlan::new("num", ColKind::Numeric { mean: 10.0, std: 2.0, signal: 0.9 })
                    .with_missing(0.1),
                ColumnPlan::new(
                    "cat",
                    ColKind::Categorical {
                        values: vec!["low".into(), "mid".into(), "high".into()],
                        signal: 0.8,
                        dirty: 0.0,
                    },
                ),
                ColumnPlan::new("noise", ColKind::Numeric { mean: 0.0, std: 1.0, signal: 0.0 }),
            ],
            target_name: "y".into(),
            target: TargetPlan::Classification {
                n_classes: 2,
                labels: None,
                imbalance: 0.0,
                dirty: 0.0,
            },
            task: TaskKind::BinaryClassification,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let bp = simple_blueprint();
        let a = generate_table(&bp, 200, 5);
        let b = generate_table(&bp, 200, 5);
        assert_eq!(a, b);
        let c = generate_table(&bp, 200, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn missing_rate_is_respected() {
        let bp = simple_blueprint();
        let t = generate_table(&bp, 2000, 1);
        let nulls = t.column("num").unwrap().null_count();
        let rate = nulls as f64 / 2000.0;
        assert!((0.06..0.14).contains(&rate), "missing rate {rate}");
        assert_eq!(t.column("cat").unwrap().null_count(), 0);
    }

    #[test]
    fn informative_features_predict_target() {
        // The signal column must separate the classes far better than the
        // noise column.
        let bp = simple_blueprint();
        let t = generate_table(&bp, 3000, 2);
        let y: Vec<bool> =
            (0..t.n_rows()).map(|i| t.value(i, "y").unwrap().render() == "class_1").collect();
        let mean_of = |name: &str, class: bool| -> f64 {
            let vals = t.column(name).unwrap().to_f64_vec();
            let picked: Vec<f64> = vals
                .iter()
                .zip(&y)
                .filter(|(v, c)| v.is_some() && **c == class)
                .map(|(v, _)| v.unwrap())
                .collect();
            picked.iter().sum::<f64>() / picked.len() as f64
        };
        let gap_signal = (mean_of("num", true) - mean_of("num", false)).abs();
        let gap_noise = (mean_of("noise", true) - mean_of("noise", false)).abs();
        assert!(gap_signal > 1.0, "signal gap {gap_signal}");
        assert!(gap_noise < 0.3, "noise gap {gap_noise}");
    }

    #[test]
    fn dirty_labels_multiply_distincts() {
        let mut bp = simple_blueprint();
        bp.target =
            TargetPlan::Classification { n_classes: 3, labels: None, imbalance: 0.0, dirty: 0.5 };
        let t = generate_table(&bp, 1000, 3);
        let mut distinct = std::collections::HashSet::new();
        for i in 0..t.n_rows() {
            distinct.insert(t.value(i, "y").unwrap().render());
        }
        assert!(distinct.len() > 3, "dirty labels should add spellings, got {}", distinct.len());
    }

    #[test]
    fn regression_targets_track_latent() {
        let mut bp = simple_blueprint();
        bp.target = TargetPlan::Regression { scale: 10.0, noise: 0.5 };
        let t = generate_table(&bp, 2000, 4);
        // num (signal 0.9) should correlate strongly with y.
        let xs = t.column("num").unwrap().to_f64_vec();
        let ys = t.column("y").unwrap().to_f64_vec();
        let pairs: Vec<(f64, f64)> =
            xs.iter().zip(&ys).filter_map(|(a, b)| Some(((*a)?, (*b)?))).collect();
        let n = pairs.len() as f64;
        let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov: f64 = pairs.iter().map(|(a, b)| (a - mx) * (b - my)).sum();
        let vx: f64 = pairs.iter().map(|(a, _)| (a - mx).powi(2)).sum();
        let vy: f64 = pairs.iter().map(|(_, b)| (b - my).powi(2)).sum();
        let corr = cov / (vx.sqrt() * vy.sqrt());
        assert!(corr > 0.6, "corr {corr}");
    }
}

//! Controlled data-corruption injectors for the Figure 14 robustness
//! study: outliers, missing values, and mixed errors at a configurable
//! ratio, applied to feature columns only (never to the target).

use catdb_table::{Table, Value};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// What to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Replace numeric cells by far-out-of-range magnitudes.
    Outliers,
    /// Null out cells.
    MissingValues,
    /// Half outliers, half missing.
    Mixed,
}

impl Corruption {
    pub fn label(self) -> &'static str {
        match self {
            Corruption::Outliers => "outliers",
            Corruption::MissingValues => "missing",
            Corruption::Mixed => "mixed",
        }
    }
}

/// Inject `ratio` (fraction of all feature cells) corruptions into a copy
/// of `table`. Numeric cells get outliers; any cell can go missing.
pub fn corrupt(table: &Table, target: &str, kind: Corruption, ratio: f64, seed: u64) -> Table {
    let mut out = table.clone();
    if ratio <= 0.0 {
        return out;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let feature_cols: Vec<String> =
        table.schema().names().iter().filter(|n| **n != target).map(|n| n.to_string()).collect();

    for name in &feature_cols {
        let col = out.column(name).expect("schema copy").clone();
        let numeric = col.dtype().is_numeric();
        let mut new_col = col.clone();
        // Column magnitude for outlier scale.
        let max_abs = col.to_f64_vec().into_iter().flatten().map(f64::abs).fold(1.0f64, f64::max);
        for i in 0..new_col.len() {
            if rng.gen::<f64>() >= ratio {
                continue;
            }
            let inject_missing = match kind {
                Corruption::MissingValues => true,
                Corruption::Outliers => !numeric, // non-numeric cells can only go missing
                Corruption::Mixed => !numeric || rng.gen::<f64>() < 0.5,
            };
            if inject_missing {
                if matches!(kind, Corruption::Outliers) {
                    continue; // pure-outlier mode leaves non-numerics alone
                }
                new_col.set(i, Value::Null).expect("in range");
            } else {
                let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                let magnitude = max_abs * rng.gen_range(25.0..80.0) * sign;
                let v = match col.dtype() {
                    catdb_table::DataType::Int => Value::Int(magnitude as i64),
                    _ => Value::Float(magnitude),
                };
                new_col.set(i, v).expect("in range");
            }
        }
        out.replace_column(name, new_col).expect("same name");
    }
    out
}

/// Count how many feature cells differ between the original and corrupted
/// tables (testing / reporting helper).
pub fn cells_changed(original: &Table, corrupted: &Table, target: &str) -> usize {
    let mut changed = 0;
    for name in original.schema().names() {
        if name == target {
            continue;
        }
        let a = original.column(name).expect("present");
        let b = corrupted.column(name).expect("present");
        for i in 0..a.len() {
            if a.get(i) != b.get(i) {
                changed += 1;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdb_table::Column;

    fn table() -> Table {
        Table::from_columns(vec![
            ("x", Column::from_f64((0..1000).map(|i| i as f64 / 100.0).collect())),
            (
                "c",
                Column::from_strings((0..1000).map(|i| format!("c{}", i % 4)).collect::<Vec<_>>()),
            ),
            ("y", Column::from_f64((0..1000).map(|i| i as f64).collect())),
        ])
        .unwrap()
    }

    #[test]
    fn zero_ratio_is_identity() {
        let t = table();
        assert_eq!(corrupt(&t, "y", Corruption::Outliers, 0.0, 1), t);
    }

    #[test]
    fn outliers_change_numeric_cells_only() {
        let t = table();
        let c = corrupt(&t, "y", Corruption::Outliers, 0.05, 1);
        let changed = cells_changed(&t, &c, "y");
        assert!((20..120).contains(&changed), "changed {changed}");
        // String column untouched in outlier mode.
        assert_eq!(t.column("c").unwrap(), c.column("c").unwrap());
        // Outliers are extreme.
        let max =
            c.column("x").unwrap().to_f64_vec().into_iter().flatten().fold(f64::MIN, f64::max);
        assert!(max > 100.0, "max {max}");
    }

    #[test]
    fn missing_mode_nulls_cells() {
        let t = table();
        let c = corrupt(&t, "y", Corruption::MissingValues, 0.1, 2);
        assert!(c.column("x").unwrap().null_count() > 50);
        assert!(c.column("c").unwrap().null_count() > 50);
        // Target never corrupted.
        assert_eq!(c.column("y").unwrap().null_count(), 0);
    }

    #[test]
    fn mixed_mode_does_both() {
        let t = table();
        let c = corrupt(&t, "y", Corruption::Mixed, 0.1, 3);
        assert!(c.column("x").unwrap().null_count() > 10);
        let max =
            c.column("x").unwrap().to_f64_vec().into_iter().flatten().fold(f64::MIN, f64::max);
        assert!(max > 100.0);
    }

    #[test]
    fn corruption_is_deterministic() {
        let t = table();
        let a = corrupt(&t, "y", Corruption::Mixed, 0.05, 9);
        let b = corrupt(&t, "y", Corruption::Mixed, 0.05, 9);
        assert_eq!(a, b);
    }
}

//! Executor coverage for the step types the unit tests don't reach:
//! outlier removal, dedup, top-k selection, rebalancing, k-hot and hashed
//! encodings, scaling, and multi-step interactions.

use catdb_ml::TaskKind;
use catdb_pipeline::{execute, parse, Environment, ErrorKind, ExecutionConfig};
use catdb_table::{Column, Table};

fn env_with(packages: &[&str]) -> Environment {
    let mut env = Environment::default();
    for p in packages {
        env.install(p).expect("installable");
    }
    env
}

fn classification_data() -> (Table, Table) {
    let n = 300;
    let x: Vec<Option<f64>> = (0..n)
        .map(|i| {
            if i % 23 == 0 {
                None
            } else if i % 31 == 0 {
                Some(1e5) // outliers
            } else {
                Some((i % 40) as f64)
            }
        })
        .collect();
    let skills: Vec<&str> = (0..n).map(|i| ["sql, rust", "rust", "go, sql", "go"][i % 4]).collect();
    let id: Vec<String> = (0..n).map(|i| format!("user_{i}")).collect();
    // Imbalanced labels: 25% positive.
    let y: Vec<&str> = (0..n).map(|i| if (i % 40) >= 30 { "pos" } else { "neg" }).collect();
    let t = Table::from_columns(vec![
        ("x", Column::Float(x)),
        ("skills", Column::from_strings(skills)),
        ("id", Column::from_strings(id)),
        ("y", Column::from_strings(y)),
    ])
    .unwrap();
    t.train_test_split(0.7, 2).unwrap()
}

#[test]
fn full_kitchen_sink_pipeline_executes() {
    let (train, test) = classification_data();
    let program = parse(
        r#"pipeline {
  require "imbalanced";
  impute "x" strategy median;
  outliers "x" method iqr factor 1.5;
  dedup exact;
  encode "skills" method khot sep ",";
  encode "id" method hash buckets 8;
  scale "x" method standard;
  rebalance target "y";
  select_topk 6 target "y";
  model classifier gradient_boosting target "y" rounds 20;
}"#,
    )
    .unwrap();
    let env = env_with(&["imbalanced", "boosting"]);
    let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
    let eval = execute(&program, &train, &test, &env, &cfg).unwrap();
    assert!(eval.test.headline() > 0.7, "{:?}", eval.test);
    // top-k selection caps the model features.
    assert!(eval.n_features <= 6);
}

#[test]
fn rebalance_without_package_is_kb_error() {
    let (train, test) = classification_data();
    let program = parse(
        "pipeline {\n  impute \"x\" strategy median;\n  encode \"skills\" method khot sep \",\";\n  encode \"id\" method hash buckets 8;\n  rebalance target \"y\";\n  model classifier decision_tree target \"y\";\n}",
    )
    .unwrap();
    let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
    let err = execute(&program, &train, &test, &Environment::default(), &cfg).unwrap_err();
    assert_eq!(err.kind, ErrorKind::MissingPackage);
    assert!(err.message.contains("imbalanced"));
}

#[test]
fn lof_outliers_require_their_package_is_preinstalled() {
    let (train, test) = classification_data();
    let program = parse(
        "pipeline {\n  impute \"x\" strategy median;\n  drop \"skills\";\n  drop \"id\";\n  outliers \"x\" method lof k 5 factor 6;\n  model classifier decision_tree target \"y\";\n}",
    )
    .unwrap();
    let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
    // outlier_tools ships preinstalled (the sklearn-equivalent toolbox).
    let eval = execute(&program, &train, &test, &Environment::default(), &cfg).unwrap();
    assert!(eval.n_train_rows <= train.n_rows());
}

#[test]
fn dedup_and_drop_null_rows_shrink_train_only() {
    let (train, test) = classification_data();
    let program = parse(
        "pipeline {\n  drop \"skills\";\n  drop \"id\";\n  drop_null_rows;\n  impute \"x\" strategy median;\n  model classifier decision_tree target \"y\";\n}",
    )
    .unwrap();
    let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
    let eval = execute(&program, &train, &test, &Environment::default(), &cfg).unwrap();
    assert!(eval.n_train_rows < train.n_rows(), "null rows dropped from train");
    assert_eq!(eval.n_test_rows, test.n_rows(), "test rows untouched");
}

#[test]
fn duplicate_model_steps_are_rejected() {
    let (train, test) = classification_data();
    let program = parse(
        "pipeline {\n  drop \"skills\";\n  drop \"id\";\n  impute \"x\" strategy median;\n  model classifier decision_tree target \"y\";\n  model classifier knn target \"y\";\n}",
    )
    .unwrap();
    let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
    let err = execute(&program, &train, &test, &Environment::default(), &cfg).unwrap_err();
    assert_eq!(err.kind, ErrorKind::ModelTaskMismatch);
}

#[test]
fn scale_on_all_numeric_then_minmax_is_stable() {
    let (train, test) = classification_data();
    let program = parse(
        "pipeline {\n  impute * strategy median;\n  drop \"skills\";\n  drop \"id\";\n  scale * method minmax;\n  model classifier logistic target \"y\" epochs 80;\n}",
    )
    .unwrap();
    let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
    let eval = execute(&program, &train, &test, &Environment::default(), &cfg).unwrap();
    assert!(eval.test.headline() > 0.6, "{:?}", eval.test);
}

#[test]
fn regression_kitchen_sink() {
    let n = 240;
    let x: Vec<f64> = (0..n).map(|i| (i % 30) as f64).collect();
    let cat: Vec<&str> = (0..n).map(|i| ["a", "b", "c"][i % 3]).collect();
    let y: Vec<f64> = x.iter().map(|v| v * 3.0 + 2.0).collect();
    let t = Table::from_columns(vec![
        ("x", Column::from_f64(x)),
        ("cat", Column::from_strings(cat)),
        ("y", Column::from_f64(y)),
    ])
    .unwrap();
    let (train, test) = t.train_test_split(0.7, 3).unwrap();
    let program = parse(
        "pipeline {\n  encode \"cat\" method ordinal;\n  outliers * method zscore factor 4;\n  model regressor gradient_boosting target \"y\" rounds 40;\n}",
    )
    .unwrap();
    let env = env_with(&["boosting"]);
    let cfg = ExecutionConfig::new(TaskKind::Regression);
    let eval = execute(&program, &train, &test, &env, &cfg).unwrap();
    assert!(eval.test.headline() > 0.95, "{:?}", eval.test);
}

#[test]
fn drop_of_target_column_raises_target_not_found() {
    let (train, test) = classification_data();
    let program = parse(
        "pipeline {\n  drop \"y\";\n  drop \"skills\";\n  drop \"id\";\n  impute \"x\" strategy median;\n  model classifier decision_tree target \"y\";\n}",
    )
    .unwrap();
    let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
    let err = execute(&program, &train, &test, &Environment::default(), &cfg).unwrap_err();
    assert_eq!(err.kind, ErrorKind::TargetNotFound);
}

//! Parser for the pipeline DSL.
//!
//! The parser plays the role of Python's `ast` module in the original
//! system: it turns LLM-emitted pipeline text into a validated [`Program`]
//! or a *syntax-class* [`PipelineError`] with a line number. Typical LLM
//! syntax failures — prose left around the code block, a missing
//! semicolon, unbalanced braces, unterminated strings, invented keywords —
//! map to the corresponding [`ErrorKind`]s.

use crate::ast::*;
use crate::errors::{ErrorKind, PipelineError};
use catdb_ml::{AugmentMethod, ScaleMethod};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Num(f64),
    Star,
    Semi,
}

fn tokenize_line(line: &str, line_no: usize) -> Result<Vec<Token>, PipelineError> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '#' => break, // comment to end of line
            c if c.is_whitespace() => {
                chars.next();
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for ch in chars.by_ref() {
                    if ch == '"' {
                        closed = true;
                        break;
                    }
                    s.push(ch);
                }
                if !closed {
                    return Err(PipelineError::new(
                        ErrorKind::UnterminatedString,
                        format!("unterminated string literal: \"{s}"),
                    )
                    .at_line(line_no));
                }
                tokens.push(Token::Str(s));
            }
            '*' => {
                chars.next();
                tokens.push(Token::Star);
            }
            ';' => {
                chars.next();
                tokens.push(Token::Semi);
            }
            c if c.is_ascii_digit() || c == '-' || c == '.' => {
                let mut s = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == 'e' || ch == 'E' {
                        s.push(ch);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let num = s.parse::<f64>().map_err(|_| {
                    PipelineError::new(
                        ErrorKind::UnknownKeyword,
                        format!("malformed number literal '{s}'"),
                    )
                    .at_line(line_no)
                })?;
                tokens.push(Token::Num(num));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_alphanumeric() || ch == '_' {
                        s.push(ch);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            other => {
                return Err(PipelineError::new(
                    ErrorKind::StrayProse,
                    format!("unexpected character '{other}'"),
                )
                .at_line(line_no));
            }
        }
    }
    Ok(tokens)
}

/// Cursor over one line's tokens with step-grammar helpers.
struct Cursor<'a> {
    tokens: &'a [Token],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    fn err(&self, kind: ErrorKind, msg: impl Into<String>) -> PipelineError {
        PipelineError::new(kind, msg).at_line(self.line)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), PipelineError> {
        match self.next() {
            Some(Token::Ident(s)) if s == kw => Ok(()),
            other => Err(self.err(
                ErrorKind::UnknownKeyword,
                format!("expected keyword '{kw}', found {other:?}"),
            )),
        }
    }

    fn expect_string(&mut self, what: &str) -> Result<String, PipelineError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s.clone()),
            other => Err(self.err(
                ErrorKind::UnknownKeyword,
                format!("expected quoted {what}, found {other:?}"),
            )),
        }
    }

    fn expect_number(&mut self, what: &str) -> Result<f64, PipelineError> {
        match self.next() {
            Some(Token::Num(n)) => Ok(*n),
            other => Err(self.err(
                ErrorKind::UnknownKeyword,
                format!("expected numeric {what}, found {other:?}"),
            )),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, PipelineError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.clone()),
            other => {
                Err(self
                    .err(ErrorKind::UnknownKeyword, format!("expected {what}, found {other:?}")))
            }
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef, PipelineError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(ColumnRef::Named(s.clone())),
            Some(Token::Star) => Ok(ColumnRef::All),
            other => Err(self.err(
                ErrorKind::UnknownKeyword,
                format!("expected column name or '*', found {other:?}"),
            )),
        }
    }

    fn finish(&mut self) -> Result<(), PipelineError> {
        match self.next() {
            Some(Token::Semi) => {
                if self.pos == self.tokens.len() {
                    Ok(())
                } else {
                    Err(self.err(ErrorKind::StrayProse, "trailing tokens after ';'"))
                }
            }
            None => Err(self.err(ErrorKind::MissingSemicolon, "statement missing ';'")),
            other => {
                Err(self.err(ErrorKind::MissingSemicolon, format!("expected ';', found {other:?}")))
            }
        }
    }
}

const STEP_KEYWORDS: &[&str] = &[
    "require",
    "impute",
    "scale",
    "encode",
    "drop",
    "drop_high_missing",
    "drop_constant",
    "dedup",
    "drop_null_rows",
    "outliers",
    "augment",
    "rebalance",
    "select_topk",
    "model",
];

fn parse_step(tokens: &[Token], line_no: usize) -> Result<Step, PipelineError> {
    let mut c = Cursor { tokens, pos: 0, line: line_no };
    let head = match c.next() {
        Some(Token::Ident(s)) => s.clone(),
        other => {
            return Err(c.err(ErrorKind::StrayProse, format!("expected a step, found {other:?}")))
        }
    };
    if !STEP_KEYWORDS.contains(&head.as_str()) {
        // Distinguish hallucinated keywords from prose: prose lines usually
        // have no terminating semicolon.
        let kind = if tokens.last() == Some(&Token::Semi) {
            ErrorKind::UnknownKeyword
        } else {
            ErrorKind::StrayProse
        };
        return Err(c.err(kind, format!("unknown step '{head}'")));
    }
    let step = match head.as_str() {
        "require" => Step::Require { package: c.expect_string("package name")? },
        "impute" => {
            let column = c.column_ref()?;
            c.expect_keyword("strategy")?;
            let strat = c.expect_ident("imputation strategy")?;
            let strategy = match strat.as_str() {
                "mean" => ImputeSpec::Mean,
                "median" => ImputeSpec::Median,
                "most_frequent" => ImputeSpec::MostFrequent,
                "constant" => match c.next() {
                    Some(Token::Num(n)) => ImputeSpec::ConstantNum(*n),
                    Some(Token::Str(s)) => ImputeSpec::ConstantStr(s.clone()),
                    other => {
                        return Err(c.err(
                            ErrorKind::UnknownKeyword,
                            format!("expected constant value, found {other:?}"),
                        ))
                    }
                },
                other => {
                    return Err(c.err(
                        ErrorKind::UnknownKeyword,
                        format!("unknown imputation strategy '{other}'"),
                    ))
                }
            };
            Step::Impute { column, strategy }
        }
        "scale" => {
            let column = c.column_ref()?;
            c.expect_keyword("method")?;
            let m = c.expect_ident("scaling method")?;
            let method = match m.as_str() {
                "standard" => ScaleMethod::Standard,
                "minmax" => ScaleMethod::MinMax,
                "decimal" => ScaleMethod::Decimal,
                other => {
                    return Err(c.err(
                        ErrorKind::UnknownKeyword,
                        format!("unknown scaling method '{other}'"),
                    ))
                }
            };
            Step::Scale { column, method }
        }
        "encode" => {
            let column = c.column_ref()?;
            c.expect_keyword("method")?;
            let m = c.expect_ident("encoding method")?;
            let method = match m.as_str() {
                "onehot" => EncodeSpec::OneHot,
                "ordinal" => EncodeSpec::Ordinal,
                "khot" => {
                    c.expect_keyword("sep")?;
                    EncodeSpec::KHot { separator: c.expect_string("separator")? }
                }
                "hash" => {
                    c.expect_keyword("buckets")?;
                    EncodeSpec::Hash { buckets: c.expect_number("bucket count")? as usize }
                }
                other => {
                    return Err(c.err(
                        ErrorKind::UnknownKeyword,
                        format!("unknown encoding method '{other}'"),
                    ))
                }
            };
            Step::Encode { column, method }
        }
        "drop" => Step::Drop { column: c.expect_string("column name")? },
        "drop_high_missing" => {
            c.expect_keyword("threshold")?;
            Step::DropHighMissing { threshold: c.expect_number("threshold")? }
        }
        "drop_constant" => Step::DropConstant,
        "dedup" => {
            let mode = c.expect_ident("dedup mode")?;
            match mode.as_str() {
                "exact" => Step::Dedup { approximate: false },
                "approx" => Step::Dedup { approximate: true },
                other => {
                    return Err(
                        c.err(ErrorKind::UnknownKeyword, format!("unknown dedup mode '{other}'"))
                    )
                }
            }
        }
        "drop_null_rows" => Step::DropNullRows,
        "outliers" => {
            let column = c.column_ref()?;
            c.expect_keyword("method")?;
            let m = c.expect_ident("outlier method")?;
            let method = match m.as_str() {
                "iqr" => {
                    c.expect_keyword("factor")?;
                    OutlierSpec::Iqr { factor: c.expect_number("factor")? }
                }
                "zscore" => {
                    c.expect_keyword("factor")?;
                    OutlierSpec::ZScore { factor: c.expect_number("factor")? }
                }
                "lof" => {
                    c.expect_keyword("k")?;
                    let k = c.expect_number("k")? as usize;
                    c.expect_keyword("factor")?;
                    OutlierSpec::Lof { k, factor: c.expect_number("factor")? }
                }
                other => {
                    return Err(c.err(
                        ErrorKind::UnknownKeyword,
                        format!("unknown outlier method '{other}'"),
                    ))
                }
            };
            Step::Outliers { column, method }
        }
        "augment" => {
            c.expect_keyword("method")?;
            let m = c.expect_ident("augmentation method")?;
            let method = match m.as_str() {
                "smote" => AugmentMethod::Smote,
                "adasyn" => AugmentMethod::Adasyn,
                "smogn" => AugmentMethod::Smogn,
                other => {
                    return Err(c.err(
                        ErrorKind::UnknownKeyword,
                        format!("unknown augmentation method '{other}'"),
                    ))
                }
            };
            c.expect_keyword("target")?;
            Step::Augment { method, target: c.expect_string("target column")? }
        }
        "rebalance" => {
            c.expect_keyword("target")?;
            Step::Rebalance { target: c.expect_string("target column")? }
        }
        "select_topk" => {
            let k = c.expect_number("k")? as usize;
            c.expect_keyword("target")?;
            Step::SelectTopK { k, target: c.expect_string("target column")? }
        }
        "model" => {
            let fam = c.expect_ident("model family")?;
            let family = match fam.as_str() {
                "classifier" => ModelFamily::Classifier,
                "regressor" => ModelFamily::Regressor,
                other => {
                    return Err(
                        c.err(ErrorKind::UnknownKeyword, format!("unknown model family '{other}'"))
                    )
                }
            };
            let algo_name = c.expect_ident("model algorithm")?;
            let algo = ModelAlgo::parse(&algo_name).ok_or_else(|| {
                c.err(ErrorKind::UnknownKeyword, format!("unknown model algorithm '{algo_name}'"))
            })?;
            c.expect_keyword("target")?;
            let target = c.expect_string("target column")?;
            // Optional `name value` hyper-parameter pairs until ';'.
            let mut params = Vec::new();
            loop {
                match c.tokens.get(c.pos) {
                    Some(Token::Semi) | None => break,
                    Some(Token::Ident(_)) => {
                        let name = c.expect_ident("hyper-parameter name")?;
                        let value = c.expect_number("hyper-parameter value")?;
                        params.push((name, value));
                    }
                    other => {
                        return Err(c.err(
                            ErrorKind::UnknownKeyword,
                            format!("unexpected token in model step: {other:?}"),
                        ))
                    }
                }
            }
            Step::Model(ModelSpec { family, algo, target, params })
        }
        _ => unreachable!("keyword membership checked above"),
    };
    c.finish()?;
    Ok(step)
}

/// Parse a full pipeline listing into a [`Program`].
pub fn parse(source: &str) -> Result<Program, PipelineError> {
    let mut steps = Vec::new();
    let mut opened = false;
    let mut closed = false;
    for (i, raw_line) in source.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if closed {
            return Err(PipelineError::new(
                ErrorKind::StrayProse,
                format!("text after closing brace: '{line}'"),
            )
            .at_line(line_no));
        }
        if !opened {
            if line == "pipeline {" {
                opened = true;
                continue;
            }
            return Err(PipelineError::new(
                ErrorKind::StrayProse,
                format!("expected 'pipeline {{', found '{line}'"),
            )
            .at_line(line_no));
        }
        if line == "}" {
            closed = true;
            continue;
        }
        let tokens = tokenize_line(line, line_no)?;
        if tokens.is_empty() {
            continue;
        }
        steps.push(parse_step(&tokens, line_no)?);
    }
    if !opened || !closed {
        return Err(PipelineError::new(
            ErrorKind::UnbalancedBraces,
            if opened { "missing closing '}'" } else { "missing 'pipeline {' header" },
        ));
    }
    Ok(Program::new(steps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_render_round_trip() {
        let src = r#"
pipeline {
  require "tabular";
  impute "age" strategy mean;
  impute "city" strategy most_frequent;
  scale "income" method standard;
  encode "city" method onehot;
  encode "skills" method khot sep ",";
  encode "uid" method hash buckets 16;
  drop "notes";
  drop_high_missing threshold 0.98;
  drop_constant;
  dedup approx;
  drop_null_rows;
  outliers "income" method iqr factor 1.5;
  augment method adasyn target "y";
  rebalance target "y";
  select_topk 20 target "y";
  model classifier random_forest target "y" trees 50 depth 12;
}
"#;
        let program = parse(src).unwrap();
        assert_eq!(program.steps.len(), 17);
        // Round trip through the canonical rendering.
        let again = parse(&program.render()).unwrap();
        assert_eq!(program, again);
    }

    #[test]
    fn reports_missing_semicolon_with_line() {
        let src = "pipeline {\n  drop \"a\"\n}\n";
        let err = parse(src).unwrap_err();
        assert_eq!(err.kind, ErrorKind::MissingSemicolon);
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn reports_unbalanced_braces() {
        let err = parse("pipeline {\n  drop_constant;\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnbalancedBraces);
        let err2 = parse("  drop_constant;\n}").unwrap_err();
        assert_eq!(err2.kind, ErrorKind::StrayProse);
    }

    #[test]
    fn reports_stray_prose() {
        let src = "pipeline {\n  Here is the generated pipeline\n  drop_constant;\n}\n";
        let err = parse(src).unwrap_err();
        assert_eq!(err.kind, ErrorKind::StrayProse);
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn reports_unknown_keyword() {
        let src = "pipeline {\n  normalize \"x\" method standard;\n}\n";
        let err = parse(src).unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownKeyword);
    }

    #[test]
    fn reports_unterminated_string() {
        let src = "pipeline {\n  drop \"broken;\n}\n";
        let err = parse(src).unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnterminatedString);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "\n# a comment\npipeline {\n\n  # inline\n  drop_constant;\n}\n";
        let p = parse(src).unwrap();
        assert_eq!(p.steps.len(), 1);
    }

    #[test]
    fn star_column_refs_parse() {
        let src = "pipeline {\n  impute * strategy median;\n  scale * method minmax;\n}\n";
        let p = parse(src).unwrap();
        assert_eq!(
            p.steps[0],
            Step::Impute { column: ColumnRef::All, strategy: ImputeSpec::Median }
        );
    }

    #[test]
    fn model_params_are_collected() {
        let src = "pipeline {\n  model regressor ridge target \"y\" l2 0.5;\n}\n";
        let p = parse(src).unwrap();
        let m = p.model().unwrap();
        assert_eq!(m.param("l2"), Some(0.5));
        assert_eq!(m.family, ModelFamily::Regressor);
    }

    #[test]
    fn trailing_tokens_after_semicolon_rejected() {
        let src = "pipeline {\n  drop_constant; drop \"x\";\n}\n";
        let err = parse(src).unwrap_err();
        assert_eq!(err.kind, ErrorKind::StrayProse);
    }
}

//! Pipeline interpreter: runs a parsed [`Program`] against train/test
//! tables inside an [`Environment`], producing either an [`Evaluation`] or
//! a classified [`PipelineError`] (the input to CatDB's error management).
//!
//! Failure semantics mirror the Python/sklearn substrate of the original
//! system: string features crash featurization, NaNs crash model fitting,
//! hallucinated columns crash the referencing step, one-hot blow-ups
//! exhaust the memory envelope, TabPFN enforces its input limits.

use crate::ast::*;
use crate::dag::{execute_dag, ExecMode, StepCache};
use crate::environment::{step_package, Environment, PREINSTALLED};
use crate::errors::{ErrorKind, PipelineError};
use catdb_ml::transform::TransformError;
use catdb_ml::{
    featurize, metrics, regression_target, AugmentMethod, Augmenter, BoostConfig, Classifier,
    ColumnDropper, ConstantColumnDropper, DecisionTreeClassifier, DecisionTreeRegressor,
    Deduplicator, FeatureHasher, ForestConfig, GaussianNb, GradientBoostingClassifier,
    GradientBoostingRegressor, HighMissingDropper, ImputeStrategy, Imputer, KHotEncoder,
    KnnClassifier, KnnConfig, KnnRegressor, LabelEncoder, LogisticRegression, MlError,
    NullRowDropper, OneHotEncoder, OrdinalEncoder, OutlierMethod, OutlierRemover,
    RandomForestClassifier, RandomForestRegressor, Regressor, RidgeRegression, Scaler, SplitMode,
    TabPfnSurrogate, TaskKind, TopKSelector, Transform, TransformError as TErr,
};
use catdb_table::{DataType, Table, Value};
use std::time::Instant;

/// Execution limits and knobs.
#[derive(Debug, Clone)]
pub struct ExecutionConfig {
    /// Simulated memory envelope in bytes; `None` = unlimited.
    pub memory_limit: Option<usize>,
    /// Task the dataset defines (used to validate the model family).
    pub task: TaskKind,
    /// Seed forwarded to stochastic estimators.
    pub seed: u64,
    /// Scale down ensemble sizes for fast validation runs.
    pub fast_validation: bool,
    /// Split-search strategy for the tree-family estimators.
    pub split_mode: SplitMode,
    /// Profiling strategy (exact scans vs mergeable chunked sketches)
    /// forwarded to every profiling pass the run performs.
    pub profile_mode: catdb_profiler::ProfileMode,
    /// Step scheduling strategy: strict sequential interpretation or the
    /// dependency-DAG scheduler (byte-identical outputs either way).
    pub exec_mode: ExecMode,
    /// Step-output memoization shared across executions (fix-loop
    /// iterations, repeated runs). Only consulted in DAG mode.
    pub step_cache: Option<std::sync::Arc<StepCache>>,
    /// Test hook: fail the step at this index with a deterministic
    /// runtime error before executing it (fault-recovery tests).
    pub inject_fault_step: Option<usize>,
}

impl ExecutionConfig {
    pub fn new(task: TaskKind) -> ExecutionConfig {
        ExecutionConfig {
            memory_limit: None,
            task,
            seed: 42,
            fast_validation: false,
            split_mode: SplitMode::Exact,
            profile_mode: catdb_profiler::ProfileMode::Exact,
            exec_mode: ExecMode::Seq,
            step_cache: None,
            inject_fault_step: None,
        }
    }
}

/// Metrics for one split.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskMetrics {
    Classification { accuracy: f64, auc: f64, f1_macro: f64 },
    Regression { r2: f64, rmse: f64 },
}

impl TaskMetrics {
    /// The headline score the paper reports: AUC for classification
    /// (Tables 7–8, Fig. 11), R² for regression.
    pub fn headline(&self) -> f64 {
        match self {
            TaskMetrics::Classification { auc, .. } => *auc,
            TaskMetrics::Regression { r2, .. } => *r2,
        }
    }

    /// Accuracy-style percentage used by Table 5 (R² for regression).
    pub fn accuracy_pct(&self) -> f64 {
        match self {
            TaskMetrics::Classification { accuracy, .. } => accuracy * 100.0,
            TaskMetrics::Regression { r2, .. } => r2.max(0.0) * 100.0,
        }
    }
}

/// Result of a successful pipeline execution.
#[derive(Debug, Clone)]
pub struct Evaluation {
    pub task: TaskKind,
    pub train: TaskMetrics,
    pub test: TaskMetrics,
    pub model_algo: ModelAlgo,
    pub n_features: usize,
    pub n_train_rows: usize,
    pub n_test_rows: usize,
    pub elapsed_seconds: f64,
}

/// 1-based line of step `idx` in [`Program::render`]'s listing.
pub(crate) fn step_line(idx: usize) -> usize {
    idx + 2 // line 1 is "pipeline {"
}

/// The deterministic error raised by `ExecutionConfig::inject_fault_step`.
pub(crate) fn injected_fault(idx: usize) -> PipelineError {
    PipelineError::new(ErrorKind::NumericalInstability, format!("injected fault at step {idx}"))
        .at_line(step_line(idx))
}

fn map_transform_err(e: TransformError, line: usize) -> PipelineError {
    let (kind, message) = match &e {
        TErr::ColumnNotFound(c) => (ErrorKind::ColumnNotFound, format!("column '{c}' not found")),
        TErr::WrongType { column, expected } => {
            (ErrorKind::WrongTypeForOperation, format!("column '{column}' is not {expected}"))
        }
        TErr::NotFitted(n) => (ErrorKind::NumericalInstability, format!("{n} used before fit")),
        TErr::Invalid(m) => (ErrorKind::WrongTypeForOperation, m.clone()),
        TErr::Table(t) => (ErrorKind::ColumnNotFound, t.to_string()),
    };
    PipelineError::new(kind, message).at_line(line)
}

fn map_ml_err(e: MlError, line: usize) -> PipelineError {
    let kind = match &e {
        MlError::NonFinite { .. } => ErrorKind::NanInFeatures,
        MlError::EmptyInput => ErrorKind::EmptyTrainingSet,
        MlError::ShapeMismatch { .. } => ErrorKind::NumericalInstability,
        MlError::BadLabel { .. } => ErrorKind::UnseenLabel,
        MlError::Unsupported(msg) => {
            if msg.contains("could not convert string to float") {
                ErrorKind::StringConversion
            } else if msg.contains("unseen class label") {
                ErrorKind::UnseenLabel
            } else if msg.contains("distinct value") {
                ErrorKind::SingleClassTarget
            } else if msg.contains("TabPFN") {
                ErrorKind::ModelLimitExceeded
            } else if msg.contains("target column") {
                ErrorKind::TargetNotFound
            } else {
                ErrorKind::ModelTaskMismatch
            }
        }
        MlError::ResourceLimit(msg) => {
            if msg.contains("TabPFN") {
                ErrorKind::ModelLimitExceeded
            } else {
                ErrorKind::MemoryExhausted
            }
        }
        MlError::Numerical(_) => ErrorKind::NumericalInstability,
    };
    PipelineError::new(kind, e.to_string()).at_line(line)
}

/// Columns matched by a [`ColumnRef`] for the given predicate, never
/// including the target column.
fn expand_columns(
    table: &Table,
    column: &ColumnRef,
    target: Option<&str>,
    pred: impl Fn(&catdb_table::Field, &catdb_table::Column) -> bool,
) -> Vec<String> {
    match column {
        ColumnRef::Named(n) => vec![n.clone()],
        ColumnRef::All => table
            .iter_columns()
            .filter(|(f, c)| Some(f.name.as_str()) != target && pred(f, c))
            .map(|(f, _)| f.name.clone())
            .collect(),
    }
}

pub(crate) fn check_memory(
    train: &Table,
    test: &Table,
    cfg: &ExecutionConfig,
    line: usize,
) -> Result<(), PipelineError> {
    if let Some(limit) = cfg.memory_limit {
        let used = train.approx_bytes() + test.approx_bytes();
        if used > limit {
            return Err(PipelineError::new(
                ErrorKind::MemoryExhausted,
                format!("working set {used} bytes exceeds the {limit}-byte memory limit"),
            )
            .at_line(line));
        }
    }
    Ok(())
}

/// Apply one fitted transform to train (always) and test (unless
/// train-only).
fn apply(
    t: &mut dyn Transform,
    train: &mut Table,
    test: &mut Table,
    line: usize,
) -> Result<(), PipelineError> {
    *train = t.fit_transform(train).map_err(|e| map_transform_err(e, line))?;
    if !t.train_only() {
        *test = t.transform(test).map_err(|e| map_transform_err(e, line))?;
    }
    Ok(())
}

fn build_classifier(
    spec: &ModelSpec,
    cfg: &ExecutionConfig,
) -> Result<Box<dyn Classifier>, PipelineError> {
    let scale = if cfg.fast_validation { 0.3 } else { 1.0 };
    let trees = ((spec.param("trees").unwrap_or(50.0) * scale).round() as usize).max(4);
    let depth = spec.param("depth").unwrap_or(12.0) as usize;
    Ok(match spec.algo {
        ModelAlgo::RandomForest => Box::new(RandomForestClassifier {
            config: ForestConfig {
                n_trees: trees,
                max_depth: depth.max(2),
                seed: cfg.seed,
                split_mode: cfg.split_mode,
                ..Default::default()
            },
        }),
        ModelAlgo::GradientBoosting => Box::new(GradientBoostingClassifier {
            config: BoostConfig {
                n_rounds: ((spec.param("rounds").unwrap_or(60.0) * scale) as usize).max(5),
                learning_rate: spec.param("lr").unwrap_or(0.15),
                max_depth: spec.param("depth").unwrap_or(4.0) as usize,
                seed: cfg.seed,
                split_mode: cfg.split_mode,
            },
        }),
        ModelAlgo::DecisionTree => Box::new(DecisionTreeClassifier {
            config: catdb_ml::TreeConfig {
                max_depth: depth.max(2),
                split_mode: cfg.split_mode,
                ..Default::default()
            },
        }),
        ModelAlgo::Logistic => Box::new(LogisticRegression {
            epochs: ((spec.param("epochs").unwrap_or(200.0) * scale) as usize).max(20),
            ..Default::default()
        }),
        ModelAlgo::Knn => Box::new(KnnClassifier {
            config: KnnConfig { k: spec.param("k").unwrap_or(5.0) as usize },
        }),
        ModelAlgo::GaussianNb => Box::new(GaussianNb),
        ModelAlgo::TabPfn => Box::new(TabPfnSurrogate { seed: cfg.seed, ..Default::default() }),
        ModelAlgo::Ridge => {
            return Err(PipelineError::new(
                ErrorKind::ModelTaskMismatch,
                "ridge is a regressor, not a classifier",
            ))
        }
    })
}

fn build_regressor(
    spec: &ModelSpec,
    cfg: &ExecutionConfig,
) -> Result<Box<dyn Regressor>, PipelineError> {
    let scale = if cfg.fast_validation { 0.3 } else { 1.0 };
    let trees = ((spec.param("trees").unwrap_or(50.0) * scale).round() as usize).max(4);
    let depth = spec.param("depth").unwrap_or(12.0) as usize;
    Ok(match spec.algo {
        ModelAlgo::RandomForest => Box::new(RandomForestRegressor {
            config: ForestConfig {
                n_trees: trees,
                max_depth: depth.max(2),
                seed: cfg.seed,
                split_mode: cfg.split_mode,
                ..Default::default()
            },
        }),
        ModelAlgo::GradientBoosting => Box::new(GradientBoostingRegressor {
            config: BoostConfig {
                n_rounds: ((spec.param("rounds").unwrap_or(60.0) * scale) as usize).max(5),
                learning_rate: spec.param("lr").unwrap_or(0.15),
                max_depth: spec.param("depth").unwrap_or(4.0) as usize,
                seed: cfg.seed,
                split_mode: cfg.split_mode,
            },
        }),
        ModelAlgo::DecisionTree => Box::new(DecisionTreeRegressor {
            config: catdb_ml::TreeConfig {
                max_depth: depth.max(2),
                split_mode: cfg.split_mode,
                ..Default::default()
            },
        }),
        ModelAlgo::Ridge => Box::new(RidgeRegression { l2: spec.param("l2").unwrap_or(1.0) }),
        ModelAlgo::Knn => Box::new(KnnRegressor {
            config: KnnConfig { k: spec.param("k").unwrap_or(5.0) as usize },
        }),
        ModelAlgo::Logistic | ModelAlgo::GaussianNb | ModelAlgo::TabPfn => {
            return Err(PipelineError::new(
                ErrorKind::ModelTaskMismatch,
                format!("{} does not support regression", spec.algo.label()),
            ))
        }
    })
}

fn run_model(
    spec: &ModelSpec,
    train: &Table,
    test: &Table,
    cfg: &ExecutionConfig,
    line: usize,
) -> Result<(TaskMetrics, TaskMetrics, usize), PipelineError> {
    if !spec.family.matches_task(cfg.task) {
        return Err(PipelineError::new(
            ErrorKind::ModelTaskMismatch,
            format!(
                "task is {} but the pipeline trains a {}",
                cfg.task.label(),
                spec.family.label()
            ),
        )
        .at_line(line));
    }
    if !spec.algo.supports(spec.family) {
        return Err(PipelineError::new(
            ErrorKind::ModelTaskMismatch,
            format!("{} does not support the {} family", spec.algo.label(), spec.family.label()),
        )
        .at_line(line));
    }
    if !train.schema().contains(&spec.target) {
        return Err(PipelineError::new(
            ErrorKind::TargetNotFound,
            format!("target column '{}' not found", spec.target),
        )
        .at_line(line));
    }
    if train.n_rows() == 0 {
        return Err(PipelineError::new(ErrorKind::EmptyTrainingSet, "training table has no rows")
            .at_line(line));
    }

    let (x_train, feats) = featurize(train, &spec.target).map_err(|e| map_ml_err(e, line))?;
    let (x_test, _) = featurize(test, &spec.target).map_err(|e| map_ml_err(e, line))?;
    if x_test.cols() != x_train.cols() {
        return Err(PipelineError::new(
            ErrorKind::NumericalInstability,
            format!(
                "train has {} features but test has {} (schema drift)",
                x_train.cols(),
                x_test.cols()
            ),
        )
        .at_line(line));
    }

    match spec.family {
        ModelFamily::Classifier => {
            let enc = LabelEncoder::fit(train, &spec.target).map_err(|e| map_ml_err(e, line))?;
            let y_train = enc.encode(train, &spec.target).map_err(|e| map_ml_err(e, line))?;
            // Test rows with labels unseen during training score as wrong
            // rather than crashing the pipeline (out-of-range index).
            let y_test = enc.encode_lossy(test, &spec.target).map_err(|e| map_ml_err(e, line))?;
            let clf = build_classifier(spec, cfg).map_err(|e| e.at_line(line))?;
            let model =
                clf.fit(&x_train, &y_train, enc.n_classes()).map_err(|e| map_ml_err(e, line))?;
            let eval = |x: &catdb_ml::Matrix, y: &[usize]| -> Result<TaskMetrics, PipelineError> {
                let proba = model.predict_proba(x).map_err(|e| map_ml_err(e, line))?;
                let pred: Vec<usize> = proba.iter().map(|p| catdb_ml::argmax(p)).collect();
                Ok(TaskMetrics::Classification {
                    accuracy: metrics::accuracy(y, &pred),
                    auc: metrics::auc_macro_ovr(y, &proba, enc.n_classes()),
                    f1_macro: metrics::f1_macro(y, &pred, enc.n_classes()),
                })
            };
            Ok((eval(&x_train, &y_train)?, eval(&x_test, &y_test)?, feats.len()))
        }
        ModelFamily::Regressor => {
            let y_train =
                regression_target(train, &spec.target).map_err(|e| map_ml_err(e, line))?;
            let y_test = regression_target(test, &spec.target).map_err(|e| map_ml_err(e, line))?;
            let reg = build_regressor(spec, cfg).map_err(|e| e.at_line(line))?;
            let model = reg.fit(&x_train, &y_train).map_err(|e| map_ml_err(e, line))?;
            let eval = |x: &catdb_ml::Matrix, y: &[f64]| -> Result<TaskMetrics, PipelineError> {
                let pred = model.predict(x).map_err(|e| map_ml_err(e, line))?;
                Ok(TaskMetrics::Regression {
                    r2: metrics::r2(y, &pred),
                    rmse: metrics::rmse(y, &pred),
                })
            };
            Ok((eval(&x_train, &y_train)?, eval(&x_test, &y_test)?, feats.len()))
        }
    }
}

/// Operator name recorded in `PipelineOp` trace events.
pub(crate) fn step_label(step: &Step) -> &'static str {
    match step {
        Step::Require { .. } => "require",
        Step::Impute { .. } => "impute",
        Step::Scale { .. } => "scale",
        Step::Encode { .. } => "encode",
        Step::Drop { .. } => "drop",
        Step::DropHighMissing { .. } => "drop_high_missing",
        Step::DropConstant => "drop_constant",
        Step::Dedup { .. } => "dedup",
        Step::DropNullRows => "drop_null_rows",
        Step::Outliers { .. } => "outliers",
        Step::Augment { .. } => "augment",
        Step::Rebalance { .. } => "rebalance",
        Step::SelectTopK { .. } => "select_top_k",
        Step::Model(_) => "model",
    }
}

/// Import pass: every step's package must be resolvable. `require`
/// statements resolve explicitly (and may carry version pins); other
/// steps implicitly import their package.
pub(crate) fn resolve_imports(program: &Program, env: &Environment) -> Result<(), PipelineError> {
    for (idx, step) in program.steps.iter().enumerate() {
        let line = step_line(idx);
        if let Step::Require { package } = step {
            env.resolve_requirement(package).map_err(|e| e.at_line(line))?;
        } else if let Some(pkg) = step_package(step) {
            if !PREINSTALLED.contains(&pkg) && !env.is_installed(pkg) {
                return Err(PipelineError::new(
                    ErrorKind::MissingPackage,
                    format!("No module named '{pkg}'"),
                )
                .at_line(line));
            }
        }
    }
    Ok(())
}

/// Interpret one step against `train`/`test` in place. Returns the model
/// result for [`Step::Model`], `None` otherwise. Shared verbatim between
/// the sequential interpreter and the DAG scheduler, so both execute
/// identical operator semantics (including mid-step memory checks).
#[allow(clippy::type_complexity)]
pub(crate) fn apply_step(
    step: &Step,
    line: usize,
    train: &mut Table,
    test: &mut Table,
    cfg: &ExecutionConfig,
    target: Option<&str>,
    model_seen: bool,
) -> Result<Option<(TaskMetrics, TaskMetrics, usize)>, PipelineError> {
    let mut model_result = None;
    {
        let train = &mut *train;
        let test = &mut *test;
        let target = target.map(|t| t.to_string());
        match step {
            Step::Require { .. } => {}
            Step::Impute { column, strategy } => {
                let numeric_only = matches!(
                    strategy,
                    ImputeSpec::Mean | ImputeSpec::Median | ImputeSpec::ConstantNum(_)
                );
                let cols = expand_columns(train, column, target.as_deref(), |f, c| {
                    c.null_count() > 0 && (!numeric_only || f.dtype.is_numeric())
                });
                if matches!(column, ColumnRef::Named(_)) && cols.len() == 1 {
                    // Named references must exist even when already clean.
                    let strat = match strategy {
                        ImputeSpec::Mean => ImputeStrategy::Mean,
                        ImputeSpec::Median => ImputeStrategy::Median,
                        ImputeSpec::MostFrequent => ImputeStrategy::MostFrequent,
                        ImputeSpec::ConstantNum(v) => ImputeStrategy::Constant(Value::Float(*v)),
                        ImputeSpec::ConstantStr(s) => {
                            ImputeStrategy::Constant(Value::Str(s.clone()))
                        }
                    };
                    let mut t = Imputer::new(cols[0].clone(), strat);
                    apply(&mut t, train, test, line)?;
                } else {
                    for col in cols {
                        let strat = match strategy {
                            ImputeSpec::Mean => ImputeStrategy::Mean,
                            ImputeSpec::Median => ImputeStrategy::Median,
                            ImputeSpec::MostFrequent => ImputeStrategy::MostFrequent,
                            ImputeSpec::ConstantNum(v) => {
                                ImputeStrategy::Constant(Value::Float(*v))
                            }
                            ImputeSpec::ConstantStr(s) => {
                                ImputeStrategy::Constant(Value::Str(s.clone()))
                            }
                        };
                        let mut t = Imputer::new(col, strat);
                        apply(&mut t, train, test, line)?;
                    }
                }
            }
            Step::Scale { column, method } => {
                let cols =
                    expand_columns(train, column, target.as_deref(), |f, _| f.dtype.is_numeric());
                for col in cols {
                    let mut t = Scaler::new(col, *method);
                    apply(&mut t, train, test, line)?;
                }
            }
            Step::Encode { column, method } => {
                let cols = expand_columns(train, column, target.as_deref(), |f, _| {
                    f.dtype == DataType::Str
                });
                for col in cols {
                    match method {
                        EncodeSpec::OneHot => {
                            let mut t = OneHotEncoder::new(col);
                            apply(&mut t, train, test, line)?;
                        }
                        EncodeSpec::Ordinal => {
                            let mut t = OrdinalEncoder::new(col);
                            apply(&mut t, train, test, line)?;
                        }
                        EncodeSpec::KHot { separator } => {
                            let mut t = KHotEncoder::new(col, separator.clone());
                            apply(&mut t, train, test, line)?;
                        }
                        EncodeSpec::Hash { buckets } => {
                            let mut t = FeatureHasher::new(col, *buckets);
                            apply(&mut t, train, test, line)?;
                        }
                    }
                    check_memory(train, test, cfg, line)?;
                }
            }
            Step::Drop { column } => {
                let mut t = ColumnDropper { column: column.clone() };
                apply(&mut t, train, test, line)?;
            }
            Step::DropHighMissing { threshold } => {
                let mut t = HighMissingDropper::new(*threshold);
                apply(&mut t, train, test, line)?;
            }
            Step::DropConstant => {
                let mut t = ConstantColumnDropper::default();
                apply(&mut t, train, test, line)?;
            }
            Step::Dedup { approximate } => {
                let mut t = Deduplicator { approximate: *approximate };
                apply(&mut t, train, test, line)?;
            }
            Step::DropNullRows => {
                let mut t = NullRowDropper;
                apply(&mut t, train, test, line)?;
            }
            Step::Outliers { column, method } => {
                let cols = match column {
                    ColumnRef::Named(n) => vec![n.clone()],
                    ColumnRef::All => Vec::new(), // empty = all numeric
                };
                let m = match method {
                    OutlierSpec::Iqr { factor } => OutlierMethod::Iqr(*factor),
                    OutlierSpec::ZScore { factor } => OutlierMethod::ZScore(*factor),
                    OutlierSpec::Lof { k, factor } => OutlierMethod::Lof { k: *k, factor: *factor },
                };
                let mut t = OutlierRemover::new(cols, m);
                apply(&mut t, train, test, line)?;
            }
            Step::Augment { method, target } => {
                let mut t = Augmenter::new(target.clone(), *method);
                t.seed = cfg.seed;
                apply(&mut t, train, test, line)?;
                check_memory(train, test, cfg, line)?;
            }
            Step::Rebalance { target } => {
                let mut t = Augmenter::new(target.clone(), AugmentMethod::Smote);
                t.seed = cfg.seed;
                apply(&mut t, train, test, line)?;
                check_memory(train, test, cfg, line)?;
            }
            Step::SelectTopK { k, target } => {
                let mut t = TopKSelector::new(target.clone(), *k);
                apply(&mut t, train, test, line)?;
            }
            Step::Model(spec) => {
                if model_seen {
                    return Err(PipelineError::new(
                        ErrorKind::ModelTaskMismatch,
                        "pipeline trains more than one model",
                    )
                    .at_line(line));
                }
                model_result = Some(run_model(spec, train, test, cfg, line)?);
            }
        }
    }
    Ok(model_result)
}

/// Execute a program end to end, dispatching on
/// [`ExecutionConfig::exec_mode`]: the strict sequential interpreter or
/// the dependency-DAG scheduler. Both produce byte-identical tables,
/// evaluations, and trace events (timing aside) for any program.
pub fn execute(
    program: &Program,
    train: &Table,
    test: &Table,
    env: &Environment,
    cfg: &ExecutionConfig,
) -> Result<Evaluation, PipelineError> {
    match cfg.exec_mode {
        ExecMode::Seq => execute_seq(program, train, test, env, cfg),
        ExecMode::Dag => execute_dag(program, train, test, env, cfg),
    }
}

fn execute_seq(
    program: &Program,
    train: &Table,
    test: &Table,
    env: &Environment,
    cfg: &ExecutionConfig,
) -> Result<Evaluation, PipelineError> {
    let _span = catdb_trace::span("execute_pipeline");
    let started = Instant::now();
    let target = program.model().map(|m| m.target.clone());
    resolve_imports(program, env)?;

    let mut train = train.clone();
    let mut test = test.clone();
    let mut model_result = None;

    for (idx, step) in program.steps.iter().enumerate() {
        let line = step_line(idx);
        let step_started = Instant::now();
        let rows_in = train.n_rows();
        if cfg.inject_fault_step == Some(idx) {
            return Err(injected_fault(idx));
        }
        if let Some(result) = apply_step(
            step,
            line,
            &mut train,
            &mut test,
            cfg,
            target.as_deref(),
            model_result.is_some(),
        )? {
            model_result = Some(result);
        }
        catdb_trace::emit(catdb_trace::TraceEvent::PipelineOp {
            op: step_label(step).to_string(),
            rows_in,
            rows_out: train.n_rows(),
            micros: step_started.elapsed().as_micros() as u64,
        });
        check_memory(&train, &test, cfg, step_line(idx))?;
    }

    finish_evaluation(program, &train, &test, cfg, model_result, started)
}

/// Shared tail of both executors: demand a model result and assemble the
/// [`Evaluation`].
pub(crate) fn finish_evaluation(
    program: &Program,
    train: &Table,
    test: &Table,
    cfg: &ExecutionConfig,
    model_result: Option<(TaskMetrics, TaskMetrics, usize)>,
    started: Instant,
) -> Result<Evaluation, PipelineError> {
    let Some((train_metrics, test_metrics, n_features)) = model_result else {
        return Err(PipelineError::new(ErrorKind::ModelTaskMismatch, "pipeline has no model step"));
    };
    let algo = program.model().expect("model present").algo;
    Ok(Evaluation {
        task: cfg.task,
        train: train_metrics,
        test: test_metrics,
        model_algo: algo,
        n_features,
        n_train_rows: train.n_rows(),
        n_test_rows: test.n_rows(),
        elapsed_seconds: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use catdb_table::Column;

    fn toy_dataset() -> (Table, Table) {
        // Binary target determined by x with a categorical helper column
        // and some missing values.
        let n = 120;
        let xs: Vec<Option<f64>> =
            (0..n).map(|i| if i % 17 == 0 { None } else { Some(i as f64) }).collect();
        let cat: Vec<&str> = (0..n).map(|i| if i % 3 == 0 { "red" } else { "blue" }).collect();
        let y: Vec<&str> = (0..n).map(|i| if i < n / 2 { "no" } else { "yes" }).collect();
        let t = Table::from_columns(vec![
            ("x", Column::Float(xs)),
            ("color", Column::from_strings(cat)),
            ("y", Column::from_strings(y)),
        ])
        .unwrap();
        t.train_test_split(0.7, 1).unwrap()
    }

    fn good_program() -> Program {
        parse(
            r#"pipeline {
  impute "x" strategy mean;
  encode "color" method onehot;
  model classifier random_forest target "y" trees 10;
}"#,
        )
        .unwrap()
    }

    #[test]
    fn clean_pipeline_executes_and_scores_well() {
        let (train, test) = toy_dataset();
        let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
        let eval = execute(&good_program(), &train, &test, &Environment::default(), &cfg).unwrap();
        assert!(eval.test.headline() > 0.9, "test AUC {:?}", eval.test);
        assert_eq!(eval.model_algo, ModelAlgo::RandomForest);
        assert_eq!(eval.n_features, 3); // x + color=blue + color=red
    }

    #[test]
    fn missing_imputation_raises_nan_error() {
        let (train, test) = toy_dataset();
        let program = parse(
            "pipeline {\n  encode \"color\" method onehot;\n  model classifier random_forest target \"y\";\n}",
        )
        .unwrap();
        let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
        let err = execute(&program, &train, &test, &Environment::default(), &cfg).unwrap_err();
        assert_eq!(err.kind, ErrorKind::NanInFeatures);
    }

    #[test]
    fn unencoded_string_raises_conversion_error() {
        let (train, test) = toy_dataset();
        let program = parse(
            "pipeline {\n  impute \"x\" strategy mean;\n  model classifier random_forest target \"y\";\n}",
        )
        .unwrap();
        let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
        let err = execute(&program, &train, &test, &Environment::default(), &cfg).unwrap_err();
        assert_eq!(err.kind, ErrorKind::StringConversion);
    }

    #[test]
    fn hallucinated_column_raises_column_not_found() {
        let (train, test) = toy_dataset();
        let program = parse(
            "pipeline {\n  impute \"zip_code\" strategy mean;\n  model classifier random_forest target \"y\";\n}",
        )
        .unwrap();
        let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
        let err = execute(&program, &train, &test, &Environment::default(), &cfg).unwrap_err();
        assert_eq!(err.kind, ErrorKind::ColumnNotFound);
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn wrong_family_raises_task_mismatch() {
        let (train, test) = toy_dataset();
        let program = parse(
            "pipeline {\n  impute \"x\" strategy mean;\n  encode \"color\" method onehot;\n  model regressor ridge target \"y\";\n}",
        )
        .unwrap();
        let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
        let err = execute(&program, &train, &test, &Environment::default(), &cfg).unwrap_err();
        assert_eq!(err.kind, ErrorKind::ModelTaskMismatch);
    }

    #[test]
    fn uninstalled_package_raises_missing_package() {
        let (train, test) = toy_dataset();
        let program = parse(
            "pipeline {\n  impute \"x\" strategy mean;\n  encode \"color\" method onehot;\n  model classifier gradient_boosting target \"y\";\n}",
        )
        .unwrap();
        let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
        let err = execute(&program, &train, &test, &Environment::default(), &cfg).unwrap_err();
        assert_eq!(err.kind, ErrorKind::MissingPackage);
        // Installing the package fixes it (the KB path).
        let mut env = Environment::default();
        env.install("boosting").unwrap();
        assert!(execute(&program, &train, &test, &env, &cfg).is_ok());
    }

    #[test]
    fn memory_limit_trips_on_onehot_blowup() {
        // High-cardinality id column: one-hot explodes the table.
        let n = 400;
        let ids: Vec<String> = (0..n).map(|i| format!("id{i}")).collect();
        let y: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect();
        let t = Table::from_columns(vec![
            ("id", Column::from_strings(ids)),
            ("y", Column::from_strings(y)),
        ])
        .unwrap();
        let (train, test) = t.train_test_split(0.7, 1).unwrap();
        let program = parse(
            "pipeline {\n  encode \"id\" method onehot;\n  model classifier decision_tree target \"y\";\n}",
        )
        .unwrap();
        let mut cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
        cfg.memory_limit = Some(200_000);
        let err = execute(&program, &train, &test, &Environment::default(), &cfg).unwrap_err();
        assert_eq!(err.kind, ErrorKind::MemoryExhausted);
    }

    #[test]
    fn wildcard_steps_cover_all_applicable_columns() {
        let (train, test) = toy_dataset();
        let program = parse(
            "pipeline {\n  impute * strategy mean;\n  impute * strategy most_frequent;\n  encode * method onehot;\n  model classifier logistic target \"y\";\n}",
        )
        .unwrap();
        let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
        let eval = execute(&program, &train, &test, &Environment::default(), &cfg).unwrap();
        assert!(eval.test.headline() > 0.85);
    }

    #[test]
    fn no_model_step_is_an_error() {
        let (train, test) = toy_dataset();
        let program = parse("pipeline {\n  drop_constant;\n}").unwrap();
        let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
        let err = execute(&program, &train, &test, &Environment::default(), &cfg).unwrap_err();
        assert_eq!(err.kind, ErrorKind::ModelTaskMismatch);
    }

    #[test]
    fn tabpfn_limits_surface_as_model_limit() {
        let n = 2400; // > 1000 training rows after split
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect();
        let t =
            Table::from_columns(vec![("x", Column::from_f64(xs)), ("y", Column::from_strings(y))])
                .unwrap();
        let (train, test) = t.train_test_split(0.7, 1).unwrap();
        let program =
            parse("pipeline {\n  require \"tabpfn\";\n  model classifier tabpfn target \"y\";\n}")
                .unwrap();
        let mut env = Environment::default();
        env.install("tabpfn").unwrap();
        let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
        let err = execute(&program, &train, &test, &env, &cfg).unwrap_err();
        assert_eq!(err.kind, ErrorKind::ModelLimitExceeded);
    }
}

//! The pipeline error taxonomy.
//!
//! Analyzing LLM request logs, the paper identifies **23 error types** in
//! three categories (Figure 8 / Section 4.2):
//!
//! * **KB** — Environment & Package errors, resolved locally by the CatDB
//!   knowledge-base API (e.g. installing a missing package and re-running).
//! * **SE** — Syntax & Parse errors, mostly fixed by local AST-level
//!   handling, otherwise resubmitted to the LLM (<3 % of cases).
//! * **RE** — Runtime & Semantic errors, the dominant class (≈85 %),
//!   resolved by LLM re-prompts enriched with projected catalog metadata.
//!
//! This module enumerates the full taxonomy; the executor raises them, the
//! LLM simulator injects them, and `catdb-core`'s error manager routes them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// High-level error category, deciding which correction channel handles it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorCategory {
    /// Environment & package: fixable by the local knowledge base.
    KnowledgeBase,
    /// Syntax & parse: local AST fixes, else LLM resubmission.
    Syntax,
    /// Runtime & semantic: LLM re-prompt with catalog metadata.
    Runtime,
}

impl ErrorCategory {
    pub fn label(self) -> &'static str {
        match self {
            ErrorCategory::KnowledgeBase => "KB",
            ErrorCategory::Syntax => "SE",
            ErrorCategory::Runtime => "RE",
        }
    }
}

/// The 23 concrete error types observed in the paper's error-trace dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ErrorKind {
    // --- KB: environment & package (6) ---
    MissingPackage,
    PackageVersionMismatch,
    MissingSystemDependency,
    EnvironmentPathError,
    PermissionDenied,
    ResourceTemporarilyUnavailable,
    // --- SE: syntax & parse (5) ---
    UnterminatedString,
    UnbalancedBraces,
    MissingSemicolon,
    UnknownKeyword,
    StrayProse,
    // --- RE: runtime & semantic (12) ---
    ColumnNotFound,
    StringConversion,
    NanInFeatures,
    WrongTypeForOperation,
    TargetNotFound,
    UnseenLabel,
    SingleClassTarget,
    MemoryExhausted,
    ModelTaskMismatch,
    EmptyTrainingSet,
    NumericalInstability,
    ModelLimitExceeded,
}

impl ErrorKind {
    /// All 23 kinds in a stable order (KB, SE, RE).
    pub const ALL: [ErrorKind; 23] = [
        ErrorKind::MissingPackage,
        ErrorKind::PackageVersionMismatch,
        ErrorKind::MissingSystemDependency,
        ErrorKind::EnvironmentPathError,
        ErrorKind::PermissionDenied,
        ErrorKind::ResourceTemporarilyUnavailable,
        ErrorKind::UnterminatedString,
        ErrorKind::UnbalancedBraces,
        ErrorKind::MissingSemicolon,
        ErrorKind::UnknownKeyword,
        ErrorKind::StrayProse,
        ErrorKind::ColumnNotFound,
        ErrorKind::StringConversion,
        ErrorKind::NanInFeatures,
        ErrorKind::WrongTypeForOperation,
        ErrorKind::TargetNotFound,
        ErrorKind::UnseenLabel,
        ErrorKind::SingleClassTarget,
        ErrorKind::MemoryExhausted,
        ErrorKind::ModelTaskMismatch,
        ErrorKind::EmptyTrainingSet,
        ErrorKind::NumericalInstability,
        ErrorKind::ModelLimitExceeded,
    ];

    pub fn category(self) -> ErrorCategory {
        use ErrorKind::*;
        match self {
            MissingPackage
            | PackageVersionMismatch
            | MissingSystemDependency
            | EnvironmentPathError
            | PermissionDenied
            | ResourceTemporarilyUnavailable => ErrorCategory::KnowledgeBase,
            UnterminatedString | UnbalancedBraces | MissingSemicolon | UnknownKeyword
            | StrayProse => ErrorCategory::Syntax,
            _ => ErrorCategory::Runtime,
        }
    }

    /// Stable snake_case identifier (used in error messages so that the
    /// knowledge base and the simulator agree on classification).
    pub fn code(self) -> &'static str {
        use ErrorKind::*;
        match self {
            MissingPackage => "missing_package",
            PackageVersionMismatch => "package_version_mismatch",
            MissingSystemDependency => "missing_system_dependency",
            EnvironmentPathError => "environment_path_error",
            PermissionDenied => "permission_denied",
            ResourceTemporarilyUnavailable => "resource_temporarily_unavailable",
            UnterminatedString => "unterminated_string",
            UnbalancedBraces => "unbalanced_braces",
            MissingSemicolon => "missing_semicolon",
            UnknownKeyword => "unknown_keyword",
            StrayProse => "stray_prose",
            ColumnNotFound => "column_not_found",
            StringConversion => "string_conversion",
            NanInFeatures => "nan_in_features",
            WrongTypeForOperation => "wrong_type_for_operation",
            TargetNotFound => "target_not_found",
            UnseenLabel => "unseen_label",
            SingleClassTarget => "single_class_target",
            MemoryExhausted => "memory_exhausted",
            ModelTaskMismatch => "model_task_mismatch",
            EmptyTrainingSet => "empty_training_set",
            NumericalInstability => "numerical_instability",
            ModelLimitExceeded => "model_limit_exceeded",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A concrete pipeline failure: kind + human-readable message + optional
/// source location (line number in the pipeline listing, like a Python
/// traceback's line reference).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineError {
    pub kind: ErrorKind,
    pub message: String,
    pub line: Option<usize>,
}

impl PipelineError {
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> PipelineError {
        PipelineError { kind, message: message.into(), line: None }
    }

    pub fn at_line(mut self, line: usize) -> PipelineError {
        self.line = Some(line);
        self
    }

    pub fn category(&self) -> ErrorCategory {
        self.kind.category()
    }

    /// Render the error as it would appear in an `<ERROR>` prompt block.
    pub fn render(&self) -> String {
        match self.line {
            Some(line) => format!(
                "[{}] line {}: {} ({})",
                self.category().label(),
                line,
                self.message,
                self.kind
            ),
            None => format!("[{}] {} ({})", self.category().label(), self.message, self.kind),
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_has_exactly_23_kinds() {
        assert_eq!(ErrorKind::ALL.len(), 23);
        // Category split: 6 KB, 5 SE, 12 RE.
        let kb =
            ErrorKind::ALL.iter().filter(|k| k.category() == ErrorCategory::KnowledgeBase).count();
        let se = ErrorKind::ALL.iter().filter(|k| k.category() == ErrorCategory::Syntax).count();
        let re = ErrorKind::ALL.iter().filter(|k| k.category() == ErrorCategory::Runtime).count();
        assert_eq!((kb, se, re), (6, 5, 12));
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<&str> = ErrorKind::ALL.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 23);
    }

    #[test]
    fn render_includes_category_line_and_code() {
        let e = PipelineError::new(ErrorKind::ColumnNotFound, "column 'zip' not found").at_line(7);
        let s = e.render();
        assert!(s.contains("[RE]"));
        assert!(s.contains("line 7"));
        assert!(s.contains("column_not_found"));
    }
}

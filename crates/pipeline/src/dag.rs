//! Dependency-DAG compilation and parallel execution of pipeline
//! programs.
//!
//! A generated [`Program`] is textually linear, but most of its cleaning
//! and feature-engineering steps touch disjoint columns. [`StepDag`]
//! makes the real dependency structure explicit — each step declares the
//! column sets it reads and writes, edges are inferred from read/write
//! conflicts, and whole-table steps (wildcards, row-count changers, the
//! model) become barriers — and [`execute_dag`] schedules antichains of
//! ready steps concurrently on `catdb-runtime`.
//!
//! # Determinism
//!
//! DAG execution is byte-identical to the sequential interpreter at any
//! `CATDB_THREADS`:
//!
//! * steps in a wave run against an immutable snapshot of the current
//!   tables and return only their *column diff* (the write set they
//!   replaced, dropped, or appended);
//! * diffs are merged back in step-index order, which reproduces the
//!   sequential column layout exactly because every operator either
//!   replaces columns in place or appends generated columns at the end;
//! * `PipelineOp` trace events and memory checks happen at merge time,
//!   in step-index order, from the merged authoritative state;
//! * on failure the merge reports the smallest-index failing step — the
//!   same error sequential execution would have raised first.
//!
//! # Memoization and step-level fault recovery
//!
//! A [`StepCache`] memoizes step outputs keyed by a lineage fingerprint:
//! the input-table fingerprints, the execution-config bits that affect
//! interpretation, and the rendered text of the step plus all its
//! transitive ancestors. A fix-loop iteration that rewrites one failing
//! step leaves every other step's lineage untouched, so Algorithm 4
//! re-executions skip unchanged prefixes *and* completed siblings of the
//! failed step — only the repaired step recomputes. Sibling outputs are
//! inserted into the cache even when the wave fails, which is what makes
//! the step-granularity retry cheap.

use crate::ast::{ColumnRef, EncodeSpec, Program, Step};
use crate::environment::Environment;
use crate::errors::{ErrorKind, PipelineError};
use crate::executor::{
    apply_step, check_memory, finish_evaluation, injected_fault, resolve_imports, step_label,
    step_line, Evaluation, ExecutionConfig, TaskMetrics,
};
use catdb_table::{table_fingerprint, Column, Table};
use serde::Serialize;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;
use std::time::Instant;

/// Trace counter: DAG step-cache lookups that returned a memoized output.
pub const COUNTER_STEP_CACHE_HITS: &str = "step_cache.hits";
/// Trace counter: DAG step-cache lookups that missed.
pub const COUNTER_STEP_CACHE_MISSES: &str = "step_cache.misses";
/// Trace counter: waves (antichains) the DAG scheduler executed.
pub const COUNTER_DAG_WAVES: &str = "dag.waves";
/// Trace span wrapping the DAG wave loop.
pub const SPAN_DAG_SCHEDULE: &str = "dag_schedule";

/// Step scheduling strategy for [`crate::execute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Strict source-order interpretation.
    #[default]
    Seq,
    /// Dependency-DAG scheduling with step memoization.
    Dag,
}

impl ExecMode {
    /// Parse a `--exec-mode` value: `seq` (or `sequential`) | `dag`.
    pub fn parse(s: &str) -> Result<ExecMode, String> {
        match s.trim() {
            "seq" | "sequential" => Ok(ExecMode::Seq),
            "dag" => Ok(ExecMode::Dag),
            other => Err(format!("unknown exec mode '{other}'; expected seq or dag")),
        }
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecMode::Seq => write!(f, "seq"),
            ExecMode::Dag => write!(f, "dag"),
        }
    }
}

/// The set of columns a step reads or writes: exact names plus prefixes
/// of encoder-generated names (`{col}=` for one-hot/k-hot indicators,
/// `{col}#h` for hash buckets). `wildcard` means "every column".
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ColSet {
    pub names: Vec<String>,
    pub prefixes: Vec<String>,
    pub wildcard: bool,
}

impl ColSet {
    fn one(name: &str) -> ColSet {
        ColSet { names: vec![name.to_string()], prefixes: Vec::new(), wildcard: false }
    }

    fn all() -> ColSet {
        ColSet { names: Vec::new(), prefixes: Vec::new(), wildcard: true }
    }

    pub fn is_empty(&self) -> bool {
        !self.wildcard && self.names.is_empty() && self.prefixes.is_empty()
    }

    /// Whether a concrete column name belongs to this set.
    pub fn contains(&self, col: &str) -> bool {
        self.wildcard
            || self.names.iter().any(|n| n == col)
            || self.prefixes.iter().any(|p| col.starts_with(p.as_str()))
    }

    /// Whether the two sets can share any concrete column.
    pub fn intersects(&self, other: &ColSet) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        if self.wildcard || other.wildcard {
            return true;
        }
        self.names.iter().any(|n| other.contains(n))
            || other.names.iter().any(|n| self.contains(n))
            || self.prefixes.iter().any(|p| {
                other
                    .prefixes
                    .iter()
                    .any(|q| p.starts_with(q.as_str()) || q.starts_with(p.as_str()))
            })
    }
}

/// Declared read/write column sets of one step, plus whether the step is
/// a barrier (depends on every prior step and blocks every later one).
/// Barriers are the steps whose effect cannot be confined to a static
/// column set: wildcard references, row-count changers, and the model.
fn step_sets(step: &Step) -> (ColSet, ColSet, bool) {
    match step {
        Step::Require { .. } => (ColSet::default(), ColSet::default(), false),
        Step::Impute { column: ColumnRef::Named(n), .. }
        | Step::Scale { column: ColumnRef::Named(n), .. } => {
            (ColSet::one(n), ColSet::one(n), false)
        }
        Step::Encode { column: ColumnRef::Named(n), method } => {
            let mut writes = ColSet::one(n);
            match method {
                EncodeSpec::OneHot | EncodeSpec::KHot { .. } => {
                    writes.prefixes.push(format!("{n}="));
                }
                EncodeSpec::Hash { .. } => writes.prefixes.push(format!("{n}#h")),
                EncodeSpec::Ordinal => {}
            }
            (ColSet::one(n), writes, false)
        }
        Step::Drop { column } => (ColSet::default(), ColSet::one(column), false),
        // Everything else reads or rewrites the whole table: wildcard
        // imputes/scales/encodes, row droppers, augmentation, top-k
        // selection, outlier removal (drops rows even when named), and
        // the model step.
        _ => (ColSet::all(), ColSet::all(), true),
    }
}

/// One node of a compiled [`StepDag`].
#[derive(Debug, Clone, Serialize)]
pub struct DagNode {
    pub index: usize,
    /// Operator name (matches `PipelineOp` trace events).
    pub op: String,
    /// Canonical step source line.
    pub render: String,
    pub reads: ColSet,
    pub writes: ColSet,
    pub barrier: bool,
    /// Direct dependencies (all `< index`).
    pub deps: Vec<usize>,
}

/// A structured DAG-validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The dependency graph contains a cycle through these nodes.
    Cycle { nodes: Vec<usize> },
    /// A node names a dependency outside the graph.
    DanglingDep { step: usize, dep: usize },
    /// A step reads a column that neither the initial schema nor any
    /// earlier step's writes can provide.
    MissingInput { step: usize, column: String },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Cycle { nodes } => {
                write!(f, "dependency cycle through steps {nodes:?}")
            }
            DagError::DanglingDep { step, dep } => {
                write!(f, "step {step} depends on nonexistent step {dep}")
            }
            DagError::MissingInput { step, column } => {
                write!(
                    f,
                    "step {step} reads column '{column}' that no input or prior step provides"
                )
            }
        }
    }
}

impl std::error::Error for DagError {}

/// Kahn topological sort over explicit adjacency lists, smallest index
/// first (deterministic). Generic over arbitrary graphs — the property
/// tests drive it with random DAGs, not just compiled pipelines.
pub fn topo_order(deps: &[Vec<usize>]) -> Result<Vec<usize>, DagError> {
    let n = deps.len();
    for (step, ds) in deps.iter().enumerate() {
        if let Some(&dep) = ds.iter().find(|&&d| d >= n) {
            return Err(DagError::DanglingDep { step, dep });
        }
    }
    let mut indeg = vec![0usize; n];
    let mut rdeps: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, ds) in deps.iter().enumerate() {
        let uniq: BTreeSet<usize> = ds.iter().copied().collect();
        indeg[j] = uniq.len();
        for d in uniq {
            rdeps[d].push(j);
        }
    }
    let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&i) = ready.iter().next() {
        ready.remove(&i);
        order.push(i);
        for &j in &rdeps[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.insert(j);
            }
        }
    }
    if order.len() != n {
        return Err(DagError::Cycle { nodes: (0..n).filter(|&i| indeg[i] > 0).collect() });
    }
    Ok(order)
}

/// The compiled dependency DAG of a program.
#[derive(Debug, Clone, Serialize)]
pub struct StepDag {
    pub nodes: Vec<DagNode>,
}

impl StepDag {
    /// Infer the dependency DAG of a program. Step `j` depends on step
    /// `i < j` when either is a barrier or their column sets conflict
    /// (write-read, write-write, or read-write on any shared column).
    pub fn compile(program: &Program) -> StepDag {
        let metas: Vec<(ColSet, ColSet, bool)> = program.steps.iter().map(step_sets).collect();
        let mut nodes = Vec::with_capacity(program.steps.len());
        for (j, step) in program.steps.iter().enumerate() {
            let (reads, writes, barrier) = metas[j].clone();
            let mut deps = Vec::new();
            for (i, (ri, wi, bi)) in metas.iter().enumerate().take(j) {
                if *bi
                    || barrier
                    || wi.intersects(&reads)
                    || wi.intersects(&writes)
                    || ri.intersects(&writes)
                {
                    deps.push(i);
                }
            }
            nodes.push(DagNode {
                index: j,
                op: step_label(step).to_string(),
                render: step.to_string(),
                reads,
                writes,
                barrier,
                deps,
            });
        }
        StepDag { nodes }
    }

    /// Check structural validity: acyclic, in-range dependencies, and
    /// every named read satisfiable by the initial schema or an earlier
    /// step's writes. Returns a deterministic topological order.
    ///
    /// This is an inspection/diagnostic API (`--dag-out`, tests); the
    /// executor deliberately does not pre-fail on missing inputs so that
    /// runtime errors surface with the same step line and message as
    /// sequential execution.
    pub fn validate(&self, initial_columns: &[String]) -> Result<Vec<usize>, DagError> {
        let deps: Vec<Vec<usize>> = self.nodes.iter().map(|n| n.deps.clone()).collect();
        let order = topo_order(&deps)?;
        for node in &self.nodes {
            for name in &node.reads.names {
                let provided = initial_columns.iter().any(|c| c == name)
                    || self.nodes[..node.index].iter().any(|p| p.writes.contains(name));
                if !provided {
                    return Err(DagError::MissingInput { step: node.index, column: name.clone() });
                }
            }
        }
        Ok(order)
    }

    /// JSON export for `--dag-out`.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("DAG serializes")
    }

    /// Transitive dependency closure per node, ascending.
    fn ancestors(&self) -> Vec<BTreeSet<usize>> {
        let mut anc: Vec<BTreeSet<usize>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let mut set = BTreeSet::new();
            for &d in &node.deps {
                set.insert(d);
                set.extend(anc[d].iter().copied());
            }
            anc.push(set);
        }
        anc
    }
}

/// Column-level difference one local step applied to one table.
#[derive(Clone, Default)]
struct TableDiff {
    /// Columns replaced in place (possibly with a new dtype).
    replaced: Vec<(String, Column)>,
    /// Columns removed.
    dropped: Vec<String>,
    /// Columns appended at the end, in append order.
    appended: Vec<(String, Column)>,
}

#[derive(Clone, Default)]
struct StepDiff {
    train: TableDiff,
    test: TableDiff,
}

/// Memoized output of one step.
#[derive(Clone)]
enum CachedOutput {
    /// A local step's column diff (applies to any table state whose
    /// lineage matches the key).
    Diff(Box<StepDiff>),
    /// A barrier step's full output tables (its lineage covers every
    /// prior step, so the whole state is determined by the key).
    Full { train: Table, test: Table },
    /// A model step's evaluation result.
    Model { train: TaskMetrics, test: TaskMetrics, n_features: usize },
}

/// Step-output memoization shared across DAG executions. Keys are
/// lineage fingerprints (input-table fingerprints + config bits + the
/// rendered step text of the step and all its transitive ancestors), so
/// entries survive fix-loop rewrites of *other* steps and repeated runs
/// over the same inputs, and never collide across validation/full
/// configs or different seeds.
pub struct StepCache {
    entries: Mutex<HashMap<u128, CachedOutput>>,
    capacity: usize,
}

impl Default for StepCache {
    fn default() -> Self {
        StepCache::new()
    }
}

impl fmt::Debug for StepCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StepCache({} entries)", self.len())
    }
}

impl StepCache {
    pub fn new() -> StepCache {
        StepCache::with_capacity(1024)
    }

    pub fn with_capacity(capacity: usize) -> StepCache {
        StepCache { entries: Mutex::new(HashMap::new()), capacity }
    }

    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a step output, recording a `step_cache.hits` or
    /// `step_cache.misses` trace counter either way.
    fn get(&self, key: u128) -> Option<CachedOutput> {
        let out = self.entries.lock().unwrap().get(&key).cloned();
        catdb_trace::add_counter(
            if out.is_some() { COUNTER_STEP_CACHE_HITS } else { COUNTER_STEP_CACHE_MISSES },
            1.0,
        );
        out
    }

    /// Insert a step output; silently drops entries past capacity (the
    /// cache is an accelerator, never a correctness dependency).
    fn insert(&self, key: u128, value: CachedOutput) {
        let mut entries = self.entries.lock().unwrap();
        if entries.len() < self.capacity || entries.contains_key(&key) {
            entries.insert(key, value);
        }
    }
}

/// Fingerprint of everything outside the program that shapes execution:
/// the input tables and the config bits the interpreter reads.
fn base_key(train: &Table, test: &Table, cfg: &ExecutionConfig) -> u128 {
    let mut h1 = DefaultHasher::new();
    let mut h2 = DefaultHasher::new();
    0x5eed_cafe_u64.hash(&mut h2);
    for h in [&mut h1, &mut h2] {
        table_fingerprint(train).hash(h);
        table_fingerprint(test).hash(h);
        format!(
            "{:?}|{:?}|{}|{:?}|{:?}",
            cfg.task, cfg.seed, cfg.fast_validation, cfg.memory_limit, cfg.split_mode
        )
        .hash(h);
    }
    ((h1.finish() as u128) << 64) | h2.finish() as u128
}

/// Lineage fingerprint of step `idx`: the base key plus the rendered
/// text of every transitive ancestor (in index order) and of the step
/// itself. No per-step data hashing — ancestry pins the data.
fn step_key(base: u128, nodes: &[DagNode], ancestors: &BTreeSet<usize>, idx: usize) -> u128 {
    let mut h1 = DefaultHasher::new();
    let mut h2 = DefaultHasher::new();
    0xdead_beef_u64.hash(&mut h2);
    for h in [&mut h1, &mut h2] {
        base.hash(h);
        for &a in ancestors {
            nodes[a].render.hash(h);
        }
        nodes[idx].render.hash(h);
    }
    ((h1.finish() as u128) << 64) | h2.finish() as u128
}

/// Clone only the columns a local step can touch (reads ∪ writes,
/// prefixes included). Single-column operators see exactly the columns
/// they would read from the full table, so their outputs — and their
/// errors, down to the message — match a full-table run, at a fraction
/// of the copy cost.
fn project(table: &Table, reads: &ColSet, writes: &ColSet) -> Table {
    let mut out = Table::empty();
    for (f, c) in table.iter_columns() {
        if reads.contains(&f.name) || writes.contains(&f.name) {
            out.add_column(f.name.clone(), c.clone()).expect("projection names are unique");
        }
    }
    out
}

/// Diff a local step's output against its input projection. `writes`
/// bounds the in-place replacements; appends and drops are observed
/// directly from the schemas.
fn table_diff(pre: &Table, post: &Table, writes: &ColSet) -> TableDiff {
    let pre_names: Vec<&str> = pre.schema().names();
    let post_names: Vec<&str> = post.schema().names();
    let mut diff = TableDiff::default();
    for name in &pre_names {
        if !post.schema().contains(name) {
            diff.dropped.push(name.to_string());
        }
    }
    for name in &post_names {
        if !pre.schema().contains(name) {
            diff.appended
                .push((name.to_string(), post.column(name).expect("named column").clone()));
        } else if writes.contains(name) {
            diff.replaced
                .push((name.to_string(), post.column(name).expect("named column").clone()));
        }
    }
    diff
}

/// Apply a memoized/merged diff to the authoritative table. Failures map
/// exactly like the sequential interpreter's table errors.
fn apply_table_diff(table: &mut Table, diff: &TableDiff, line: usize) -> Result<(), PipelineError> {
    let map = |e: catdb_table::TableError| {
        PipelineError::new(ErrorKind::ColumnNotFound, e.to_string()).at_line(line)
    };
    for (name, col) in &diff.replaced {
        table.replace_column(name, col.clone()).map_err(map)?;
    }
    for name in &diff.dropped {
        table.drop_column(name).map_err(map)?;
    }
    for (name, col) in &diff.appended {
        table.add_column(name.clone(), col.clone()).map_err(map)?;
    }
    Ok(())
}

/// Result of running (or recalling) one wave member, pre-merge.
enum WaveOut {
    Diff { diff: Box<StepDiff>, micros: u64, fresh: bool },
    Failed(PipelineError),
}

/// A step's `PipelineOp` payload, captured at merge time but emitted
/// only once every earlier step has also merged — so the event stream
/// is in step-index order, identical to sequential execution, at any
/// thread count.
struct PendingOp {
    op: String,
    rows_in: usize,
    rows_out: usize,
    micros: u64,
}

/// Run the post-step checks the sequential interpreter runs, in the
/// same order, and record the step's `PipelineOp` payload for ordered
/// emission. Encode steps check memory before the record too (their
/// sequential per-column check fires on the same state for
/// single-column references).
fn check_and_record(
    step: &Step,
    line: usize,
    rows_in: usize,
    micros: u64,
    train: &Table,
    test: &Table,
    cfg: &ExecutionConfig,
) -> Result<PendingOp, PipelineError> {
    if matches!(step, Step::Encode { .. } | Step::Augment { .. } | Step::Rebalance { .. }) {
        check_memory(train, test, cfg, line)?;
    }
    let op =
        PendingOp { op: step_label(step).to_string(), rows_in, rows_out: train.n_rows(), micros };
    check_memory(train, test, cfg, line)?;
    Ok(op)
}

/// Execute a program by scheduling antichains of its dependency DAG on
/// the shared runtime pool. See the module docs for the determinism and
/// memoization contract.
pub(crate) fn execute_dag(
    program: &Program,
    train0: &Table,
    test0: &Table,
    env: &Environment,
    cfg: &ExecutionConfig,
) -> Result<Evaluation, PipelineError> {
    let _span = catdb_trace::span("execute_pipeline");
    let started = Instant::now();
    let target = program.model().map(|m| m.target.clone());
    resolve_imports(program, env)?;

    let dag = StepDag::compile(program);
    let n = dag.nodes.len();
    let cache = cfg.step_cache.clone();
    let keys: Vec<u128> = match &cache {
        Some(_) => {
            let base = base_key(train0, test0, cfg);
            let ancestors = dag.ancestors();
            (0..n).map(|i| step_key(base, &dag.nodes, &ancestors[i], i)).collect()
        }
        None => Vec::new(),
    };

    let _sched_span = catdb_trace::span(SPAN_DAG_SCHEDULE);
    let mut train = train0.clone();
    let mut test = test0.clone();
    let mut model_result: Option<(TaskMetrics, TaskMetrics, usize)> = None;
    let mut done = vec![false; n];
    let mut completed = 0usize;
    let mut waves = 0u64;
    let mut pending: Vec<Option<PendingOp>> = (0..n).map(|_| None).collect();
    let mut next_emit = 0usize;

    while completed < n {
        let wave: Vec<usize> =
            (0..n).filter(|&i| !done[i] && dag.nodes[i].deps.iter().all(|&d| done[d])).collect();
        debug_assert!(!wave.is_empty(), "acyclic by construction");
        waves += 1;

        if wave.len() == 1 {
            run_singleton(
                &dag,
                wave[0],
                program,
                &mut train,
                &mut test,
                &mut model_result,
                cfg,
                target.as_deref(),
                cache.as_deref(),
                &keys,
                &mut pending,
            )?;
        } else {
            // A barrier's dependents cover every other step, so barriers
            // only ever surface in singleton waves.
            debug_assert!(wave.iter().all(|&i| !dag.nodes[i].barrier));
            run_wave(
                &dag,
                &wave,
                program,
                &mut train,
                &mut test,
                cfg,
                target.as_deref(),
                cache.as_deref(),
                &keys,
                &mut pending,
            )?;
        }
        for &i in &wave {
            done[i] = true;
        }
        completed += wave.len();
        // Emit every step whose predecessors have all merged: waves
        // complete out of step order, the event stream must not.
        while next_emit < n {
            let Some(op) = pending[next_emit].take() else { break };
            catdb_trace::emit(catdb_trace::TraceEvent::PipelineOp {
                op: op.op,
                rows_in: op.rows_in,
                rows_out: op.rows_out,
                micros: op.micros,
            });
            next_emit += 1;
        }
    }
    catdb_trace::add_counter(COUNTER_DAG_WAVES, waves as f64);

    finish_evaluation(program, &train, &test, cfg, model_result, started)
}

/// Execute a singleton wave (barriers, models, or a lone local step)
/// directly against the authoritative tables — the exact sequential code
/// path — with cache recall/fill around it.
#[allow(clippy::too_many_arguments)]
fn run_singleton(
    dag: &StepDag,
    idx: usize,
    program: &Program,
    train: &mut Table,
    test: &mut Table,
    model_result: &mut Option<(TaskMetrics, TaskMetrics, usize)>,
    cfg: &ExecutionConfig,
    target: Option<&str>,
    cache: Option<&StepCache>,
    keys: &[u128],
    pending: &mut [Option<PendingOp>],
) -> Result<(), PipelineError> {
    let step = &program.steps[idx];
    let line = step_line(idx);
    let rows_in = train.n_rows();
    if cfg.inject_fault_step == Some(idx) {
        return Err(injected_fault(idx));
    }

    if let Some(cache) = cache {
        if let Some(hit) = cache.get(keys[idx]) {
            match hit {
                CachedOutput::Diff(diff) => {
                    apply_table_diff(train, &diff.train, line)?;
                    apply_table_diff(test, &diff.test, line)?;
                }
                CachedOutput::Full { train: t, test: te } => {
                    *train = t;
                    *test = te;
                }
                CachedOutput::Model { train: tm, test: te, n_features } => {
                    if model_result.is_some() {
                        return Err(PipelineError::new(
                            ErrorKind::ModelTaskMismatch,
                            "pipeline trains more than one model",
                        )
                        .at_line(line));
                    }
                    *model_result = Some((tm, te, n_features));
                }
            }
            pending[idx] = Some(check_and_record(step, line, rows_in, 0, train, test, cfg)?);
            return Ok(());
        }
    }

    let node = &dag.nodes[idx];
    let step_started = Instant::now();
    // Local steps diff cheaply against a projection snapshot taken
    // before execution; barriers are cached whole.
    let pre_train =
        (!node.barrier && cache.is_some()).then(|| project(train, &node.reads, &node.writes));
    let pre_test =
        (!node.barrier && cache.is_some()).then(|| project(test, &node.reads, &node.writes));
    let result = apply_step(step, line, train, test, cfg, target, model_result.is_some())?;
    if let Some(cache) = cache {
        match &result {
            Some((tm, te, n_features)) => cache.insert(
                keys[idx],
                CachedOutput::Model {
                    train: tm.clone(),
                    test: te.clone(),
                    n_features: *n_features,
                },
            ),
            None if node.barrier => cache
                .insert(keys[idx], CachedOutput::Full { train: train.clone(), test: test.clone() }),
            None => {
                let diff = StepDiff {
                    train: table_diff(
                        pre_train.as_ref().expect("local snapshot"),
                        &project(train, &node.reads, &node.writes),
                        &node.writes,
                    ),
                    test: table_diff(
                        pre_test.as_ref().expect("local snapshot"),
                        &project(test, &node.reads, &node.writes),
                        &node.writes,
                    ),
                };
                cache.insert(keys[idx], CachedOutput::Diff(Box::new(diff)));
            }
        }
    }
    if let Some(model) = result {
        *model_result = Some(model);
    }
    pending[idx] = Some(check_and_record(
        step,
        line,
        rows_in,
        step_started.elapsed().as_micros() as u64,
        train,
        test,
        cfg,
    )?);
    Ok(())
}

/// Execute an antichain of local steps concurrently against an immutable
/// snapshot, then merge their column diffs in step-index order.
#[allow(clippy::too_many_arguments)]
fn run_wave(
    dag: &StepDag,
    wave: &[usize],
    program: &Program,
    train: &mut Table,
    test: &mut Table,
    cfg: &ExecutionConfig,
    target: Option<&str>,
    cache: Option<&StepCache>,
    keys: &[u128],
    pending: &mut [Option<PendingOp>],
) -> Result<(), PipelineError> {
    // Cache recall happens up front, in index order, so hit/miss
    // counters and cache contents are identical at every thread count.
    let mut outs: Vec<Option<WaveOut>> = wave
        .iter()
        .map(|&idx| {
            cache.and_then(|c| c.get(keys[idx])).map(|hit| match hit {
                CachedOutput::Diff(diff) => WaveOut::Diff { diff, micros: 0, fresh: false },
                // Waves never contain barriers or models.
                CachedOutput::Full { .. } | CachedOutput::Model { .. } => {
                    unreachable!("local step cached a non-diff output")
                }
            })
        })
        .collect();

    let misses: Vec<usize> =
        wave.iter().enumerate().filter(|(p, _)| outs[*p].is_none()).map(|(_, &i)| i).collect();
    let snapshot_train = &*train;
    let snapshot_test = &*test;
    let computed: Vec<(usize, WaveOut)> =
        catdb_runtime::parallel_map(catdb_runtime::pool_size(), &misses, |_, &idx| {
            if cfg.inject_fault_step == Some(idx) {
                return (idx, WaveOut::Failed(injected_fault(idx)));
            }
            let node = &dag.nodes[idx];
            let step = &program.steps[idx];
            let line = step_line(idx);
            let step_started = Instant::now();
            let pre_train = project(snapshot_train, &node.reads, &node.writes);
            let pre_test = project(snapshot_test, &node.reads, &node.writes);
            let mut local_train = pre_train.clone();
            let mut local_test = pre_test.clone();
            match apply_step(step, line, &mut local_train, &mut local_test, cfg, target, false) {
                Ok(_) => {
                    let diff = StepDiff {
                        train: table_diff(&pre_train, &local_train, &node.writes),
                        test: table_diff(&pre_test, &local_test, &node.writes),
                    };
                    (
                        idx,
                        WaveOut::Diff {
                            diff: Box::new(diff),
                            micros: step_started.elapsed().as_micros() as u64,
                            fresh: true,
                        },
                    )
                }
                Err(e) => (idx, WaveOut::Failed(e)),
            }
        });
    for (idx, out) in computed {
        let pos = wave.iter().position(|&i| i == idx).expect("wave member");
        outs[pos] = Some(out);
    }

    // Fill the cache for every completed step — including siblings of a
    // failed one, which is what lets a step-granularity retry reuse them.
    if let Some(cache) = cache {
        for (pos, &idx) in wave.iter().enumerate() {
            if let Some(WaveOut::Diff { diff, fresh: true, .. }) = &outs[pos] {
                cache.insert(keys[idx], CachedOutput::Diff(diff.clone()));
            }
        }
    }

    // Deterministic merge: apply diffs, checks, and trace events in step
    // index order; the first failure in that order is the authoritative
    // error (identical to what sequential execution raises first).
    for (pos, &idx) in wave.iter().enumerate() {
        let step = &program.steps[idx];
        let line = step_line(idx);
        match outs[pos].take().expect("wave member resolved") {
            WaveOut::Failed(e) => return Err(e),
            WaveOut::Diff { diff, micros, .. } => {
                let rows_in = train.n_rows();
                apply_table_diff(train, &diff.train, line)?;
                apply_table_diff(test, &diff.test, line)?;
                pending[idx] =
                    Some(check_and_record(step, line, rows_in, micros, train, test, cfg)?);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn program(src: &str) -> Program {
        parse(src).unwrap()
    }

    #[test]
    fn exec_mode_parses_and_renders() {
        assert_eq!(ExecMode::parse("seq").unwrap(), ExecMode::Seq);
        assert_eq!(ExecMode::parse("sequential").unwrap(), ExecMode::Seq);
        assert_eq!(ExecMode::parse(" dag ").unwrap(), ExecMode::Dag);
        assert!(ExecMode::parse("threads").is_err());
        assert_eq!(ExecMode::Seq.to_string(), "seq");
        assert_eq!(ExecMode::Dag.to_string(), "dag");
    }

    #[test]
    fn independent_named_steps_have_no_edges() {
        let p = program(
            "pipeline {\n  impute \"a\" strategy mean;\n  impute \"b\" strategy mean;\n  scale \"c\" method standard;\n  model classifier decision_tree target \"y\";\n}",
        );
        let dag = StepDag::compile(&p);
        assert!(dag.nodes[0].deps.is_empty());
        assert!(dag.nodes[1].deps.is_empty());
        assert!(dag.nodes[2].deps.is_empty());
        // The model is a barrier: it depends on everything before it.
        assert_eq!(dag.nodes[3].deps, vec![0, 1, 2]);
        assert!(dag.nodes[3].barrier);
    }

    #[test]
    fn column_conflicts_create_edges() {
        let p = program(
            "pipeline {\n  impute \"a\" strategy mean;\n  scale \"a\" method standard;\n  encode \"a\" method onehot;\n  model classifier decision_tree target \"y\";\n}",
        );
        let dag = StepDag::compile(&p);
        assert_eq!(dag.nodes[1].deps, vec![0]); // scale a after impute a
        assert_eq!(dag.nodes[2].deps, vec![0, 1]); // encode a after both
    }

    #[test]
    fn encoder_prefixes_conflict_with_generated_consumers() {
        let p = program(
            "pipeline {\n  encode \"c\" method onehot;\n  impute \"c=red\" strategy mean;\n  model classifier decision_tree target \"y\";\n}",
        );
        let dag = StepDag::compile(&p);
        // Imputing a generated one-hot column depends on the encoder.
        assert_eq!(dag.nodes[1].deps, vec![0]);
    }

    #[test]
    fn wildcards_and_row_changers_are_barriers() {
        let p = program(
            "pipeline {\n  impute \"a\" strategy mean;\n  drop_null_rows;\n  impute \"b\" strategy mean;\n  model classifier decision_tree target \"y\";\n}",
        );
        let dag = StepDag::compile(&p);
        assert!(dag.nodes[1].barrier);
        assert_eq!(dag.nodes[1].deps, vec![0]);
        assert_eq!(dag.nodes[2].deps, vec![1]); // after the barrier only
    }

    #[test]
    fn validate_finds_missing_inputs_and_orders_topologically() {
        let p = program(
            "pipeline {\n  impute \"a\" strategy mean;\n  impute \"ghost\" strategy mean;\n  model classifier decision_tree target \"y\";\n}",
        );
        let dag = StepDag::compile(&p);
        let cols = vec!["a".to_string(), "y".to_string()];
        assert_eq!(
            dag.validate(&cols),
            Err(DagError::MissingInput { step: 1, column: "ghost".into() })
        );
        let ok = program(
            "pipeline {\n  impute \"a\" strategy mean;\n  model classifier decision_tree target \"y\";\n}",
        );
        let order = StepDag::compile(&ok).validate(&cols).unwrap();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn topo_order_rejects_cycles_and_dangling_deps() {
        assert_eq!(topo_order(&[vec![1], vec![0]]), Err(DagError::Cycle { nodes: vec![0, 1] }));
        assert_eq!(topo_order(&[vec![0]]), Err(DagError::Cycle { nodes: vec![0] }));
        assert_eq!(topo_order(&[vec![], vec![7]]), Err(DagError::DanglingDep { step: 1, dep: 7 }));
        assert_eq!(topo_order(&[vec![], vec![0], vec![0]]), Ok(vec![0, 1, 2]));
    }

    #[test]
    fn dag_json_export_names_nodes_and_edges() {
        let p = program(
            "pipeline {\n  impute \"a\" strategy mean;\n  model classifier decision_tree target \"y\";\n}",
        );
        let json = StepDag::compile(&p).to_json();
        assert!(json.contains("\"op\":\"impute\""), "{json}");
        assert!(json.contains("\"barrier\":true"), "{json}");
        assert!(json.contains("\"deps\":[0]"), "{json}");
    }

    #[test]
    fn colset_prefix_intersections() {
        let enc = ColSet { names: vec!["c".into()], prefixes: vec!["c=".into()], wildcard: false };
        assert!(enc.contains("c=red"));
        assert!(!enc.contains("cx"));
        assert!(enc.intersects(&ColSet::one("c=blue")));
        assert!(!enc.intersects(&ColSet::one("d")));
        assert!(enc.intersects(&ColSet::all()));
        assert!(!ColSet::default().intersects(&ColSet::all()));
    }
}

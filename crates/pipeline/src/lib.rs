//! # catdb-pipeline — the pipeline DSL, parser, executor, and error taxonomy
//!
//! Generated data-centric ML pipelines are programs in a small declarative
//! DSL (the Rust stand-in for the Python/sklearn scripts the original CatDB
//! emits). This crate provides:
//!
//! * the [`Program`] / [`Step`] AST and its canonical text rendering,
//! * a [`parse`]r that classifies malformed text into syntax-class errors,
//! * an [`execute`] interpreter over [`catdb_table::Table`]s with
//!   fail-loudly semantics (NaNs, string features, hallucinated columns,
//!   memory blow-ups, model limits),
//! * the paper's 23-type [`ErrorKind`] taxonomy in three categories
//!   (KB / SE / RE) that drives CatDB's error management, and
//! * a simulated package [`Environment`] for knowledge-base error repair.
//!
//! ```
//! use catdb_pipeline::{parse, execute, Environment, ExecutionConfig};
//! use catdb_ml::TaskKind;
//! use catdb_table::{Table, Column};
//!
//! let t = Table::from_columns(vec![
//!     ("x", Column::from_f64((0..60).map(f64::from).collect())),
//!     ("y", Column::from_strings((0..60).map(|i| if i < 30 {"n"} else {"p"}).collect::<Vec<_>>())),
//! ]).unwrap();
//! let (train, test) = t.train_test_split(0.7, 0).unwrap();
//! let program = parse("pipeline {\n  model classifier decision_tree target \"y\";\n}").unwrap();
//! let cfg = ExecutionConfig::new(TaskKind::BinaryClassification);
//! let eval = execute(&program, &train, &test, &Environment::default(), &cfg).unwrap();
//! assert!(eval.test.headline() > 0.9);
//! ```

mod ast;
mod dag;
mod environment;
mod errors;
mod executor;
mod parser;

pub use ast::{
    ColumnRef, EncodeSpec, ImputeSpec, ModelAlgo, ModelFamily, ModelSpec, OutlierSpec, Program,
    Step,
};
pub use dag::{
    topo_order, ColSet, DagError, DagNode, ExecMode, StepCache, StepDag, COUNTER_DAG_WAVES,
    COUNTER_STEP_CACHE_HITS, COUNTER_STEP_CACHE_MISSES, SPAN_DAG_SCHEDULE,
};
pub use environment::{required_packages, step_package, Environment, INSTALLABLE, PREINSTALLED};
pub use errors::{ErrorCategory, ErrorKind, PipelineError};
pub use executor::{execute, Evaluation, ExecutionConfig, TaskMetrics};
pub use parser::parse;

//! Abstract syntax of the pipeline DSL.
//!
//! Generated pipelines are *programs* in a small declarative language (the
//! Rust stand-in for the Python scripts the original CatDB generates). A
//! program is an ordered list of steps ending in exactly one model step.
//! Programs render back to canonical text (`Display`), which is what gets
//! embedded in `<CODE>` blocks of chain and error-fix prompts.

use catdb_ml::{AugmentMethod, ScaleMethod, TaskKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A column reference: one named column or "all applicable columns".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnRef {
    Named(String),
    All,
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnRef::Named(n) => write!(f, "\"{n}\""),
            ColumnRef::All => write!(f, "*"),
        }
    }
}

/// Imputation strategies at the DSL level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ImputeSpec {
    Mean,
    Median,
    MostFrequent,
    ConstantNum(f64),
    ConstantStr(String),
}

impl fmt::Display for ImputeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImputeSpec::Mean => write!(f, "mean"),
            ImputeSpec::Median => write!(f, "median"),
            ImputeSpec::MostFrequent => write!(f, "most_frequent"),
            ImputeSpec::ConstantNum(v) => write!(f, "constant {v}"),
            ImputeSpec::ConstantStr(s) => write!(f, "constant \"{s}\""),
        }
    }
}

/// Encoding methods at the DSL level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EncodeSpec {
    OneHot,
    Ordinal,
    KHot { separator: String },
    Hash { buckets: usize },
}

impl fmt::Display for EncodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeSpec::OneHot => write!(f, "onehot"),
            EncodeSpec::Ordinal => write!(f, "ordinal"),
            EncodeSpec::KHot { separator } => write!(f, "khot sep \"{separator}\""),
            EncodeSpec::Hash { buckets } => write!(f, "hash buckets {buckets}"),
        }
    }
}

/// Outlier handling at the DSL level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OutlierSpec {
    Iqr { factor: f64 },
    ZScore { factor: f64 },
    Lof { k: usize, factor: f64 },
}

impl fmt::Display for OutlierSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutlierSpec::Iqr { factor } => write!(f, "iqr factor {factor}"),
            OutlierSpec::ZScore { factor } => write!(f, "zscore factor {factor}"),
            OutlierSpec::Lof { k, factor } => write!(f, "lof k {k} factor {factor}"),
        }
    }
}

/// Model families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelFamily {
    Classifier,
    Regressor,
}

impl ModelFamily {
    pub fn label(self) -> &'static str {
        match self {
            ModelFamily::Classifier => "classifier",
            ModelFamily::Regressor => "regressor",
        }
    }

    /// Whether this family serves the given task.
    pub fn matches_task(self, task: TaskKind) -> bool {
        match self {
            ModelFamily::Classifier => task.is_classification(),
            ModelFamily::Regressor => task == TaskKind::Regression,
        }
    }
}

/// Learning algorithms available to generated pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelAlgo {
    RandomForest,
    GradientBoosting,
    DecisionTree,
    Logistic,
    Ridge,
    Knn,
    GaussianNb,
    TabPfn,
}

impl ModelAlgo {
    pub fn label(self) -> &'static str {
        match self {
            ModelAlgo::RandomForest => "random_forest",
            ModelAlgo::GradientBoosting => "gradient_boosting",
            ModelAlgo::DecisionTree => "decision_tree",
            ModelAlgo::Logistic => "logistic",
            ModelAlgo::Ridge => "ridge",
            ModelAlgo::Knn => "knn",
            ModelAlgo::GaussianNb => "gaussian_nb",
            ModelAlgo::TabPfn => "tabpfn",
        }
    }

    pub fn parse(s: &str) -> Option<ModelAlgo> {
        Some(match s {
            "random_forest" => ModelAlgo::RandomForest,
            "gradient_boosting" => ModelAlgo::GradientBoosting,
            "decision_tree" => ModelAlgo::DecisionTree,
            "logistic" => ModelAlgo::Logistic,
            "ridge" => ModelAlgo::Ridge,
            "knn" => ModelAlgo::Knn,
            "gaussian_nb" => ModelAlgo::GaussianNb,
            "tabpfn" => ModelAlgo::TabPfn,
            _ => return None,
        })
    }

    /// Whether the algorithm supports the model family.
    pub fn supports(self, family: ModelFamily) -> bool {
        match self {
            ModelAlgo::Logistic | ModelAlgo::GaussianNb | ModelAlgo::TabPfn => {
                family == ModelFamily::Classifier
            }
            ModelAlgo::Ridge => family == ModelFamily::Regressor,
            _ => true,
        }
    }
}

/// The final training step of a pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    pub family: ModelFamily,
    pub algo: ModelAlgo,
    pub target: String,
    /// Named numeric hyper-parameters (trees, depth, l2, k, seed, ...).
    pub params: Vec<(String, f64)>,
}

impl ModelSpec {
    pub fn param(&self, name: &str) -> Option<f64> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// One pipeline step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// Declare a package dependency ("import"); unavailable packages raise
    /// KB-class errors that the knowledge base resolves by installation.
    Require {
        package: String,
    },
    Impute {
        column: ColumnRef,
        strategy: ImputeSpec,
    },
    Scale {
        column: ColumnRef,
        method: ScaleMethod,
    },
    Encode {
        column: ColumnRef,
        method: EncodeSpec,
    },
    Drop {
        column: String,
    },
    DropHighMissing {
        threshold: f64,
    },
    DropConstant,
    Dedup {
        approximate: bool,
    },
    DropNullRows,
    Outliers {
        column: ColumnRef,
        method: OutlierSpec,
    },
    Augment {
        method: AugmentMethod,
        target: String,
    },
    Rebalance {
        target: String,
    },
    SelectTopK {
        k: usize,
        target: String,
    },
    Model(ModelSpec),
}

fn scale_label(m: ScaleMethod) -> &'static str {
    m.label()
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Require { package } => write!(f, "require \"{package}\";"),
            Step::Impute { column, strategy } => {
                write!(f, "impute {column} strategy {strategy};")
            }
            Step::Scale { column, method } => {
                write!(f, "scale {column} method {};", scale_label(*method))
            }
            Step::Encode { column, method } => write!(f, "encode {column} method {method};"),
            Step::Drop { column } => write!(f, "drop \"{column}\";"),
            Step::DropHighMissing { threshold } => {
                write!(f, "drop_high_missing threshold {threshold};")
            }
            Step::DropConstant => write!(f, "drop_constant;"),
            Step::Dedup { approximate } => {
                write!(f, "dedup {};", if *approximate { "approx" } else { "exact" })
            }
            Step::DropNullRows => write!(f, "drop_null_rows;"),
            Step::Outliers { column, method } => {
                write!(f, "outliers {column} method {method};")
            }
            Step::Augment { method, target } => {
                write!(f, "augment method {} target \"{target}\";", method.label())
            }
            Step::Rebalance { target } => write!(f, "rebalance target \"{target}\";"),
            Step::SelectTopK { k, target } => {
                write!(f, "select_topk {k} target \"{target}\";")
            }
            Step::Model(spec) => {
                write!(
                    f,
                    "model {} {} target \"{}\"",
                    spec.family.label(),
                    spec.algo.label(),
                    spec.target
                )?;
                for (name, value) in &spec.params {
                    write!(f, " {name} {value}")?;
                }
                write!(f, ";")
            }
        }
    }
}

/// A full pipeline program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    pub steps: Vec<Step>,
}

impl Program {
    pub fn new(steps: Vec<Step>) -> Program {
        Program { steps }
    }

    /// The model step, if present (valid programs have exactly one, last).
    pub fn model(&self) -> Option<&ModelSpec> {
        self.steps.iter().rev().find_map(|s| match s {
            Step::Model(m) => Some(m),
            _ => None,
        })
    }

    /// Count of steps of each coarse stage, for cost / analysis reporting.
    pub fn stage_counts(&self) -> (usize, usize, usize) {
        let mut pre = 0;
        let mut fe = 0;
        let mut model = 0;
        for s in &self.steps {
            match s {
                Step::Model(_) => model += 1,
                Step::Encode { .. } | Step::SelectTopK { .. } => fe += 1,
                _ => pre += 1,
            }
        }
        (pre, fe, model)
    }

    /// Canonical source listing with 1-based line numbers matching the
    /// executor's error locations: line 1 is `pipeline {`, each step is on
    /// its own line, and the last line is `}`.
    pub fn render(&self) -> String {
        let mut out = String::from("pipeline {\n");
        for step in &self.steps {
            out.push_str("  ");
            out.push_str(&step.to_string());
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_stable() {
        let p = Program::new(vec![
            Step::Require { package: "tabular".into() },
            Step::Impute { column: ColumnRef::Named("age".into()), strategy: ImputeSpec::Mean },
            Step::Model(ModelSpec {
                family: ModelFamily::Classifier,
                algo: ModelAlgo::RandomForest,
                target: "y".into(),
                params: vec![("trees".into(), 50.0)],
            }),
        ]);
        let text = p.render();
        assert!(text.starts_with("pipeline {\n"));
        assert!(text.contains("impute \"age\" strategy mean;"));
        assert!(text.contains("model classifier random_forest target \"y\" trees 50;"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn stage_counts_partition_steps() {
        let p = Program::new(vec![
            Step::DropConstant,
            Step::Encode { column: ColumnRef::All, method: EncodeSpec::OneHot },
            Step::Model(ModelSpec {
                family: ModelFamily::Regressor,
                algo: ModelAlgo::Ridge,
                target: "y".into(),
                params: vec![],
            }),
        ]);
        assert_eq!(p.stage_counts(), (1, 1, 1));
        assert_eq!(p.model().unwrap().algo, ModelAlgo::Ridge);
    }

    #[test]
    fn algo_family_compatibility() {
        assert!(ModelAlgo::Logistic.supports(ModelFamily::Classifier));
        assert!(!ModelAlgo::Logistic.supports(ModelFamily::Regressor));
        assert!(!ModelAlgo::Ridge.supports(ModelFamily::Classifier));
        assert!(ModelAlgo::RandomForest.supports(ModelFamily::Regressor));
        assert_eq!(ModelAlgo::parse("tabpfn"), Some(ModelAlgo::TabPfn));
        assert_eq!(ModelAlgo::parse("nope"), None);
    }
}

//! Simulated execution environment: the "basic, pre-installed environment"
//! the paper runs pipelines in, plus the package index the CatDB knowledge
//! base installs from when a pipeline hits a missing-package error.

use crate::ast::{EncodeSpec, ModelAlgo, OutlierSpec, Step};
use crate::errors::{ErrorKind, PipelineError};
use std::collections::{HashMap, HashSet};

/// Packages pre-installed in every pipeline environment (the "basic,
/// pre-installed environment" — the sklearn-equivalent toolbox).
pub const PREINSTALLED: &[&str] =
    &["tabular", "preprocessing", "models", "text_features", "outlier_tools"];

/// Packages the (simulated) index can install on demand (the xgboost /
/// tabpfn / imblearn equivalents the KB installs when pipelines need
/// them).
pub const INSTALLABLE: &[&str] = &["boosting", "tabpfn", "imbalanced"];

/// A mutable package environment. Each generation session gets a fresh one;
/// the knowledge base mutates it when it repairs KB-class errors.
#[derive(Debug, Clone)]
pub struct Environment {
    installed: HashMap<String, String>, // name → version
    index: HashMap<String, String>,     // name → latest version
}

impl Default for Environment {
    fn default() -> Self {
        let mut installed = HashMap::new();
        for p in PREINSTALLED {
            installed.insert(p.to_string(), "1.2.0".to_string());
        }
        let mut index = HashMap::new();
        for p in PREINSTALLED.iter().chain(INSTALLABLE) {
            index.insert(p.to_string(), "1.2.0".to_string());
        }
        Environment { installed, index }
    }
}

impl Environment {
    pub fn is_installed(&self, package: &str) -> bool {
        self.installed.contains_key(package)
    }

    /// Install a package from the index; `Err` when the package does not
    /// exist (a hallucinated dependency the KB cannot fix locally).
    pub fn install(&mut self, package: &str) -> Result<(), PipelineError> {
        match self.index.get(package) {
            Some(version) => {
                self.installed.insert(package.to_string(), version.clone());
                Ok(())
            }
            None => Err(PipelineError::new(
                ErrorKind::MissingPackage,
                format!("package '{package}' not found in index"),
            )),
        }
    }

    /// Reinstall at the index version (resolves version-pin mismatches).
    pub fn reinstall_latest(&mut self, package: &str) -> Result<(), PipelineError> {
        self.install(package)
    }

    pub fn installed_version(&self, package: &str) -> Option<&str> {
        self.installed.get(package).map(|s| s.as_str())
    }

    /// Resolve a `require "pkg"` or `require "pkg==version"` declaration.
    pub fn resolve_requirement(&self, requirement: &str) -> Result<(), PipelineError> {
        let (name, pinned) = match requirement.split_once("==") {
            Some((n, v)) => (n, Some(v)),
            None => (requirement, None),
        };
        match self.installed.get(name) {
            None => Err(PipelineError::new(
                ErrorKind::MissingPackage,
                format!("No module named '{name}'"),
            )),
            Some(version) => match pinned {
                Some(pin) if pin != version => Err(PipelineError::new(
                    ErrorKind::PackageVersionMismatch,
                    format!("package '{name}' {version} installed but {pin} required"),
                )),
                _ => Ok(()),
            },
        }
    }
}

/// The package a step "imports". `None` needs nothing beyond the language.
pub fn step_package(step: &Step) -> Option<&'static str> {
    match step {
        Step::Require { .. } => None,
        Step::Impute { .. }
        | Step::Scale { .. }
        | Step::Drop { .. }
        | Step::DropHighMissing { .. }
        | Step::DropConstant
        | Step::Dedup { .. }
        | Step::DropNullRows
        | Step::SelectTopK { .. } => Some("preprocessing"),
        Step::Encode { method, .. } => match method {
            EncodeSpec::KHot { .. } | EncodeSpec::Hash { .. } => Some("text_features"),
            _ => Some("preprocessing"),
        },
        Step::Outliers { method, .. } => match method {
            OutlierSpec::Lof { .. } => Some("outlier_tools"),
            _ => Some("preprocessing"),
        },
        Step::Augment { .. } | Step::Rebalance { .. } => Some("imbalanced"),
        Step::Model(spec) => match spec.algo {
            ModelAlgo::GradientBoosting => Some("boosting"),
            ModelAlgo::TabPfn => Some("tabpfn"),
            _ => Some("models"),
        },
    }
}

/// All optional (non-preinstalled) packages a program needs, in order.
pub fn required_packages(steps: &[Step]) -> Vec<&'static str> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for step in steps {
        if let Some(pkg) = step_package(step) {
            if !PREINSTALLED.contains(&pkg) && seen.insert(pkg) {
                out.push(pkg);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ColumnRef, ModelFamily, ModelSpec};

    #[test]
    fn preinstalled_resolve_and_missing_fail() {
        let env = Environment::default();
        assert!(env.resolve_requirement("models").is_ok());
        let err = env.resolve_requirement("tabpfn").unwrap_err();
        assert_eq!(err.kind, ErrorKind::MissingPackage);
    }

    #[test]
    fn install_from_index_fixes_missing() {
        let mut env = Environment::default();
        env.install("tabpfn").unwrap();
        assert!(env.resolve_requirement("tabpfn").is_ok());
        assert!(env.install("hallucinated_pkg").is_err());
    }

    #[test]
    fn version_pin_mismatch_detected_and_fixed_by_reinstall() {
        let mut env = Environment::default();
        let err = env.resolve_requirement("models==0.9.0").unwrap_err();
        assert_eq!(err.kind, ErrorKind::PackageVersionMismatch);
        env.reinstall_latest("models").unwrap();
        assert!(env.resolve_requirement("models==1.2.0").is_ok());
    }

    #[test]
    fn step_package_mapping() {
        let model = Step::Model(ModelSpec {
            family: ModelFamily::Classifier,
            algo: ModelAlgo::TabPfn,
            target: "y".into(),
            params: vec![],
        });
        assert_eq!(step_package(&model), Some("tabpfn"));
        let khot = Step::Encode {
            column: ColumnRef::All,
            method: EncodeSpec::KHot { separator: ",".into() },
        };
        assert_eq!(step_package(&khot), Some("text_features"));
        assert_eq!(required_packages(&[model, khot]), vec!["tabpfn"]);
    }
}

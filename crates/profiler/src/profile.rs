//! Algorithm 1 — PROFILING(D, τ₁): extract per-column metadata, feature
//! types, dependencies (via embeddings), samples, and statistics.

use crate::embedding::{inclusion_score, ColumnEmbedding};
use crate::types::{ColumnProfile, DataProfile, FeatureType, NumericStats};
use catdb_table::{Column, DataType, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::time::Instant;

/// Profiling options.
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// τ₁ — samples stored per non-categorical column.
    pub n_samples: usize,
    /// Distinct-ratio threshold under which a column counts as categorical.
    pub categorical_distinct_ratio: f64,
    /// Absolute distinct-count cap for categoricals.
    pub categorical_max_distinct: usize,
    /// Cosine-similarity threshold for reporting column similarities.
    pub similarity_threshold: f64,
    /// Inclusion-score threshold for reporting inclusion dependencies.
    pub inclusion_threshold: f64,
    /// Worker threads for per-column extraction.
    pub n_threads: usize,
    pub seed: u64,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            n_samples: 10,
            categorical_distinct_ratio: 0.05,
            categorical_max_distinct: 50,
            similarity_threshold: 0.5,
            inclusion_threshold: 0.75,
            n_threads: 4,
            seed: 1234,
        }
    }
}

/// Distinct rendered values of the column's non-null entries, plus the
/// frequency ratio of the most common value.
fn distinct_values(col: &Column) -> (BTreeSet<String>, f64) {
    let mut counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut non_null = 0usize;
    for i in 0..col.len() {
        if !col.is_null_at(i) {
            *counts.entry(col.get(i).render()).or_insert(0) += 1;
            non_null += 1;
        }
    }
    let top = counts.values().copied().max().unwrap_or(0);
    let ratio = if non_null == 0 { 0.0 } else { top as f64 / non_null as f64 };
    (counts.into_keys().collect(), ratio)
}

fn numeric_stats(col: &Column) -> Option<NumericStats> {
    let mut vals: Vec<f64> = col.to_f64_vec().into_iter().flatten().collect();
    if vals.is_empty() {
        return None;
    }
    vals.sort_by(|a, b| a.total_cmp(b));
    let n = vals.len() as f64;
    let mean = vals.iter().sum::<f64>() / n;
    let std = (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt();
    let mid = vals.len() / 2;
    let median =
        if vals.len().is_multiple_of(2) { (vals[mid - 1] + vals[mid]) / 2.0 } else { vals[mid] };
    Some(NumericStats { min: vals[0], max: *vals.last().expect("non-empty"), mean, median, std })
}

/// Heuristic feature-type detection for the initial (pre-LLM) profile.
fn detect_feature_type(
    col: &Column,
    distinct: usize,
    non_null: usize,
    opts: &ProfileOptions,
) -> FeatureType {
    match col.dtype() {
        DataType::Bool => FeatureType::Boolean,
        DataType::Int | DataType::Float => {
            let ratio = if non_null == 0 { 0.0 } else { distinct as f64 / non_null as f64 };
            if distinct <= 2 {
                FeatureType::Boolean
            } else if distinct <= opts.categorical_max_distinct
                && ratio <= opts.categorical_distinct_ratio
            {
                // Few distinct integers over many rows: a coded categorical
                // (the paper's "7 distinct integer values" example).
                FeatureType::Categorical
            } else {
                FeatureType::Numerical
            }
        }
        DataType::Str => {
            let ratio = if non_null == 0 { 0.0 } else { distinct as f64 / non_null as f64 };
            if distinct <= opts.categorical_max_distinct && ratio <= 0.5 {
                FeatureType::Categorical
            } else {
                // High-cardinality text: sentence candidates for the
                // LLM-assisted refinement (which may split them into
                // categorical / list features).
                FeatureType::Sentence
            }
        }
    }
}

/// Pearson |correlation| between two numeric columns over co-present rows.
fn pearson_abs(a: &Column, b: &Column) -> f64 {
    let av = a.to_f64_vec();
    let bv = b.to_f64_vec();
    let pairs: Vec<(f64, f64)> =
        av.iter().zip(&bv).filter_map(|(x, y)| Some(((*x)?, (*y)?))).collect();
    if pairs.len() < 3 {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in &pairs {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx < 1e-12 || vy < 1e-12 {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())).abs()
}

struct PartialProfile {
    idx: usize,
    distinct: BTreeSet<String>,
    embedding: ColumnEmbedding,
    profile: ColumnProfile,
    micros: u64,
}

/// Run Algorithm 1 over a table.
pub fn profile_table(name: &str, table: &Table, opts: &ProfileOptions) -> DataProfile {
    let _span = catdb_trace::span("profile_table");
    let started = Instant::now();
    let n_rows = table.n_rows();
    let fields: Vec<(usize, String)> =
        table.schema().names().iter().enumerate().map(|(i, n)| (i, n.to_string())).collect();

    // Per-column extraction, parallel across a worker pool (profiling large
    // wide tables is the dominant offline cost — Figure 9a).
    let n_threads = opts.n_threads.max(1).min(fields.len().max(1));
    let chunks: Vec<Vec<(usize, String)>> = {
        let mut c: Vec<Vec<(usize, String)>> = vec![Vec::new(); n_threads];
        for (i, f) in fields.into_iter().enumerate() {
            c[i % n_threads].push(f);
        }
        c.retain(|v| !v.is_empty());
        c
    };

    let mut partials: Vec<Option<PartialProfile>> = Vec::new();
    partials.resize_with(table.n_cols(), || None);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in &chunks {
            let handle = scope.spawn(move |_| {
                chunk
                    .iter()
                    .map(|(idx, name)| {
                        let col_started = Instant::now();
                        let col = table.column_at(*idx);
                        let (distinct, top_value_ratio) = distinct_values(col);
                        let missing = col.null_count();
                        let non_null = n_rows - missing;
                        let feature_type = detect_feature_type(col, distinct.len(), non_null, opts);
                        let embedding = ColumnEmbedding::from_distinct_values(
                            distinct.iter().map(|s| s.as_str()),
                        );
                        // Samples: all distinct values for categoricals,
                        // else τ₁ random values (Algorithm 1, line 10).
                        let samples = if matches!(
                            feature_type,
                            FeatureType::Categorical | FeatureType::Boolean
                        ) {
                            distinct.iter().cloned().collect()
                        } else {
                            let mut rng = StdRng::seed_from_u64(opts.seed ^ *idx as u64);
                            let mut pool: Vec<String> = distinct.iter().cloned().collect();
                            pool.shuffle(&mut rng);
                            pool.truncate(opts.n_samples);
                            pool
                        };
                        let statistics = if feature_type == FeatureType::Numerical {
                            numeric_stats(col)
                        } else {
                            None
                        };
                        let profile = ColumnProfile {
                            name: name.clone(),
                            data_type: col.dtype(),
                            feature_type,
                            n_rows,
                            distinct_count: distinct.len(),
                            distinct_percentage: if non_null == 0 {
                                0.0
                            } else {
                                distinct.len() as f64 / non_null as f64
                            },
                            missing_count: missing,
                            missing_percentage: if n_rows == 0 {
                                0.0
                            } else {
                                missing as f64 / n_rows as f64
                            },
                            top_value_ratio,
                            inclusion_dependencies: Vec::new(),
                            similarities: Vec::new(),
                            correlations: Vec::new(),
                            samples,
                            statistics,
                        };
                        PartialProfile {
                            idx: *idx,
                            distinct,
                            embedding,
                            profile,
                            micros: col_started.elapsed().as_micros() as u64,
                        }
                    })
                    .collect::<Vec<_>>()
            });
            handles.push(handle);
        }
        for h in handles {
            for p in h.join().expect("profiling worker panicked") {
                let idx = p.idx;
                partials[idx] = Some(p);
            }
        }
    })
    .expect("profiling scope failed");
    let partials: Vec<PartialProfile> =
        partials.into_iter().map(|p| p.expect("all columns profiled")).collect();

    // Emit after the parallel join, in column order, so the event stream is
    // deterministic regardless of worker interleaving.
    for p in &partials {
        catdb_trace::emit(catdb_trace::TraceEvent::ProfileColumn {
            column: p.profile.name.clone(),
            feature_type: p.profile.feature_type.label().to_string(),
            micros: p.micros,
        });
    }

    // Pairwise pass: similarities and inclusion dependencies from the
    // embeddings, correlations among numeric columns.
    let mut profiles: Vec<ColumnProfile> = partials.iter().map(|p| p.profile.clone()).collect();
    for i in 0..partials.len() {
        for j in 0..partials.len() {
            if i == j {
                continue;
            }
            let (a, b) = (&partials[i], &partials[j]);
            if i < j {
                let cos = a.embedding.cosine(&b.embedding);
                if cos >= opts.similarity_threshold {
                    profiles[i].similarities.push((b.profile.name.clone(), cos));
                    profiles[j].similarities.push((a.profile.name.clone(), cos));
                }
                if a.profile.data_type.is_numeric() && b.profile.data_type.is_numeric() {
                    let corr = pearson_abs(table.column_at(a.idx), table.column_at(b.idx));
                    if corr >= 0.3 {
                        profiles[i].correlations.push((b.profile.name.clone(), corr));
                        profiles[j].correlations.push((a.profile.name.clone(), corr));
                    }
                }
            }
            // Inclusion: is column i's value set inside column j's?
            let score =
                inclusion_score(&a.embedding, &b.embedding, a.distinct.len(), b.distinct.len());
            if score >= opts.inclusion_threshold && a.distinct.len() >= 2 {
                profiles[i].inclusion_dependencies.push(b.profile.name.clone());
            }
        }
        profiles[i].similarities.sort_by(|x, y| y.1.total_cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
        profiles[i].correlations.sort_by(|x, y| y.1.total_cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
    }

    DataProfile {
        dataset_name: name.to_string(),
        n_rows,
        columns: profiles,
        elapsed_seconds: started.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdb_table::Column;

    fn salary_like_table() -> Table {
        let n = 200;
        let gender: Vec<&str> = (0..n).map(|i| ["Male", "Female", "F", "M"][i % 4]).collect();
        let exp: Vec<String> =
            (0..n).map(|i| format!("{} years of experience at firm {i}", i % 37)).collect();
        let age: Vec<Option<f64>> =
            (0..n).map(|i| if i % 10 == 0 { None } else { Some(20.0 + (i % 40) as f64) }).collect();
        let salary: Vec<f64> = (0..n).map(|i| 50_000.0 + 1000.0 * (i % 40) as f64).collect();
        let level: Vec<i64> = (0..n).map(|i| (i % 5) as i64).collect();
        Table::from_columns(vec![
            ("gender", Column::from_strings(gender)),
            ("experience", Column::from_strings(exp)),
            ("age", Column::Float(age)),
            ("salary", Column::from_f64(salary)),
            ("level", Column::from_i64(level)),
        ])
        .unwrap()
    }

    #[test]
    fn detects_feature_types() {
        let t = salary_like_table();
        let p = profile_table("salary", &t, &ProfileOptions::default());
        assert_eq!(p.column("gender").unwrap().feature_type, FeatureType::Categorical);
        assert_eq!(p.column("experience").unwrap().feature_type, FeatureType::Sentence);
        assert_eq!(p.column("age").unwrap().feature_type, FeatureType::Numerical);
        assert_eq!(p.column("level").unwrap().feature_type, FeatureType::Categorical);
    }

    #[test]
    fn missing_and_distinct_percentages() {
        let t = salary_like_table();
        let p = profile_table("salary", &t, &ProfileOptions::default());
        let age = p.column("age").unwrap();
        assert_eq!(age.missing_count, 20);
        assert!((age.missing_percentage - 0.1).abs() < 1e-9);
        let gender = p.column("gender").unwrap();
        assert_eq!(gender.distinct_count, 4);
    }

    #[test]
    fn categorical_samples_hold_all_distinct_values() {
        let t = salary_like_table();
        let p = profile_table("salary", &t, &ProfileOptions::default());
        let gender = p.column("gender").unwrap();
        assert_eq!(gender.samples.len(), 4);
        let exp = p.column("experience").unwrap();
        assert_eq!(exp.samples.len(), ProfileOptions::default().n_samples);
    }

    #[test]
    fn statistics_only_for_numerical() {
        let t = salary_like_table();
        let p = profile_table("salary", &t, &ProfileOptions::default());
        assert!(p.column("salary").unwrap().statistics.is_some());
        assert!(p.column("gender").unwrap().statistics.is_none());
        let stats = p.column("salary").unwrap().statistics.as_ref().unwrap();
        assert_eq!(stats.min, 50_000.0);
        assert_eq!(stats.max, 89_000.0);
    }

    #[test]
    fn correlated_columns_are_reported() {
        let t = salary_like_table();
        let p = profile_table("salary", &t, &ProfileOptions::default());
        let age_corr = &p.column("age").unwrap().correlations;
        assert!(
            age_corr.iter().any(|(n, c)| n == "salary" && *c > 0.9),
            "age–salary correlation missing: {age_corr:?}"
        );
    }

    #[test]
    fn inclusion_dependency_between_key_columns() {
        // fk values ⊂ pk values.
        let pk: Vec<String> = (0..100).map(|i| format!("k{i}")).collect();
        let fk: Vec<String> = (0..100).map(|i| format!("k{}", i % 20)).collect();
        let t = Table::from_columns(vec![
            ("pk", Column::from_strings(pk)),
            ("fk", Column::from_strings(fk)),
        ])
        .unwrap();
        let p = profile_table("keys", &t, &ProfileOptions::default());
        assert!(p.column("fk").unwrap().inclusion_dependencies.contains(&"pk".to_string()));
    }

    #[test]
    fn profiling_is_deterministic() {
        let t = salary_like_table();
        let a = profile_table("s", &t, &ProfileOptions::default());
        let b = profile_table("s", &t, &ProfileOptions::default());
        for (ca, cb) in a.columns.iter().zip(&b.columns) {
            assert_eq!(ca.samples, cb.samples);
            assert_eq!(ca.similarities, cb.similarities);
        }
    }

    #[test]
    fn type_distribution_counts() {
        let t = salary_like_table();
        let p = profile_table("salary", &t, &ProfileOptions::default());
        let dist = p.feature_type_distribution();
        let total: usize = dist.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 5);
    }
}

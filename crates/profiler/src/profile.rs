//! Algorithm 1 — PROFILING(D, τ₁): extract per-column metadata, feature
//! types, dependencies (via embeddings), samples, and statistics.

use crate::embedding::{inclusion_score, ColumnEmbedding};
use crate::sketch::{ColumnSketch, PairMoments};
use crate::types::{ColumnProfile, DataProfile, FeatureType, NumericStats};
use catdb_table::{
    column_dict, table_fingerprint, ChunkedTable, Column, DataType, Table, ValueDict,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Counter name for profile-memo cache hits.
pub const COUNTER_PROFILE_MEMO_HITS: &str = "profile.memo_hits";
/// Counter name for profile-memo cache misses (full profiling runs).
pub const COUNTER_PROFILE_MEMO_MISSES: &str = "profile.memo_misses";
/// Counter: chunks folded into sketches by sketch-mode profiling.
pub const COUNTER_PROFILER_CHUNKS: &str = "profiler.chunks";
/// Counter: sketch merge operations (column + pair sketches).
pub const COUNTER_PROFILER_SKETCH_MERGES: &str = "profiler.sketch_merges";
/// High-water counter: largest resident chunk during sketch profiling.
pub const COUNTER_PROFILER_PEAK_CHUNK_RSS: &str = "profiler.peak_chunk_rss";
/// Span wrapping the processing of one chunk in sketch mode.
pub const SPAN_PROFILE_CHUNK: &str = "profile_chunk";

/// How `profile_table` computes its statistics.
///
/// `Exact` is the default and is bit-frozen: the golden tests pin its
/// output against the pre-sketch profiler. `Sketch` computes mergeable
/// single-pass sketches per `chunk_rows`-row chunk, merged in fixed
/// chunk order — byte-identical at any `CATDB_THREADS`, within
/// documented error bounds of exact, and the only mode usable on
/// out-of-core [`ChunkedTable`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileMode {
    #[default]
    Exact,
    Sketch {
        chunk_rows: usize,
    },
}

impl ProfileMode {
    /// Parse `exact`, `sketch`, or `sketch:<chunk_rows>`.
    pub fn parse(s: &str) -> std::result::Result<ProfileMode, String> {
        match s {
            "exact" => Ok(ProfileMode::Exact),
            "sketch" => Ok(ProfileMode::Sketch { chunk_rows: catdb_table::DEFAULT_CHUNK_ROWS }),
            other => match other.strip_prefix("sketch:") {
                Some(n) => {
                    let chunk_rows: usize =
                        n.parse().map_err(|_| format!("invalid chunk rows `{n}`"))?;
                    if chunk_rows == 0 {
                        return Err("chunk rows must be at least 1".to_string());
                    }
                    Ok(ProfileMode::Sketch { chunk_rows })
                }
                None => Err(format!(
                    "unknown profile mode `{other}` (expected `exact`, `sketch`, or \
                     `sketch:<chunk_rows>`)"
                )),
            },
        }
    }
}

impl fmt::Display for ProfileMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileMode::Exact => write!(f, "exact"),
            ProfileMode::Sketch { chunk_rows } => write!(f, "sketch:{chunk_rows}"),
        }
    }
}

/// Profiling options.
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// τ₁ — samples stored per non-categorical column.
    pub n_samples: usize,
    /// Distinct-ratio threshold under which a column counts as categorical.
    pub categorical_distinct_ratio: f64,
    /// Absolute distinct-count cap for categoricals.
    pub categorical_max_distinct: usize,
    /// Cosine-similarity threshold for reporting column similarities.
    pub similarity_threshold: f64,
    /// Inclusion-score threshold for reporting inclusion dependencies.
    pub inclusion_threshold: f64,
    /// Worker threads for per-column extraction.
    pub n_threads: usize,
    pub seed: u64,
    /// Exact in-memory statistics (default) or chunked sketches.
    pub mode: ProfileMode,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            n_samples: 10,
            categorical_distinct_ratio: 0.05,
            categorical_max_distinct: 50,
            similarity_threshold: 0.5,
            inclusion_threshold: 0.75,
            n_threads: 4,
            seed: 1234,
            mode: ProfileMode::Exact,
        }
    }
}

/// Dictionary over the column's non-null rendered values (sorted, same
/// order the old `BTreeSet<String>` iterated in), plus the frequency
/// ratio of the most common value. Each distinct raw value is rendered
/// exactly once, and the dictionary is shared across passes through the
/// content-addressed cache in `catdb-table`.
fn distinct_values(col: &Column) -> (Arc<ValueDict>, f64) {
    let dict = column_dict(col);
    let ratio =
        if dict.non_null() == 0 { 0.0 } else { dict.max_count() as f64 / dict.non_null() as f64 };
    (dict, ratio)
}

fn numeric_stats(col: &Column) -> Option<NumericStats> {
    let mut vals: Vec<f64> = col.to_f64_vec().into_iter().flatten().collect();
    if vals.is_empty() {
        return None;
    }
    vals.sort_by(|a, b| a.total_cmp(b));
    let n = vals.len() as f64;
    let mean = vals.iter().sum::<f64>() / n;
    let std = (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt();
    let mid = vals.len() / 2;
    let median =
        if vals.len().is_multiple_of(2) { (vals[mid - 1] + vals[mid]) / 2.0 } else { vals[mid] };
    Some(NumericStats { min: vals[0], max: *vals.last().expect("non-empty"), mean, median, std })
}

/// Heuristic feature-type detection for the initial (pre-LLM) profile.
/// Takes the dtype (not the column) so the sketch finalizer — which
/// never holds a column — shares the exact path's rules verbatim.
fn detect_feature_type(
    dtype: DataType,
    distinct: usize,
    non_null: usize,
    opts: &ProfileOptions,
) -> FeatureType {
    match dtype {
        DataType::Bool => FeatureType::Boolean,
        DataType::Int | DataType::Float => {
            let ratio = if non_null == 0 { 0.0 } else { distinct as f64 / non_null as f64 };
            if distinct <= 2 {
                FeatureType::Boolean
            } else if distinct <= opts.categorical_max_distinct
                && ratio <= opts.categorical_distinct_ratio
            {
                // Few distinct integers over many rows: a coded categorical
                // (the paper's "7 distinct integer values" example).
                FeatureType::Categorical
            } else {
                FeatureType::Numerical
            }
        }
        DataType::Str => {
            let ratio = if non_null == 0 { 0.0 } else { distinct as f64 / non_null as f64 };
            if distinct <= opts.categorical_max_distinct && ratio <= 0.5 {
                FeatureType::Categorical
            } else {
                // High-cardinality text: sentence candidates for the
                // LLM-assisted refinement (which may split them into
                // categorical / list features).
                FeatureType::Sentence
            }
        }
    }
}

/// Pearson |correlation| between two numeric columns over co-present rows.
fn pearson_abs(a: &Column, b: &Column) -> f64 {
    let av = a.to_f64_vec();
    let bv = b.to_f64_vec();
    let pairs: Vec<(f64, f64)> =
        av.iter().zip(&bv).filter_map(|(x, y)| Some(((*x)?, (*y)?))).collect();
    if pairs.len() < 3 {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in &pairs {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx < 1e-12 || vy < 1e-12 {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())).abs()
}

struct PartialProfile {
    idx: usize,
    distinct: Arc<ValueDict>,
    embedding: ColumnEmbedding,
    profile: ColumnProfile,
    micros: u64,
}

/// One precomputed cell of the pairwise pass: values are computed in
/// parallel, then applied sequentially in the original iteration order so
/// the output is byte-identical to the sequential version.
struct PairCell {
    j: usize,
    /// Cosine similarity, computed once per unordered pair (at `i < j`).
    cos: Option<f64>,
    /// |Pearson|, only for numeric-numeric pairs at `i < j`.
    corr: Option<f64>,
    /// Inclusion score of column i's value set inside column j's.
    incl: f64,
}

struct MemoEntry {
    profile: DataProfile,
    /// `(column, feature_type, micros)` of the original run, re-emitted
    /// on every memo hit so trace consumers (Figure 9) still see the
    /// per-column events.
    column_events: Vec<(String, String, u64)>,
}

const MEMO_CAP: usize = 64;

fn memo() -> &'static Mutex<HashMap<(u128, u64), MemoEntry>> {
    static MEMO: OnceLock<Mutex<HashMap<(u128, u64), MemoEntry>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Hash every knob that influences the profile, so the memo never serves
/// a result computed under different options (including `n_threads`,
/// which must not matter — the determinism tests rely on recomputing).
fn options_key(name: &str, opts: &ProfileOptions) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut h);
    opts.n_samples.hash(&mut h);
    opts.categorical_distinct_ratio.to_bits().hash(&mut h);
    opts.categorical_max_distinct.hash(&mut h);
    opts.similarity_threshold.to_bits().hash(&mut h);
    opts.inclusion_threshold.to_bits().hash(&mut h);
    opts.n_threads.hash(&mut h);
    opts.seed.hash(&mut h);
    match opts.mode {
        ProfileMode::Exact => 0u8.hash(&mut h),
        ProfileMode::Sketch { chunk_rows } => {
            1u8.hash(&mut h);
            chunk_rows.hash(&mut h);
        }
    }
    h.finish()
}

/// Run Algorithm 1 over a table.
///
/// Results are memoized per (table content, dataset name, options):
/// bench bins and candidate-pipeline loops re-profile identical tables
/// dozens of times, and the second pass is served from the memo (with the
/// original per-column trace events re-emitted).
pub fn profile_table(name: &str, table: &Table, opts: &ProfileOptions) -> DataProfile {
    let _span = catdb_trace::span("profile_table");
    let key = (table_fingerprint(table), options_key(name, opts));
    if let Some(entry) = memo().lock().unwrap().get(&key) {
        catdb_trace::add_counter(COUNTER_PROFILE_MEMO_HITS, 1.0);
        for (column, feature_type, micros) in &entry.column_events {
            catdb_trace::emit(catdb_trace::TraceEvent::ProfileColumn {
                column: column.clone(),
                feature_type: feature_type.clone(),
                micros: *micros,
            });
        }
        return entry.profile.clone();
    }
    catdb_trace::add_counter(COUNTER_PROFILE_MEMO_MISSES, 1.0);

    let (profile, column_events) = match opts.mode {
        ProfileMode::Exact => profile_exact(name, table, opts),
        ProfileMode::Sketch { chunk_rows } => profile_sketch_table(name, table, chunk_rows, opts),
    };

    let mut memo = memo().lock().unwrap();
    if memo.len() >= MEMO_CAP {
        memo.clear();
    }
    memo.insert(key, MemoEntry { profile: profile.clone(), column_events });
    profile
}

/// The frozen exact path: whole-column statistics over the in-memory
/// table. Golden tests pin this output bit-for-bit.
fn profile_exact(
    name: &str,
    table: &Table,
    opts: &ProfileOptions,
) -> (DataProfile, Vec<(String, String, u64)>) {
    let started = Instant::now();
    let n_rows = table.n_rows();
    let fields: Vec<(usize, String)> =
        table.schema().names().iter().enumerate().map(|(i, n)| (i, n.to_string())).collect();

    // Per-column extraction on the shared runtime (profiling large wide
    // tables is the dominant offline cost — Figure 9a). Results come back
    // in schema order regardless of how the pool schedules the columns.
    let n_threads = opts.n_threads.max(1);
    let partials: Vec<PartialProfile> =
        catdb_runtime::parallel_map(n_threads, &fields, |_, (idx, name)| {
            let col_started = Instant::now();
            let col = table.column_at(*idx);
            let (distinct, top_value_ratio) = distinct_values(col);
            let non_null = distinct.non_null();
            let missing = n_rows - non_null;
            let feature_type =
                detect_feature_type(col.dtype(), distinct.n_distinct(), non_null, opts);
            let embedding =
                ColumnEmbedding::from_distinct_values(distinct.values().iter().map(|s| s.as_str()));
            // Samples: all distinct values for categoricals, else τ₁
            // random values (Algorithm 1, line 10).
            let samples = if matches!(feature_type, FeatureType::Categorical | FeatureType::Boolean)
            {
                distinct.values().to_vec()
            } else {
                let mut rng = StdRng::seed_from_u64(opts.seed ^ *idx as u64);
                let mut pool: Vec<String> = distinct.values().to_vec();
                pool.shuffle(&mut rng);
                pool.truncate(opts.n_samples);
                pool
            };
            let statistics =
                if feature_type == FeatureType::Numerical { numeric_stats(col) } else { None };
            let profile = ColumnProfile {
                name: name.clone(),
                data_type: col.dtype(),
                feature_type,
                n_rows,
                distinct_count: distinct.n_distinct(),
                distinct_percentage: if non_null == 0 {
                    0.0
                } else {
                    distinct.n_distinct() as f64 / non_null as f64
                },
                missing_count: missing,
                missing_percentage: if n_rows == 0 { 0.0 } else { missing as f64 / n_rows as f64 },
                top_value_ratio,
                inclusion_dependencies: Vec::new(),
                similarities: Vec::new(),
                correlations: Vec::new(),
                samples,
                statistics,
            };
            PartialProfile {
                idx: *idx,
                distinct,
                embedding,
                profile,
                micros: col_started.elapsed().as_micros() as u64,
            }
        });

    // Emit after the parallel join, in column order, so the event stream is
    // deterministic regardless of worker interleaving.
    for p in &partials {
        catdb_trace::emit(catdb_trace::TraceEvent::ProfileColumn {
            column: p.profile.name.clone(),
            feature_type: p.profile.feature_type.label().to_string(),
            micros: p.micros,
        });
    }

    // Pairwise pass: similarities and inclusion dependencies from the
    // embeddings, correlations among numeric columns. The O(m²) float
    // work is computed row-parallel on the runtime; the threshold checks
    // and pushes below replay the original sequential order.
    let row_idx: Vec<usize> = (0..partials.len()).collect();
    let pair_rows: Vec<Vec<PairCell>> =
        catdb_runtime::parallel_map(n_threads, &row_idx, |_, &i| {
            (0..partials.len())
                .filter(|&j| j != i)
                .map(|j| {
                    let (a, b) = (&partials[i], &partials[j]);
                    let cos = (i < j).then(|| a.embedding.cosine(&b.embedding));
                    let corr = (i < j
                        && a.profile.data_type.is_numeric()
                        && b.profile.data_type.is_numeric())
                    .then(|| pearson_abs(table.column_at(a.idx), table.column_at(b.idx)));
                    let incl = inclusion_score(
                        &a.embedding,
                        &b.embedding,
                        a.distinct.n_distinct(),
                        b.distinct.n_distinct(),
                    );
                    PairCell { j, cos, corr, incl }
                })
                .collect()
        });

    let mut profiles: Vec<ColumnProfile> = partials.iter().map(|p| p.profile.clone()).collect();
    for (i, cells) in pair_rows.iter().enumerate() {
        for cell in cells {
            let (a, b) = (&partials[i], &partials[cell.j]);
            if let Some(cos) = cell.cos {
                if cos >= opts.similarity_threshold {
                    profiles[i].similarities.push((b.profile.name.clone(), cos));
                    profiles[cell.j].similarities.push((a.profile.name.clone(), cos));
                }
            }
            if let Some(corr) = cell.corr {
                if corr >= 0.3 {
                    profiles[i].correlations.push((b.profile.name.clone(), corr));
                    profiles[cell.j].correlations.push((a.profile.name.clone(), corr));
                }
            }
            // Inclusion: is column i's value set inside column j's?
            if cell.incl >= opts.inclusion_threshold && a.distinct.n_distinct() >= 2 {
                profiles[i].inclusion_dependencies.push(b.profile.name.clone());
            }
        }
        profiles[i].similarities.sort_by(|x, y| y.1.total_cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
        profiles[i].correlations.sort_by(|x, y| y.1.total_cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
    }

    let profile = DataProfile {
        dataset_name: name.to_string(),
        n_rows,
        columns: profiles,
        elapsed_seconds: started.elapsed().as_secs_f64(),
    };
    let column_events: Vec<(String, String, u64)> = partials
        .iter()
        .map(|p| (p.profile.name.clone(), p.profile.feature_type.label().to_string(), p.micros))
        .collect();
    (profile, column_events)
}

// ---------------------------------------------------------------------------
// Sketch mode: chunked single-pass profiling.
// ---------------------------------------------------------------------------

/// Accumulated sketch state across chunks: one [`ColumnSketch`] per
/// column plus bivariate [`PairMoments`] per numeric column pair.
struct SketchAccum {
    cols: Vec<ColumnSketch>,
    /// `(i, j)` column indices of every numeric pair, `i < j`, in the
    /// iteration order of the exact pairwise pass.
    pair_idx: Vec<(usize, usize)>,
    pairs: Vec<PairMoments>,
    merges: u64,
}

impl SketchAccum {
    fn new(fields: &[(String, DataType)]) -> SketchAccum {
        let mut pair_idx = Vec::new();
        for i in 0..fields.len() {
            for j in i + 1..fields.len() {
                if fields[i].1.is_numeric() && fields[j].1.is_numeric() {
                    pair_idx.push((i, j));
                }
            }
        }
        SketchAccum {
            cols: fields.iter().map(|_| ColumnSketch::default()).collect(),
            pairs: vec![PairMoments::default(); pair_idx.len()],
            pair_idx,
            merges: 0,
        }
    }

    /// Fold one chunk in: per-column sketches are computed on the
    /// runtime pool (input-ordered), then merged sequentially in column
    /// order — chunk arrival order is fixed by the caller, so the final
    /// state is identical at any thread count.
    fn fold_chunk(&mut self, chunk: &Table, n_threads: usize) {
        let _span = catdb_trace::span(SPAN_PROFILE_CHUNK);
        catdb_trace::add_counter(COUNTER_PROFILER_CHUNKS, 1.0);
        catdb_trace::max_counter(COUNTER_PROFILER_PEAK_CHUNK_RSS, chunk.approx_bytes() as f64);
        let idx: Vec<usize> = (0..chunk.n_cols()).collect();
        let parts: Vec<ColumnSketch> = catdb_runtime::parallel_map(n_threads, &idx, |_, &c| {
            let started = Instant::now();
            let mut s = ColumnSketch::default();
            s.update(chunk.column_at(c));
            s.micros = started.elapsed().as_micros() as u64;
            s
        });
        for (acc, part) in self.cols.iter_mut().zip(&parts) {
            acc.merge(part);
            self.merges += 1;
        }
        if !self.pair_idx.is_empty() {
            // One f64 view per numeric column, shared by all its pairs.
            let mut views: Vec<Option<Vec<Option<f64>>>> = vec![None; chunk.n_cols()];
            for &(i, j) in &self.pair_idx {
                for c in [i, j] {
                    if views[c].is_none() {
                        views[c] = Some(chunk.column_at(c).to_f64_vec());
                    }
                }
            }
            let parts: Vec<PairMoments> =
                catdb_runtime::parallel_map(n_threads, &self.pair_idx, |_, &(i, j)| {
                    let mut p = PairMoments::default();
                    p.update(
                        views[i].as_deref().expect("numeric view materialized"),
                        views[j].as_deref().expect("numeric view materialized"),
                    );
                    p
                });
            for (acc, part) in self.pairs.iter_mut().zip(&parts) {
                acc.merge(part);
                self.merges += 1;
            }
        }
    }
}

/// Turn accumulated sketches into a [`DataProfile`], mirroring the
/// exact path's structure (feature typing, thresholds, sort orders)
/// with sketch estimates in place of exact scans. Emits the per-column
/// trace events and returns them for memoization.
fn finalize_sketch(
    name: &str,
    fields: &[(String, DataType)],
    n_rows: usize,
    acc: &SketchAccum,
    opts: &ProfileOptions,
    started: Instant,
) -> (DataProfile, Vec<(String, String, u64)>) {
    catdb_trace::add_counter(COUNTER_PROFILER_SKETCH_MERGES, acc.merges as f64);
    let mut profiles: Vec<ColumnProfile> = Vec::with_capacity(fields.len());
    let mut embeddings: Vec<ColumnEmbedding> = Vec::with_capacity(fields.len());
    let mut distincts: Vec<usize> = Vec::with_capacity(fields.len());
    for ((col_name, dtype), sk) in fields.iter().zip(&acc.cols) {
        let non_null = sk.non_null as usize;
        let missing = n_rows - non_null;
        let distinct_count = sk.distinct.estimate();
        let feature_type = detect_feature_type(*dtype, distinct_count, non_null, opts);
        let values = sk.distinct.sorted_values();
        let embedding =
            ColumnEmbedding::from_distinct_values(values.iter().map(|(v, _)| v.as_str()));
        // Samples: all retained values for categoricals (exact below
        // the sketch's K), else the deterministic min-hash sample.
        let samples = if matches!(feature_type, FeatureType::Categorical | FeatureType::Boolean) {
            values.iter().map(|(v, _)| v.clone()).collect()
        } else {
            sk.distinct.sample(opts.n_samples)
        };
        let statistics =
            (feature_type == FeatureType::Numerical && sk.moments.n > 0).then(|| NumericStats {
                min: sk.moments.min,
                max: sk.moments.max,
                mean: sk.moments.mean,
                median: sk.quantiles.query(0.5).unwrap_or(sk.moments.mean),
                std: sk.moments.std(),
            });
        profiles.push(ColumnProfile {
            name: col_name.clone(),
            data_type: *dtype,
            feature_type,
            n_rows,
            distinct_count,
            distinct_percentage: if non_null == 0 {
                0.0
            } else {
                distinct_count as f64 / non_null as f64
            },
            missing_count: missing,
            missing_percentage: if n_rows == 0 { 0.0 } else { missing as f64 / n_rows as f64 },
            top_value_ratio: if non_null == 0 {
                0.0
            } else {
                sk.distinct.max_count() as f64 / non_null as f64
            },
            inclusion_dependencies: Vec::new(),
            similarities: Vec::new(),
            correlations: Vec::new(),
            samples,
            statistics,
        });
        embeddings.push(embedding);
        distincts.push(distinct_count);
    }

    let corr_of: HashMap<(usize, usize), f64> =
        acc.pair_idx.iter().zip(&acc.pairs).map(|(&ij, p)| (ij, p.pearson_abs())).collect();
    let m = profiles.len();
    for i in 0..m {
        for j in (0..m).filter(|&j| j != i) {
            if i < j {
                let cos = embeddings[i].cosine(&embeddings[j]);
                if cos >= opts.similarity_threshold {
                    profiles[i].similarities.push((fields[j].0.clone(), cos));
                    profiles[j].similarities.push((fields[i].0.clone(), cos));
                }
                if let Some(&corr) = corr_of.get(&(i, j)) {
                    if corr >= 0.3 {
                        profiles[i].correlations.push((fields[j].0.clone(), corr));
                        profiles[j].correlations.push((fields[i].0.clone(), corr));
                    }
                }
            }
            let incl = inclusion_score(&embeddings[i], &embeddings[j], distincts[i], distincts[j]);
            if incl >= opts.inclusion_threshold && distincts[i] >= 2 {
                profiles[i].inclusion_dependencies.push(fields[j].0.clone());
            }
        }
        profiles[i].similarities.sort_by(|x, y| y.1.total_cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
        profiles[i].correlations.sort_by(|x, y| y.1.total_cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
    }

    let column_events: Vec<(String, String, u64)> = profiles
        .iter()
        .zip(&acc.cols)
        .map(|(p, sk)| (p.name.clone(), p.feature_type.label().to_string(), sk.micros))
        .collect();
    for (column, feature_type, micros) in &column_events {
        catdb_trace::emit(catdb_trace::TraceEvent::ProfileColumn {
            column: column.clone(),
            feature_type: feature_type.clone(),
            micros: *micros,
        });
    }

    let profile = DataProfile {
        dataset_name: name.to_string(),
        n_rows,
        columns: profiles,
        elapsed_seconds: started.elapsed().as_secs_f64(),
    };
    (profile, column_events)
}

fn schema_fields(table_schema: &catdb_table::Schema) -> Vec<(String, DataType)> {
    table_schema.fields().iter().map(|f| (f.name.clone(), f.dtype)).collect()
}

/// Sketch-mode profiling of an in-memory table: the table is walked in
/// `chunk_rows`-row slices through the same accumulate/merge path the
/// out-of-core reader uses, so both produce identical profiles for
/// identical data.
fn profile_sketch_table(
    name: &str,
    table: &Table,
    chunk_rows: usize,
    opts: &ProfileOptions,
) -> (DataProfile, Vec<(String, String, u64)>) {
    let started = Instant::now();
    let fields = schema_fields(table.schema());
    let mut acc = SketchAccum::new(&fields);
    let n_rows = table.n_rows();
    let chunk_rows = chunk_rows.max(1);
    let n_threads = opts.n_threads.max(1);
    let mut start = 0usize;
    while start < n_rows {
        let end = (start + chunk_rows).min(n_rows);
        let chunk = table.slice_rows(start..end).expect("chunk range in bounds");
        acc.fold_chunk(&chunk, n_threads);
        start = end;
    }
    finalize_sketch(name, &fields, n_rows, &acc, opts, started)
}

/// Run Algorithm 1 over an out-of-core [`ChunkedTable`] without ever
/// materializing the table: chunks are loaded one at a time (peak RSS
/// is O(chunk), observable via the `profiler.peak_chunk_rss` counter)
/// and folded into mergeable sketches in fixed chunk order. Always uses
/// sketch statistics — the chunk size is the table's, and `opts.mode`
/// is not consulted. Results are not memoized (computing a content
/// fingerprint would require re-reading the table).
pub fn profile_chunked(
    name: &str,
    table: &ChunkedTable,
    opts: &ProfileOptions,
) -> catdb_table::Result<DataProfile> {
    let _span = catdb_trace::span("profile_table");
    let started = Instant::now();
    let fields = schema_fields(table.schema());
    let mut acc = SketchAccum::new(&fields);
    let n_threads = opts.n_threads.max(1);
    for i in 0..table.n_chunks() {
        let chunk = table.chunk(i)?;
        acc.fold_chunk(&chunk, n_threads);
    }
    let (profile, _events) = finalize_sketch(name, &fields, table.n_rows(), &acc, opts, started);
    Ok(profile)
}

/// Profile a CSV file in a single pass over the ingest stream: sketches
/// are folded chunk by chunk *as the spill is written* (via
/// [`ChunkedTable::from_csv_path_observed`]), skipping the read-back
/// pass [`profile_chunked`] performs. Returns both the chunked table
/// and its profile; the profile is identical to re-reading the spill
/// through [`profile_chunked`].
///
/// Mid-stream dtype degradation is reconciled at finalize: pair moments
/// are seeded from the first chunk's dtypes (degradation only narrows
/// numeric → string, never the reverse) and pairs touching a degraded
/// column are dropped, matching what the read-back path — which never
/// sees the pre-degradation dtypes — would have computed. A degraded
/// column's numeric moments are likewise ignored, because feature
/// typing off the final string dtype never consults them.
pub fn profile_csv_stream(
    name: &str,
    path: impl AsRef<std::path::Path>,
    csv_opts: &catdb_table::CsvOptions,
    chunk_rows: usize,
    opts: &ProfileOptions,
) -> catdb_table::Result<(ChunkedTable, DataProfile)> {
    let _span = catdb_trace::span("profile_table");
    let started = Instant::now();
    let n_threads = opts.n_threads.max(1);
    let mut acc: Option<(Vec<(String, DataType)>, SketchAccum)> = None;
    let table =
        ChunkedTable::from_csv_path_observed(path, csv_opts, chunk_rows, &mut |chunk: &Table| {
            let (_, acc) = acc.get_or_insert_with(|| {
                let fields = schema_fields(chunk.schema());
                let acc = SketchAccum::new(&fields);
                (fields, acc)
            });
            acc.fold_chunk(chunk, n_threads);
        })?;
    let fields = schema_fields(table.schema());
    let acc = match acc {
        Some((first_fields, mut acc)) => {
            if first_fields != fields {
                let keep: Vec<bool> = acc
                    .pair_idx
                    .iter()
                    .map(|&(i, j)| fields[i].1.is_numeric() && fields[j].1.is_numeric())
                    .collect();
                let mut it = keep.iter();
                acc.pair_idx.retain(|_| *it.next().expect("one flag per pair"));
                let mut it = keep.iter();
                acc.pairs.retain(|_| *it.next().expect("one flag per pair"));
            }
            acc
        }
        None => SketchAccum::new(&fields),
    };
    let (profile, _events) = finalize_sketch(name, &fields, table.n_rows(), &acc, opts, started);
    Ok((table, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdb_table::Column;

    fn salary_like_table() -> Table {
        let n = 200;
        let gender: Vec<&str> = (0..n).map(|i| ["Male", "Female", "F", "M"][i % 4]).collect();
        let exp: Vec<String> =
            (0..n).map(|i| format!("{} years of experience at firm {i}", i % 37)).collect();
        let age: Vec<Option<f64>> =
            (0..n).map(|i| if i % 10 == 0 { None } else { Some(20.0 + (i % 40) as f64) }).collect();
        let salary: Vec<f64> = (0..n).map(|i| 50_000.0 + 1000.0 * (i % 40) as f64).collect();
        let level: Vec<i64> = (0..n).map(|i| (i % 5) as i64).collect();
        Table::from_columns(vec![
            ("gender", Column::from_strings(gender)),
            ("experience", Column::from_strings(exp)),
            ("age", Column::Float(age)),
            ("salary", Column::from_f64(salary)),
            ("level", Column::from_i64(level)),
        ])
        .unwrap()
    }

    #[test]
    fn detects_feature_types() {
        let t = salary_like_table();
        let p = profile_table("salary", &t, &ProfileOptions::default());
        assert_eq!(p.column("gender").unwrap().feature_type, FeatureType::Categorical);
        assert_eq!(p.column("experience").unwrap().feature_type, FeatureType::Sentence);
        assert_eq!(p.column("age").unwrap().feature_type, FeatureType::Numerical);
        assert_eq!(p.column("level").unwrap().feature_type, FeatureType::Categorical);
    }

    #[test]
    fn missing_and_distinct_percentages() {
        let t = salary_like_table();
        let p = profile_table("salary", &t, &ProfileOptions::default());
        let age = p.column("age").unwrap();
        assert_eq!(age.missing_count, 20);
        assert!((age.missing_percentage - 0.1).abs() < 1e-9);
        let gender = p.column("gender").unwrap();
        assert_eq!(gender.distinct_count, 4);
    }

    #[test]
    fn categorical_samples_hold_all_distinct_values() {
        let t = salary_like_table();
        let p = profile_table("salary", &t, &ProfileOptions::default());
        let gender = p.column("gender").unwrap();
        assert_eq!(gender.samples.len(), 4);
        let exp = p.column("experience").unwrap();
        assert_eq!(exp.samples.len(), ProfileOptions::default().n_samples);
    }

    #[test]
    fn statistics_only_for_numerical() {
        let t = salary_like_table();
        let p = profile_table("salary", &t, &ProfileOptions::default());
        assert!(p.column("salary").unwrap().statistics.is_some());
        assert!(p.column("gender").unwrap().statistics.is_none());
        let stats = p.column("salary").unwrap().statistics.as_ref().unwrap();
        assert_eq!(stats.min, 50_000.0);
        assert_eq!(stats.max, 89_000.0);
    }

    #[test]
    fn correlated_columns_are_reported() {
        let t = salary_like_table();
        let p = profile_table("salary", &t, &ProfileOptions::default());
        let age_corr = &p.column("age").unwrap().correlations;
        assert!(
            age_corr.iter().any(|(n, c)| n == "salary" && *c > 0.9),
            "age–salary correlation missing: {age_corr:?}"
        );
    }

    #[test]
    fn inclusion_dependency_between_key_columns() {
        // fk values ⊂ pk values.
        let pk: Vec<String> = (0..100).map(|i| format!("k{i}")).collect();
        let fk: Vec<String> = (0..100).map(|i| format!("k{}", i % 20)).collect();
        let t = Table::from_columns(vec![
            ("pk", Column::from_strings(pk)),
            ("fk", Column::from_strings(fk)),
        ])
        .unwrap();
        let p = profile_table("keys", &t, &ProfileOptions::default());
        assert!(p.column("fk").unwrap().inclusion_dependencies.contains(&"pk".to_string()));
    }

    #[test]
    fn profiling_is_deterministic() {
        let t = salary_like_table();
        let a = profile_table("s", &t, &ProfileOptions::default());
        let b = profile_table("s", &t, &ProfileOptions::default());
        for (ca, cb) in a.columns.iter().zip(&b.columns) {
            assert_eq!(ca.samples, cb.samples);
            assert_eq!(ca.similarities, cb.similarities);
        }
    }

    #[test]
    fn streaming_profile_matches_spill_read_back() {
        // Includes quoted fields, nulls, blank lines, and a mid-stream
        // dtype degradation (column b turns textual after 120 int rows),
        // so the observer path must reconcile pre-degradation chunks.
        let mut text = String::from("a,b,c\n");
        for i in 0..120 {
            text.push_str(&format!("{i},{},\"cat {}\"\n", i * 7, i % 5));
        }
        text.push_str("120,oops,\"cat 0\"\n");
        for i in 121..300 {
            text.push_str(&format!("{i},{},NA\n", i % 3));
        }
        let path =
            std::env::temp_dir().join(format!("catdb-stream-profile-{}.csv", std::process::id()));
        std::fs::write(&path, &text).unwrap();
        let csv_opts = catdb_table::CsvOptions { inference_rows: 50, ..Default::default() };
        let opts =
            ProfileOptions { mode: ProfileMode::Sketch { chunk_rows: 64 }, ..Default::default() };

        let (streamed_table, streamed) =
            profile_csv_stream("s", &path, &csv_opts, 64, &opts).unwrap();
        assert_eq!(streamed_table.schema().fields()[1].dtype, DataType::Str, "b degraded");
        let chunked = ChunkedTable::from_csv_path(&path, &csv_opts, 64).unwrap();
        let read_back = profile_chunked("s", &chunked, &opts).unwrap();

        assert_eq!(streamed.n_rows, read_back.n_rows);
        assert_eq!(streamed.columns, read_back.columns);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streaming_profile_keeps_spill_accounting() {
        let mut text = String::from("x,y\n");
        for i in 0..200 {
            text.push_str(&format!("{i},{}.5\n", i * 3));
        }
        let path =
            std::env::temp_dir().join(format!("catdb-stream-spill-{}.csv", std::process::id()));
        std::fs::write(&path, &text).unwrap();
        let csv_opts = catdb_table::CsvOptions::default();
        let opts =
            ProfileOptions { mode: ProfileMode::Sketch { chunk_rows: 64 }, ..Default::default() };

        let sink = std::sync::Arc::new(catdb_trace::TraceSink::new());
        let guard = catdb_trace::install(sink.clone());
        let (streamed_table, _) = profile_csv_stream("s", &path, &csv_opts, 64, &opts).unwrap();
        drop(guard);
        let trace = sink.snapshot();
        // The spill-bytes counter must record exactly what was written.
        assert_eq!(
            trace.counters[catdb_table::COUNTER_CSV_SPILL_BYTES],
            streamed_table.spill_bytes() as f64
        );
        assert!(streamed_table.spill_bytes() > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn type_distribution_counts() {
        let t = salary_like_table();
        let p = profile_table("salary", &t, &ProfileOptions::default());
        let dist = p.feature_type_distribution();
        let total: usize = dist.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 5);
    }
}

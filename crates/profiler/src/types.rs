//! Profile data model: per-column metadata captured by Algorithm 1 and
//! stored in the data catalog.

use catdb_table::DataType;
use serde::{Deserialize, Serialize};

/// ML feature types, layered above the physical [`DataType`]s. Initial
/// profiling assigns them heuristically; the LLM-assisted catalog
/// refinement (Section 3.2) upgrades them (e.g. `Sentence` → `List`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureType {
    Numerical,
    Categorical,
    Boolean,
    /// Free-form text / composite values (mixed representations).
    Sentence,
    /// Multiple atomic items joined in one cell ("Python, Java").
    List,
}

impl FeatureType {
    pub fn label(self) -> &'static str {
        match self {
            FeatureType::Numerical => "numerical",
            FeatureType::Categorical => "categorical",
            FeatureType::Boolean => "boolean",
            FeatureType::Sentence => "sentence",
            FeatureType::List => "list",
        }
    }

    pub fn parse(s: &str) -> Option<FeatureType> {
        Some(match s {
            "numerical" => FeatureType::Numerical,
            "categorical" => FeatureType::Categorical,
            "boolean" => FeatureType::Boolean,
            "sentence" => FeatureType::Sentence,
            "list" => FeatureType::List,
            _ => return None,
        })
    }
}

/// Basic statistics for numeric columns (Algorithm 1, line 11).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumericStats {
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub median: f64,
    pub std: f64,
}

/// Everything Algorithm 1 extracts for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnProfile {
    pub name: String,
    pub data_type: DataType,
    pub feature_type: FeatureType,
    pub n_rows: usize,
    pub distinct_count: usize,
    /// `distinct_count / non_null_count` in [0, 1].
    pub distinct_percentage: f64,
    pub missing_count: usize,
    /// `missing_count / n_rows` in [0, 1].
    pub missing_percentage: f64,
    /// Frequency of the most common value over non-null entries, in
    /// [0, 1]; drives imbalance detection for rebalancing rules.
    pub top_value_ratio: f64,
    /// Names of columns whose value set appears to include this column's
    /// (approximate inclusion dependencies via embeddings).
    pub inclusion_dependencies: Vec<String>,
    /// Embedding-cosine similarity to other columns, most similar first.
    pub similarities: Vec<(String, f64)>,
    /// Numeric correlation with other numeric columns (|Pearson|).
    pub correlations: Vec<(String, f64)>,
    /// Stored value samples: all distinct values for categoricals, a random
    /// sample of τ₁ values otherwise (Algorithm 1, line 10).
    pub samples: Vec<String>,
    /// Statistics for numeric, non-categorical columns only.
    pub statistics: Option<NumericStats>,
}

impl ColumnProfile {
    /// Does this column look like a categorical feature to the pipeline
    /// generator (the `isCategorical` flag of Algorithm 1)?
    pub fn is_categorical(&self) -> bool {
        matches!(self.feature_type, FeatureType::Categorical | FeatureType::Boolean)
    }
}

/// The full profile of one table: Algorithm 1's output `P`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataProfile {
    pub dataset_name: String,
    pub n_rows: usize,
    pub columns: Vec<ColumnProfile>,
    /// Wall-clock seconds spent profiling (reported in Figure 9a).
    pub elapsed_seconds: f64,
}

impl DataProfile {
    pub fn column(&self, name: &str) -> Option<&ColumnProfile> {
        self.columns.iter().find(|c| c.name == name)
    }

    pub fn column_mut(&mut self, name: &str) -> Option<&mut ColumnProfile> {
        self.columns.iter_mut().find(|c| c.name == name)
    }

    /// Feature-type histogram (Figure 9b's data-type distribution).
    pub fn feature_type_distribution(&self) -> Vec<(FeatureType, usize)> {
        let kinds = [
            FeatureType::Numerical,
            FeatureType::Categorical,
            FeatureType::Boolean,
            FeatureType::Sentence,
            FeatureType::List,
        ];
        kinds
            .iter()
            .map(|&k| (k, self.columns.iter().filter(|c| c.feature_type == k).count()))
            .filter(|(_, n)| *n > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_type_labels_round_trip() {
        for ft in [
            FeatureType::Numerical,
            FeatureType::Categorical,
            FeatureType::Boolean,
            FeatureType::Sentence,
            FeatureType::List,
        ] {
            assert_eq!(FeatureType::parse(ft.label()), Some(ft));
        }
        assert_eq!(FeatureType::parse("bogus"), None);
    }
}

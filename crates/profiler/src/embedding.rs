//! Column embeddings (Algorithm 1, lines 7–9).
//!
//! The paper sidesteps expensive exact dependency discovery by embedding
//! each column into a 300-dimensional vector and estimating inclusion
//! dependencies, similarities, and correlations from the embeddings —
//! "faster processing (a few seconds) with minor degradation in accuracy".
//!
//! The embedding here is a feature-hashed bag of values: every distinct
//! rendered value hashes to a deterministic ±1 pattern over the 300
//! dimensions; a column's embedding is the L2-normalized sum over its
//! distinct values. Columns sharing many values end up with high cosine
//! similarity, and a column whose value set is contained in another's has
//! high cosine *and* a smaller distinct count — the inclusion signal.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Embedding dimensionality (matches the paper's "vectors of length 300").
pub const EMBEDDING_DIM: usize = 300;

/// Deterministic ±1 pattern for a value, spread over `k` dimensions.
fn value_signature(value: &str) -> impl Iterator<Item = (usize, f64)> + '_ {
    // Derive k pseudo-random (dimension, sign) pairs from the value hash.
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    let mut state = h.finish() | 1;
    (0..8).map(move |_| {
        // xorshift64* step
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let r = state.wrapping_mul(0x2545F4914F6CDD1D);
        let dim = (r >> 8) as usize % EMBEDDING_DIM;
        let sign = if r & 1 == 0 { 1.0 } else { -1.0 };
        (dim, sign)
    })
}

/// An L2-normalized column embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnEmbedding {
    v: Vec<f64>,
}

impl ColumnEmbedding {
    /// Embed a column from its distinct rendered values.
    pub fn from_distinct_values<'a>(values: impl Iterator<Item = &'a str>) -> ColumnEmbedding {
        let mut v = vec![0.0; EMBEDDING_DIM];
        for value in values {
            for (dim, sign) in value_signature(value) {
                v[dim] += sign;
            }
        }
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for x in &mut v {
                *x /= norm;
            }
        }
        ColumnEmbedding { v }
    }

    /// Cosine similarity (both embeddings are unit length, so this is just
    /// the dot product).
    pub fn cosine(&self, other: &ColumnEmbedding) -> f64 {
        self.v.iter().zip(&other.v).map(|(a, b)| a * b).sum()
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.v
    }
}

/// Estimated inclusion dependency: does `small`'s value set appear to be
/// contained in `big`'s? High when cos(small, big) is large relative to
/// what containment predicts given the distinct-count ratio.
pub fn inclusion_score(
    small: &ColumnEmbedding,
    big: &ColumnEmbedding,
    small_distinct: usize,
    big_distinct: usize,
) -> f64 {
    if small_distinct == 0 || big_distinct == 0 || small_distinct > big_distinct {
        return 0.0;
    }
    // If small ⊆ big, the expected cosine is ≈ sqrt(|small| / |big|)
    // (shared mass over the larger set's norm). Score = observed/expected.
    let expected = (small_distinct as f64 / big_distinct as f64).sqrt();
    (small.cosine(big) / expected).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embed(values: &[&str]) -> ColumnEmbedding {
        ColumnEmbedding::from_distinct_values(values.iter().copied())
    }

    #[test]
    fn identical_value_sets_have_cosine_one() {
        let a = embed(&["x", "y", "z"]);
        let b = embed(&["z", "y", "x"]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_value_sets_have_low_cosine() {
        let a = embed(
            &(0..50)
                .map(|i| format!("a{i}"))
                .collect::<Vec<_>>()
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>(),
        );
        let b = embed(
            &(0..50)
                .map(|i| format!("b{i}"))
                .collect::<Vec<_>>()
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>(),
        );
        assert!(a.cosine(&b).abs() < 0.3);
    }

    #[test]
    fn overlap_increases_similarity_monotonically() {
        let base: Vec<String> = (0..40).map(|i| format!("v{i}")).collect();
        let a = ColumnEmbedding::from_distinct_values(base.iter().map(|s| s.as_str()));
        let half: Vec<&str> = base[..20].iter().map(|s| s.as_str()).chain(["q1", "q2"]).collect();
        let none: Vec<&str> = vec!["w1", "w2", "w3"];
        let sim_half = a.cosine(&ColumnEmbedding::from_distinct_values(half.into_iter()));
        let sim_none = a.cosine(&ColumnEmbedding::from_distinct_values(none.into_iter()));
        assert!(sim_half > sim_none + 0.2, "half {sim_half} none {sim_none}");
    }

    #[test]
    fn inclusion_detects_subset() {
        let big_vals: Vec<String> = (0..100).map(|i| format!("id{i}")).collect();
        let small_vals: Vec<&str> = big_vals[..20].iter().map(|s| s.as_str()).collect();
        let big = ColumnEmbedding::from_distinct_values(big_vals.iter().map(|s| s.as_str()));
        let small = ColumnEmbedding::from_distinct_values(small_vals.iter().copied());
        let score_in = inclusion_score(&small, &big, 20, 100);
        assert!(score_in > 0.8, "inclusion score {score_in}");

        let other_vals: Vec<String> = (0..20).map(|i| format!("zz{i}")).collect();
        let other = ColumnEmbedding::from_distinct_values(other_vals.iter().map(|s| s.as_str()));
        let score_out = inclusion_score(&other, &big, 20, 100);
        assert!(score_out < 0.5, "non-inclusion score {score_out}");
    }

    #[test]
    fn empty_embedding_is_zero_and_harmless() {
        let e = embed(&[]);
        assert!(e.cosine(&embed(&["x"])).abs() < 1e-9);
        assert_eq!(inclusion_score(&e, &e, 0, 0), 0.0);
    }
}

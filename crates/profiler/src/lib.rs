//! # catdb-profiler — data profiling (paper Algorithm 1)
//!
//! Extracts, for every column of a [`catdb_table::Table`]: schema and data
//! type, an ML feature type (numerical / categorical / boolean / sentence /
//! list), distinct and missing percentages, basic statistics, value samples
//! (all distinct values for categoricals, τ₁ random values otherwise), and
//! embedding-estimated inclusion dependencies / similarities /
//! correlations, using 300-dimensional hashed column embeddings exactly as
//! the paper describes ("faster processing with minor degradation").
//!
//! The output [`DataProfile`] is the raw material for the data catalog
//! (`catdb-catalog`) and ultimately for prompt construction.

mod embedding;
mod profile;
mod sketch;
mod types;

pub use embedding::{inclusion_score, ColumnEmbedding, EMBEDDING_DIM};
pub use profile::{
    profile_chunked, profile_csv_stream, profile_table, ProfileMode, ProfileOptions,
    COUNTER_PROFILER_CHUNKS, COUNTER_PROFILER_PEAK_CHUNK_RSS, COUNTER_PROFILER_SKETCH_MERGES,
    SPAN_PROFILE_CHUNK,
};
pub use sketch::{
    ColumnSketch, DistinctSketch, MomentSketch, PairMoments, QuantileSketch, DISTINCT_K, QUANTILE_K,
};
pub use types::{ColumnProfile, DataProfile, FeatureType, NumericStats};

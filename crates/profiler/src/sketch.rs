//! Mergeable single-pass sketches for out-of-core profiling.
//!
//! Each statistic Algorithm 1 needs is rewritten as a small state
//! machine with two operations — `update` over one chunk of rows and
//! `merge` with another sketch of the same column — so a table can be
//! profiled one chunk at a time with memory proportional to the sketch,
//! not the data. Every operation here is *deterministic*: no RNG, no
//! hash seeds, no data-dependent branching on pointer values. Chunks
//! are merged in fixed chunk order by the driver, so the profile is
//! byte-identical at any `CATDB_THREADS`.
//!
//! The sketches:
//!
//! - [`DistinctSketch`] — a k-minimum-values (KMV) distinct counter
//!   over FNV-1a hashes of rendered values, retaining the `K = 1024`
//!   smallest-hash values *with their exact occurrence counts*. A value
//!   retained in the merged sketch was retained in every chunk sketch
//!   where it appeared (the union's k-th smallest hash is ≤ each
//!   part's), so retained counts are exact — columns with fewer than K
//!   distinct values get exact distinct counts, value lists, and top
//!   frequencies; beyond that the estimate `(K-1)·2⁶⁴ / h_K` has
//!   relative standard error ≈ 1/√(K−1) ≈ 3.1%. The retained set
//!   doubles as a deterministic min-hash sample of the distinct values.
//! - [`QuantileSketch`] — a KLL-style compactor hierarchy with
//!   *alternating-parity* (not coin-flip) compaction, giving rank error
//!   ≈ log₂(n/k)/(2k) — far inside the ±0.05 rank bound the tests pin
//!   for the median.
//! - [`MomentSketch`] — streaming count/mean/M2/min/max via Welford
//!   updates and Chan's parallel merge (numerically stable, unlike
//!   naive sum-of-squares).
//! - [`PairMoments`] — the bivariate analogue over co-present rows of
//!   a numeric column pair, yielding |Pearson| with the same guard
//!   semantics as the exact path.

use catdb_table::{Column, ValueDict};
use std::collections::BTreeMap;

/// Values retained by the KMV distinct sketch: distinct counts up to
/// this are exact, beyond it the relative error is ≈ 1/√(K−1) ≈ 3.1%.
pub const DISTINCT_K: usize = 1024;

/// Compactor capacity of the quantile sketch: a level is halved into
/// the next once it holds `2 × QUANTILE_K` items.
pub const QUANTILE_K: usize = 512;

/// FNV-1a over the value bytes, finished with a splitmix64-style
/// avalanche. Raw FNV-1a diffuses too weakly for order statistics —
/// similar short strings cluster, which biases the KMV estimator's
/// k-th smallest hash — so the finalizer mixes every input bit into
/// every output bit before the hash is used as a uniform draw.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

// ---------------------------------------------------------------------------
// Distinct values: k-minimum-values with exact retained counts.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct KmvEntry {
    value: String,
    count: u64,
}

/// KMV distinct counter keyed by value hash (ascending), retaining the
/// `k` smallest-hash values with their occurrence counts.
#[derive(Debug, Clone)]
pub struct DistinctSketch {
    k: usize,
    entries: BTreeMap<u64, KmvEntry>,
    /// Whether any entry was ever evicted (true ⇒ estimates, not exact).
    saturated: bool,
}

impl DistinctSketch {
    pub fn new(k: usize) -> DistinctSketch {
        DistinctSketch { k: k.max(2), entries: BTreeMap::new(), saturated: false }
    }

    /// Record `count` occurrences of `value`.
    pub fn insert(&mut self, value: &str, count: u64) {
        let h = fnv1a(value.as_bytes());
        if let Some(e) = self.entries.get_mut(&h) {
            // Same hash: almost always the same value; on a genuine
            // collision keep the lexicographically smaller value so the
            // outcome is independent of insertion order.
            if value < e.value.as_str() {
                e.value = value.to_string();
            }
            e.count += count;
            return;
        }
        if self.entries.len() < self.k {
            self.entries.insert(h, KmvEntry { value: value.to_string(), count });
        } else if h < *self.entries.keys().next_back().expect("non-empty at capacity") {
            self.entries.pop_last();
            self.entries.insert(h, KmvEntry { value: value.to_string(), count });
            self.saturated = true;
        } else {
            self.saturated = true;
        }
    }

    /// Merge another sketch of the same column (any order, same result).
    pub fn merge(&mut self, other: &DistinctSketch) {
        self.saturated |= other.saturated;
        for (h, e) in &other.entries {
            if let Some(mine) = self.entries.get_mut(h) {
                if e.value.as_str() < mine.value.as_str() {
                    mine.value = e.value.clone();
                }
                mine.count += e.count;
            } else {
                self.entries.insert(*h, e.clone());
            }
        }
        while self.entries.len() > self.k {
            self.entries.pop_last();
            self.saturated = true;
        }
    }

    /// Whether the sketch still holds *every* distinct value seen.
    pub fn is_exact(&self) -> bool {
        !self.saturated
    }

    /// Estimated number of distinct values (exact while unsaturated).
    pub fn estimate(&self) -> usize {
        if !self.saturated {
            return self.entries.len();
        }
        let kth = *self.entries.keys().next_back().expect("saturated sketch is non-empty");
        let est = (self.k as f64 - 1.0) * (u64::MAX as f64 + 1.0) / (kth as f64 + 1.0);
        (est as usize).max(self.entries.len())
    }

    /// Retained `(value, count)` pairs sorted by value — the same order
    /// [`ValueDict`] yields, so exact-cardinality columns produce the
    /// identical value list.
    pub fn sorted_values(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> =
            self.entries.values().map(|e| (e.value.clone(), e.count)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Deterministic min-hash sample: the values of the `n` smallest
    /// hashes, in hash order (a uniform sample of the distinct set).
    pub fn sample(&self, n: usize) -> Vec<String> {
        self.entries.values().take(n).map(|e| e.value.clone()).collect()
    }

    /// Largest retained occurrence count (exact top-value frequency
    /// while unsaturated; a lower bound afterwards).
    pub fn max_count(&self) -> u64 {
        self.entries.values().map(|e| e.count).max().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Quantiles: deterministic KLL-style compactor hierarchy.
// ---------------------------------------------------------------------------

/// Quantile sketch: level `i` holds items of weight `2^i`; a level at
/// capacity is sorted and every other item is promoted. The parity of
/// each compaction alternates via a counter instead of a coin flip, so
/// identical input orders give identical sketches.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    k: usize,
    levels: Vec<Vec<f64>>,
    compactions: u64,
    count: u64,
}

impl QuantileSketch {
    pub fn new(k: usize) -> QuantileSketch {
        QuantileSketch { k: k.max(8), levels: vec![Vec::new()], compactions: 0, count: 0 }
    }

    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.levels[0].push(v);
        self.compact_from(0);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    fn compact_from(&mut self, start: usize) {
        let cap = 2 * self.k;
        let mut l = start;
        while l < self.levels.len() && self.levels[l].len() >= cap {
            self.levels[l].sort_by(|a, b| a.total_cmp(b));
            let keep_parity = (self.compactions % 2) as usize;
            self.compactions += 1;
            let promoted: Vec<f64> = self.levels[l]
                .iter()
                .copied()
                .enumerate()
                .filter_map(|(i, v)| (i % 2 == keep_parity).then_some(v))
                .collect();
            self.levels[l].clear();
            if self.levels.len() == l + 1 {
                self.levels.push(Vec::new());
            }
            self.levels[l + 1].extend(promoted);
            l += 1;
        }
    }

    pub fn merge(&mut self, other: &QuantileSketch) {
        self.count += other.count;
        self.compactions += other.compactions;
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
        }
        for (l, items) in other.levels.iter().enumerate() {
            self.levels[l].extend_from_slice(items);
        }
        self.compact_from(0);
        // Levels above the first may have overflowed without level 0
        // tripping the cascade.
        for l in 1..self.levels.len() {
            self.compact_from(l);
        }
    }

    /// Value at rank `q` ∈ [0, 1] (0.5 = median), or `None` when empty.
    pub fn query(&self, q: f64) -> Option<f64> {
        let mut weighted: Vec<(f64, u64)> = Vec::new();
        for (l, items) in self.levels.iter().enumerate() {
            let w = 1u64 << l;
            weighted.extend(items.iter().map(|&v| (v, w)));
        }
        if weighted.is_empty() {
            return None;
        }
        weighted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: u64 = weighted.iter().map(|&(_, w)| w).sum();
        let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut cum = 0u64;
        for &(v, w) in &weighted {
            cum += w;
            if cum as f64 >= target {
                return Some(v);
            }
        }
        weighted.last().map(|&(v, _)| v)
    }
}

// ---------------------------------------------------------------------------
// Streaming moments: Welford updates, Chan merges.
// ---------------------------------------------------------------------------

/// Count / mean / M2 / min / max of a numeric stream.
#[derive(Debug, Clone, Copy)]
pub struct MomentSketch {
    pub n: u64,
    pub mean: f64,
    pub m2: f64,
    pub min: f64,
    pub max: f64,
}

impl Default for MomentSketch {
    fn default() -> Self {
        MomentSketch { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl MomentSketch {
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn merge(&mut self, other: &MomentSketch) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let tot = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * n2 / tot;
        self.m2 += other.m2 + delta * delta * n1 * n2 / tot;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Population standard deviation (matching the exact profiler).
    pub fn std(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }
}

/// Bivariate co-moments over co-present rows of two numeric columns.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairMoments {
    pub n: u64,
    mx: f64,
    my: f64,
    cxx: f64,
    cyy: f64,
    cxy: f64,
}

impl PairMoments {
    /// Accumulate one chunk of the two columns' value streams.
    pub fn update(&mut self, xs: &[Option<f64>], ys: &[Option<f64>]) {
        for (x, y) in xs.iter().zip(ys) {
            let (Some(x), Some(y)) = (x, y) else { continue };
            self.n += 1;
            let n = self.n as f64;
            let dx = x - self.mx;
            self.mx += dx / n;
            let dy = y - self.my;
            self.my += dy / n;
            self.cxx += dx * (x - self.mx);
            self.cyy += dy * (y - self.my);
            self.cxy += dx * (y - self.my);
        }
    }

    pub fn merge(&mut self, other: &PairMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let tot = n1 + n2;
        let dx = other.mx - self.mx;
        let dy = other.my - self.my;
        self.mx += dx * n2 / tot;
        self.my += dy * n2 / tot;
        self.cxx += other.cxx + dx * dx * n1 * n2 / tot;
        self.cyy += other.cyy + dy * dy * n1 * n2 / tot;
        self.cxy += other.cxy + dx * dy * n1 * n2 / tot;
        self.n += other.n;
    }

    /// |Pearson| with the exact path's guards: 0 below 3 co-present
    /// rows or when either column is (numerically) constant.
    pub fn pearson_abs(&self) -> f64 {
        if self.n < 3 || self.cxx < 1e-12 || self.cyy < 1e-12 {
            return 0.0;
        }
        (self.cxy / (self.cxx.sqrt() * self.cyy.sqrt())).abs()
    }
}

// ---------------------------------------------------------------------------
// Per-column composite sketch.
// ---------------------------------------------------------------------------

/// Everything Algorithm 1 needs about one column, accumulated one chunk
/// at a time.
#[derive(Debug, Clone)]
pub struct ColumnSketch {
    pub rows: u64,
    pub non_null: u64,
    pub distinct: DistinctSketch,
    pub moments: MomentSketch,
    pub quantiles: QuantileSketch,
    /// Microseconds spent updating this sketch (summed across chunks).
    pub micros: u64,
}

impl Default for ColumnSketch {
    fn default() -> Self {
        ColumnSketch {
            rows: 0,
            non_null: 0,
            distinct: DistinctSketch::new(DISTINCT_K),
            moments: MomentSketch::default(),
            quantiles: QuantileSketch::new(QUANTILE_K),
            micros: 0,
        }
    }
}

impl ColumnSketch {
    /// Fold one chunk of the column in. The chunk's values are rendered
    /// once through a throwaway [`ValueDict`] (each distinct value per
    /// chunk, not each cell), deliberately bypassing the global dict
    /// cache so per-chunk dictionaries are dropped immediately and
    /// resident memory stays O(chunk).
    pub fn update(&mut self, col: &Column) {
        self.rows += col.len() as u64;
        let dict = ValueDict::build(col);
        self.non_null += dict.non_null() as u64;
        for (value, &count) in dict.values().iter().zip(dict.counts()) {
            self.distinct.insert(value, count as u64);
        }
        if col.dtype().is_numeric() {
            for x in col.to_f64_vec().into_iter().flatten() {
                self.moments.push(x);
                self.quantiles.push(x);
            }
        }
    }

    pub fn merge(&mut self, other: &ColumnSketch) {
        self.rows += other.rows;
        self.non_null += other.non_null;
        self.distinct.merge(&other.distinct);
        self.moments.merge(&other.moments);
        self.quantiles.merge(&other.quantiles);
        self.micros += other.micros;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmv_is_exact_below_capacity() {
        let mut s = DistinctSketch::new(64);
        for i in 0..50 {
            s.insert(&format!("v{i}"), 2);
        }
        for i in 0..25 {
            s.insert(&format!("v{i}"), 1);
        }
        assert!(s.is_exact());
        assert_eq!(s.estimate(), 50);
        assert_eq!(s.max_count(), 3);
        let sorted = s.sorted_values();
        assert_eq!(sorted.len(), 50);
        assert!(sorted.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(sorted.iter().filter(|(_, c)| *c == 3).count(), 25);
    }

    #[test]
    fn kmv_estimate_within_bounds_beyond_capacity() {
        let mut s = DistinctSketch::new(DISTINCT_K);
        let n = 50_000usize;
        for i in 0..n {
            s.insert(&format!("value-{i}"), 1);
        }
        assert!(!s.is_exact());
        let est = s.estimate() as f64;
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.10, "KMV estimate {est} strays {rel:.3} from {n}");
    }

    #[test]
    fn kmv_merge_is_partition_invariant() {
        let values: Vec<String> = (0..5000).map(|i| format!("x{}", i % 1700)).collect();
        let whole = {
            let mut s = DistinctSketch::new(256);
            for v in &values {
                s.insert(v, 1);
            }
            s
        };
        for parts in [2usize, 7, 32] {
            let mut merged = DistinctSketch::new(256);
            for part in values.chunks(values.len().div_ceil(parts)) {
                let mut s = DistinctSketch::new(256);
                for v in part {
                    s.insert(v, 1);
                }
                merged.merge(&s);
            }
            assert_eq!(merged.estimate(), whole.estimate(), "parts={parts}");
            assert_eq!(merged.sorted_values(), whole.sorted_values(), "parts={parts}");
        }
    }

    #[test]
    fn quantile_median_is_close_on_skewed_data() {
        let mut q = QuantileSketch::new(QUANTILE_K);
        let n = 100_000;
        let mut vals: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % n) as f64).collect();
        for &v in &vals {
            q.push(v * v); // skewed
        }
        vals.sort_by(|a, b| a.total_cmp(b));
        let med = q.query(0.5).unwrap();
        // Rank of the sketch median in the exact sorted data must be
        // within 5% of 0.5.
        let rank = vals.iter().filter(|&&v| v * v <= med).count() as f64 / n as f64;
        assert!((rank - 0.5).abs() < 0.05, "median rank {rank} too far from 0.5");
    }

    #[test]
    fn moments_match_naive_and_merge_exactly() {
        let xs: Vec<f64> = (0..999).map(|i| (i as f64).sin() * 100.0).collect();
        let mut whole = MomentSketch::default();
        for &x in &xs {
            whole.push(x);
        }
        let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((whole.mean - naive_mean).abs() < 1e-9);

        let mut merged = MomentSketch::default();
        for part in xs.chunks(100) {
            let mut m = MomentSketch::default();
            for &x in part {
                m.push(x);
            }
            merged.merge(&m);
        }
        assert_eq!(merged.n, whole.n);
        assert!((merged.mean - whole.mean).abs() < 1e-9);
        assert!((merged.std() - whole.std()).abs() < 1e-9);
        assert_eq!(merged.min, whole.min);
        assert_eq!(merged.max, whole.max);
    }

    #[test]
    fn pair_moments_match_exact_pearson() {
        let xs: Vec<Option<f64>> = (0..500).map(|i| (i % 7 != 0).then_some(i as f64)).collect();
        let ys: Vec<Option<f64>> = (0..500)
            .map(|i| (i % 11 != 0).then(|| 2.5 * i as f64 + ((i * i) % 97) as f64))
            .collect();
        let mut whole = PairMoments::default();
        whole.update(&xs, &ys);
        let mut merged = PairMoments::default();
        for (xc, yc) in xs.chunks(64).zip(ys.chunks(64)) {
            let mut p = PairMoments::default();
            p.update(xc, yc);
            merged.merge(&p);
        }
        assert_eq!(merged.n, whole.n);
        assert!((merged.pearson_abs() - whole.pearson_abs()).abs() < 1e-9);
        assert!(whole.pearson_abs() > 0.9);
    }
}

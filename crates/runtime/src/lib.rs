//! Persistent work-stealing runtime for CatDB's CPU-bound hot loops.
//!
//! Every parallel call site in the workspace used to spawn fresh OS
//! threads through `crossbeam::thread::scope`, once per profiled table,
//! per trained forest, per cleaning round. This crate replaces that with
//! one lazily-initialized pool of long-lived workers and two primitives:
//!
//! - [`parallel_map`]: apply a function to every element of a slice and
//!   collect the results **in input order**.
//! - [`parallel_chunks`]: apply a function to fixed-size contiguous index
//!   ranges of `0..total` and collect the per-chunk results in range
//!   order. Chunk boundaries depend only on `total` and `chunk_size`,
//!   never on the thread count, so flattened outputs are stable.
//! - [`parallel_map_io`]: `parallel_map` for latency-bound work (LLM
//!   round trips) on dedicated scoped threads, so fan-out width is not
//!   capped by the CPU-sized pool.
//!
//! # Determinism
//!
//! Work distribution is dynamic — idle threads steal the next unclaimed
//! index from a shared atomic cursor — but results are written back by
//! input index, so the returned `Vec` is byte-identical no matter how
//! many threads participated or how the OS scheduled them. Callers keep
//! their per-item seeding (`seed ^ idx`) and get thread-count-independent
//! output for free.
//!
//! # Sizing
//!
//! The pool holds `CATDB_THREADS` workers when that environment variable
//! is set, otherwise [`std::thread::available_parallelism`]. Each call
//! additionally caps its own fan-out with the `limit` argument (wired to
//! `ProfileOptions::n_threads` / `ForestConfig::n_threads`); `limit <= 1`
//! runs entirely inline on the calling thread.
//!
//! # Nesting and panics
//!
//! The submitting thread always participates in its own batch and, while
//! waiting for stragglers, drains other batches from the shared queue —
//! so a `parallel_map` issued from inside a pool worker cannot deadlock
//! even on a single-worker pool. A panicking task does not poison the
//! pool: the first payload is captured and re-raised on the submitting
//! thread once the batch has drained.
//!
//! # Observability
//!
//! When a [`catdb_trace`] sink is installed on the submitting thread it
//! is propagated to every worker that executes tasks for the batch, and
//! the pool reports `runtime.tasks` (items executed) and `runtime.steals`
//! (items executed by a thread other than the submitter) counters.

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Counter name for items executed through the pool.
pub const COUNTER_TASKS: &str = "runtime.tasks";
/// Counter name for items executed by a thread other than the submitter.
pub const COUNTER_STEALS: &str = "runtime.steals";

/// A unit of queued work: a type-erased pointer to the batch runner that
/// lives on the submitting thread's stack, plus the batch's completion
/// tracker. The pointer is only dereferenced before [`BatchSync`] is
/// notified, and the submitter blocks until every queued job has done so
/// — which is what makes the lifetime erasure sound.
struct Job {
    runner: *const (dyn Fn(bool) + Sync),
    sync: Arc<BatchSync>,
}

// SAFETY: the runner pointer targets a closure that is kept alive by the
// submitting thread until `BatchSync::pending` reaches zero, and every
// job decrements `pending` only after its last use of the pointer.
unsafe impl Send for Job {}

/// Per-batch completion tracking shared between the submitter and the
/// queued jobs. Heap-allocated (unlike the runner) so a job can safely
/// signal completion even while the submitter is about to return.
struct BatchSync {
    /// Queued jobs that have not finished executing yet.
    pending: AtomicUsize,
}

impl BatchSync {
    fn finish_one(&self, pool: &Pool) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
        // Take the queue lock (even though nothing is pushed) so the
        // notification cannot slip between a waiter's check and its park.
        drop(pool.queue.lock().unwrap());
        pool.cv.notify_all();
    }
}

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    workers: usize,
}

impl Pool {
    fn push_jobs(&self, runner: *const (dyn Fn(bool) + Sync), n: usize, sync: &Arc<BatchSync>) {
        if n == 0 {
            return;
        }
        sync.pending.fetch_add(n, Ordering::SeqCst);
        let mut q = self.queue.lock().unwrap();
        for _ in 0..n {
            q.push_back(Job { runner, sync: sync.clone() });
        }
        drop(q);
        self.cv.notify_all();
    }

    /// Main loop for pool workers: execute queued jobs forever.
    fn worker_loop(&self) {
        let mut q = self.queue.lock().unwrap();
        loop {
            if let Some(job) = q.pop_front() {
                drop(q);
                // SAFETY: see `Job` — the submitter keeps the runner
                // alive until `finish_one` below has run.
                unsafe { (*job.runner)(true) };
                job.sync.finish_one(self);
                q = self.queue.lock().unwrap();
            } else {
                q = self.cv.wait(q).unwrap();
            }
        }
    }

    /// Block until `sync.pending` drops to zero, helping with whatever
    /// work is queued in the meantime (ours or another batch's) so that
    /// nested calls on a starved pool still make progress.
    fn wait_batch(&self, sync: &BatchSync) {
        let mut q = self.queue.lock().unwrap();
        loop {
            if sync.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            if let Some(job) = q.pop_front() {
                drop(q);
                // SAFETY: see `Job`.
                unsafe { (*job.runner)(true) };
                job.sync.finish_one(self);
                q = self.queue.lock().unwrap();
            } else {
                q = self.cv.wait(q).unwrap();
            }
        }
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = pool_size();
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            workers,
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("catdb-worker-{i}"))
                .spawn(move || pool.worker_loop())
                .expect("spawn catdb-runtime worker");
        }
        pool
    })
}

/// Number of persistent workers the pool is (or will be) created with:
/// `CATDB_THREADS` when set to a positive integer, otherwise the host's
/// available parallelism. The submitting thread always works too, so the
/// effective width of a saturating call is `pool_size() + 1`.
pub fn pool_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| {
        std::env::var("CATDB_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .clamp(1, 64)
    })
}

/// Shared state for one `parallel_map` batch, borrowed by the runner.
struct MapState<'a, T, R, F> {
    items: &'a [T],
    f: &'a F,
    cursor: AtomicUsize,
    out: Mutex<Vec<(usize, R)>>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Apply `f` to every element of `items` and return the results in input
/// order, using up to `limit` threads (the caller plus stolen help from
/// the pool). `limit <= 1` runs sequentially inline. The output is
/// independent of `limit`, the pool size, and scheduling.
pub fn parallel_map<T, R, F>(limit: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let sink = catdb_trace::current();
    if limit <= 1 || len == 1 {
        let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        if let Some(s) = &sink {
            s.add_counter(COUNTER_TASKS, len as f64);
        }
        return out;
    }

    let state = MapState {
        items,
        f: &f,
        cursor: AtomicUsize::new(0),
        out: Mutex::new(Vec::with_capacity(len)),
        panic: Mutex::new(None),
    };

    // The runner claims indices until the batch is exhausted. It is
    // shared verbatim between the submitter (`stolen = false`) and any
    // pool worker that picks up one of the queued jobs.
    let runner = |stolen: bool| {
        let _guard = sink.as_ref().map(|s| catdb_trace::install(s.clone()));
        let mut local: Vec<(usize, R)> = Vec::new();
        let mut executed = 0usize;
        loop {
            let i = state.cursor.fetch_add(1, Ordering::SeqCst);
            if i >= len {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| (state.f)(i, &state.items[i]))) {
                Ok(r) => local.push((i, r)),
                Err(payload) => {
                    let mut slot = state.panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            executed += 1;
        }
        if !local.is_empty() {
            state.out.lock().unwrap().append(&mut local);
        }
        if let Some(s) = &sink {
            if executed > 0 {
                s.add_counter(COUNTER_TASKS, executed as f64);
                if stolen {
                    s.add_counter(COUNTER_STEALS, executed as f64);
                }
            }
        }
    };

    let pool = pool();
    let helpers = (limit - 1).min(pool.workers).min(len - 1);
    let sync = Arc::new(BatchSync { pending: AtomicUsize::new(0) });
    // SAFETY: erase the runner's stack lifetime. `wait_batch` below does
    // not return until every job queued here has finished its last use
    // of this pointer, so it never dangles while reachable.
    let erased: *const (dyn Fn(bool) + Sync) = unsafe {
        std::mem::transmute::<*const (dyn Fn(bool) + Sync + '_), *const (dyn Fn(bool) + Sync)>(
            &runner as &(dyn Fn(bool) + Sync) as *const _,
        )
    };
    pool.push_jobs(erased, helpers, &sync);
    runner(false);
    pool.wait_batch(&sync);
    // All queued jobs have signalled completion; nothing aliases `state`
    // or `runner` any more.

    if let Some(payload) = state.panic.lock().unwrap().take() {
        resume_unwind(payload);
    }
    let mut out = state.out.into_inner().unwrap();
    out.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(out.len(), len);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Like [`parallel_map`], but for latency-bound tasks — network round
/// trips, simulated or real LLM calls — whose threads spend their time
/// blocked, not computing. These run on dedicated scoped threads instead
/// of the CPU-sized worker pool, so the fan-out width is `min(limit,
/// len)` even on a single-core host where the pool has one worker (a
/// width-4 LLM fan-out overlaps four round-trips regardless of core
/// count). Results come back in input order; `limit <= 1` runs entirely
/// inline on the calling thread; an installed trace sink propagates to
/// every worker thread.
pub fn parallel_map_io<T, R, F>(limit: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let sink = catdb_trace::current();
    if limit <= 1 || len == 1 {
        let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        if let Some(s) = &sink {
            s.add_counter(COUNTER_TASKS, len as f64);
        }
        return out;
    }

    let cursor = AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|scope| {
        for _ in 0..limit.min(len) {
            scope.spawn(|| {
                let _guard = sink.as_ref().map(|s| catdb_trace::install(s.clone()));
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::SeqCst);
                    if i >= len {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                if !local.is_empty() {
                    if let Some(s) = &sink {
                        s.add_counter(COUNTER_TASKS, local.len() as f64);
                    }
                    out.lock().unwrap().append(&mut local);
                }
            });
        }
    });
    let mut out = out.into_inner().unwrap();
    out.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(out.len(), len);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Apply `f` to contiguous `chunk_size`-wide ranges covering `0..total`
/// and return the per-chunk results in range order. Boundaries depend
/// only on `total` and `chunk_size`, so flattening the result yields the
/// same bytes for every `limit` and pool size.
pub fn parallel_chunks<R, F>(limit: usize, total: usize, chunk_size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let chunk = chunk_size.max(1);
    let ranges: Vec<Range<usize>> =
        (0..total).step_by(chunk).map(|s| s..(s + chunk).min(total)).collect();
    parallel_map(limit, &ranges, |_, r| f(r.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..503).collect();
        let out = parallel_map(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * 3 + 1
        });
        assert_eq!(out, (0..503).map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn map_is_identical_across_limits() {
        let items: Vec<u64> = (0..257).collect();
        let run = |limit| parallel_map(limit, &items, |i, &x| x.wrapping_mul(i as u64 ^ 0x9e37));
        let base = run(1);
        for limit in [2, 4, 8, 32] {
            assert_eq!(run(limit), base, "limit {limit} diverged");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u8> = vec![];
        assert!(parallel_map(4, &none, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn io_map_is_ordered_and_identical_across_limits() {
        let items: Vec<u64> = (0..97).collect();
        let run = |limit| parallel_map_io(limit, &items, |i, &x| x.wrapping_mul(i as u64 ^ 0x9e37));
        let base = run(1);
        for limit in [2, 4, 16] {
            assert_eq!(run(limit), base, "limit {limit} diverged");
        }
        let none: Vec<u8> = vec![];
        assert!(parallel_map_io(4, &none, |_, &x| x).is_empty());
    }

    #[test]
    fn io_map_width_exceeds_the_cpu_pool() {
        // Eight sleepers at width 8 must overlap: even on a single-core
        // host the wall-clock is one sleep, not eight, because the I/O
        // variant spawns its own scoped threads rather than queueing on
        // the CPU-sized pool.
        let items: Vec<u8> = (0..8).collect();
        let started = std::time::Instant::now();
        let out = parallel_map_io(8, &items, |_, &x| {
            std::thread::sleep(std::time::Duration::from_millis(40));
            x
        });
        assert_eq!(out, items);
        assert!(
            started.elapsed() < std::time::Duration::from_millis(8 * 40),
            "sleeps did not overlap: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn io_map_propagates_the_trace_sink() {
        let sink = Arc::new(catdb_trace::TraceSink::new());
        let _guard = catdb_trace::install(sink.clone());
        let items: Vec<u8> = (0..12).collect();
        parallel_map_io(4, &items, |_, &x| {
            catdb_trace::add_counter("io.test", 1.0);
            x
        });
        let trace = sink.snapshot();
        assert_eq!(trace.counters["io.test"], 12.0);
        assert_eq!(trace.counters[COUNTER_TASKS], 12.0);
    }

    #[test]
    fn nested_calls_complete_on_a_busy_pool() {
        // Saturate the pool with outer tasks that each run an inner
        // parallel_map; the help-while-waiting loop must prevent
        // deadlock even if every worker is stuck in an outer task.
        let outer: Vec<usize> = (0..16).collect();
        let out = parallel_map(8, &outer, |_, &o| {
            let inner: Vec<usize> = (0..50).collect();
            parallel_map(4, &inner, |_, &i| i + o).iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..16).map(|o| (0..50).map(|i| i + o).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let hit = AtomicBool::new(false);
        let items: Vec<usize> = (0..64).collect();
        let res = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(4, &items, |_, &x| {
                if x == 13 {
                    hit.store(true, Ordering::SeqCst);
                    panic!("boom at {x}");
                }
                x
            })
        }));
        assert!(hit.load(Ordering::SeqCst));
        assert!(res.is_err(), "task panic must re-raise on the submitter");
        // The pool survives the panic and keeps serving work.
        assert_eq!(parallel_map(4, &items, |_, &x| x).len(), 64);
    }

    #[test]
    fn chunks_cover_range_in_order() {
        let out = parallel_chunks(8, 103, 10, |r| r.collect::<Vec<usize>>());
        let flat: Vec<usize> = out.into_iter().flatten().collect();
        assert_eq!(flat, (0..103).collect::<Vec<_>>());
        // Chunk layout is a function of (total, chunk_size) only.
        let a = parallel_chunks(1, 103, 10, |r| (r.start, r.end));
        let b = parallel_chunks(8, 103, 10, |r| (r.start, r.end));
        assert_eq!(a, b);
    }

    #[test]
    fn trace_counters_record_tasks() {
        let sink = Arc::new(catdb_trace::TraceSink::new());
        let guard = catdb_trace::install(sink.clone());
        let items: Vec<usize> = (0..40).collect();
        let _ = parallel_map(4, &items, |_, &x| x * 2);
        drop(guard);
        let trace = sink.snapshot();
        assert_eq!(trace.counters.get(COUNTER_TASKS).copied(), Some(40.0));
        // Steals are scheduling-dependent; they must never exceed tasks.
        let steals = trace.counters.get(COUNTER_STEALS).copied().unwrap_or(0.0);
        assert!(steals <= 40.0);
    }
}

//! AutoML tool simulations: Auto-Sklearn (1/2), H2O AutoML, FLAML, and
//! AutoGluon, as behavioural re-implementations over the `catdb-ml`
//! estimators.
//!
//! Each tool runs a time-budgeted model search with its signature
//! strategy (meta-learned portfolio / random order / cost-frugal /
//! stacked ensembling) on top of the shared *basic* preprocessing — and
//! with the failure envelope the paper reports: memory limits (OOM
//! cells), budget exhaustion (TO cells), and task-support gaps (N/A
//! cells) in Tables 5 and 7.

use crate::featurize::BasicFeaturizer;
use catdb_ml::{
    metrics, BoostConfig, Classifier, ClassifierModel, ForestConfig, GaussianNb,
    GradientBoostingClassifier, GradientBoostingRegressor, KnnClassifier, KnnConfig, KnnRegressor,
    LogisticRegression, Matrix, RandomForestClassifier, RandomForestRegressor, Regressor,
    RegressorModel, RidgeRegression, SplitMode, TaskKind, TreeConfig,
};
use catdb_table::Table;
use std::time::Instant;

/// Search strategies of the four tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Auto-Sklearn: meta-learning warm start — a fixed portfolio order
    /// that puts historically strong configurations first.
    Portfolio,
    /// H2O AutoML: random grid over families.
    RandomGrid,
    /// FLAML: cost-frugal — cheapest learners first, escalate on budget.
    CostFrugal,
    /// AutoGluon: train several families and stack (average) them.
    Stacking,
}

/// Static behavioural profile of one tool.
#[derive(Debug, Clone)]
pub struct ToolProfile {
    pub name: &'static str,
    pub strategy: SearchStrategy,
    pub supports_classification: bool,
    pub supports_regression: bool,
    /// Simulated memory envelope: maximum matrix cells (rows × cols)
    /// the tool can hold with its internal copies.
    pub max_cells: usize,
    /// Minimum seconds one candidate costs (prevents "free" search on
    /// tiny data so budgets bind the way the paper's do).
    pub per_candidate_overhead: f64,
}

impl ToolProfile {
    pub fn auto_sklearn() -> ToolProfile {
        // Auto-Sklearn 2.0 is classification-only; the paper pairs it with
        // Auto-Sklearn (1) for regression — we expose both supports and
        // let the caller pick.
        ToolProfile {
            name: "auto_sklearn",
            strategy: SearchStrategy::Portfolio,
            supports_classification: true,
            supports_regression: true,
            // The paper's Auto-Sklearn rows are OOM on every large dataset.
            max_cells: 450_000,
            per_candidate_overhead: 0.02,
        }
    }

    pub fn h2o() -> ToolProfile {
        ToolProfile {
            name: "h2o",
            strategy: SearchStrategy::RandomGrid,
            supports_classification: true,
            // H2O shows N/A on most regression rows of Table 7.
            supports_regression: false,
            max_cells: 40_000_000,
            per_candidate_overhead: 0.015,
        }
    }

    pub fn flaml() -> ToolProfile {
        ToolProfile {
            name: "flaml",
            strategy: SearchStrategy::CostFrugal,
            supports_classification: true,
            supports_regression: true,
            max_cells: 20_000_000,
            per_candidate_overhead: 0.005,
        }
    }

    pub fn autogluon() -> ToolProfile {
        ToolProfile {
            name: "autogluon",
            strategy: SearchStrategy::Stacking,
            supports_classification: true,
            supports_regression: true,
            max_cells: 30_000_000,
            per_candidate_overhead: 0.02,
        }
    }

    pub fn all() -> Vec<ToolProfile> {
        vec![Self::auto_sklearn(), Self::h2o(), Self::flaml(), Self::autogluon()]
    }
}

/// Run configuration.
#[derive(Debug, Clone)]
pub struct AutoMlConfig {
    /// Wall-clock budget (the paper sets this to the measured CatDB
    /// runtime).
    pub time_budget_seconds: f64,
    pub seed: u64,
    /// Split-search strategy for the tree-family candidates; binned mode
    /// lets a fixed budget evaluate more of the portfolio.
    pub split_mode: SplitMode,
}

impl Default for AutoMlConfig {
    fn default() -> Self {
        AutoMlConfig { time_budget_seconds: 20.0, seed: 5, split_mode: SplitMode::Exact }
    }
}

/// Outcome of one tool run.
#[derive(Debug, Clone)]
pub enum AutoMlOutcome {
    Success {
        /// Headline scores (AUC / R², matching the paper's tables).
        train_score: f64,
        test_score: f64,
        /// Accuracy-style percentages for Table 5.
        train_accuracy_pct: f64,
        test_accuracy_pct: f64,
        best_model: String,
        candidates_evaluated: usize,
        elapsed_seconds: f64,
    },
    OutOfMemory,
    Timeout,
    Unsupported(&'static str),
    NoModels(String),
}

impl AutoMlOutcome {
    pub fn test_score(&self) -> Option<f64> {
        match self {
            AutoMlOutcome::Success { test_score, .. } => Some(*test_score),
            _ => None,
        }
    }

    /// Table-cell rendering ("OOM", "TO", "N/A", or the score).
    pub fn cell(&self) -> String {
        match self {
            AutoMlOutcome::Success { test_score, .. } => format!("{:.1}", test_score * 100.0),
            AutoMlOutcome::OutOfMemory => "OOM".to_string(),
            AutoMlOutcome::Timeout => "TO".to_string(),
            AutoMlOutcome::Unsupported(_) => "N/A".to_string(),
            AutoMlOutcome::NoModels(_) => "no models".to_string(),
        }
    }
}

fn classifier_candidates(
    strategy: SearchStrategy,
    seed: u64,
    split_mode: SplitMode,
) -> Vec<(String, Box<dyn Classifier>)> {
    let rf = |trees: usize, depth: usize| -> Box<dyn Classifier> {
        Box::new(RandomForestClassifier {
            config: ForestConfig {
                n_trees: trees,
                max_depth: depth,
                seed,
                split_mode,
                ..Default::default()
            },
        })
    };
    let gb = |rounds: usize| -> Box<dyn Classifier> {
        Box::new(GradientBoostingClassifier {
            config: BoostConfig { n_rounds: rounds, seed, split_mode, ..Default::default() },
        })
    };
    let logistic = || -> Box<dyn Classifier> { Box::new(LogisticRegression::default()) };
    let tree = || -> Box<dyn Classifier> {
        Box::new(catdb_ml::DecisionTreeClassifier {
            config: TreeConfig { max_depth: 8, split_mode, ..Default::default() },
        })
    };
    let knn = || -> Box<dyn Classifier> { Box::new(KnnClassifier { config: KnnConfig { k: 7 } }) };
    let nb = || -> Box<dyn Classifier> { Box::new(GaussianNb) };

    match strategy {
        SearchStrategy::Portfolio => vec![
            ("rf_100".into(), rf(60, 14)),
            ("gb_80".into(), gb(50)),
            ("logistic".into(), logistic()),
            ("rf_30".into(), rf(30, 10)),
            ("gaussian_nb".into(), nb()),
            ("knn7".into(), knn()),
        ],
        SearchStrategy::RandomGrid => vec![
            ("gb_40".into(), gb(40)),
            ("rf_50".into(), rf(50, 12)),
            ("knn7".into(), knn()),
            ("logistic".into(), logistic()),
            ("rf_80".into(), rf(80, 14)),
        ],
        SearchStrategy::CostFrugal => vec![
            ("tree8".into(), tree()),
            ("gaussian_nb".into(), nb()),
            ("logistic".into(), logistic()),
            ("rf_20".into(), rf(20, 10)),
            ("rf_60".into(), rf(60, 14)),
            ("gb_60".into(), gb(60)),
        ],
        SearchStrategy::Stacking => vec![
            ("rf_60".into(), rf(60, 14)),
            ("gb_50".into(), gb(50)),
            ("logistic".into(), logistic()),
        ],
    }
}

fn regressor_candidates(
    strategy: SearchStrategy,
    seed: u64,
    split_mode: SplitMode,
) -> Vec<(String, Box<dyn Regressor>)> {
    let rf = |trees: usize| -> Box<dyn Regressor> {
        Box::new(RandomForestRegressor {
            config: ForestConfig { n_trees: trees, seed, split_mode, ..Default::default() },
        })
    };
    let gb = || -> Box<dyn Regressor> {
        Box::new(GradientBoostingRegressor {
            config: BoostConfig { seed, split_mode, ..Default::default() },
        })
    };
    let ridge = || -> Box<dyn Regressor> { Box::new(RidgeRegression::default()) };
    let knn = || -> Box<dyn Regressor> { Box::new(KnnRegressor { config: KnnConfig { k: 7 } }) };
    match strategy {
        SearchStrategy::CostFrugal => {
            vec![
                ("ridge".into(), ridge()),
                ("rf_20".into(), rf(20)),
                ("gb".into(), gb()),
                ("rf_60".into(), rf(60)),
            ]
        }
        SearchStrategy::Stacking => {
            vec![("rf_60".into(), rf(60)), ("gb".into(), gb()), ("ridge".into(), ridge())]
        }
        _ => vec![
            ("rf_60".into(), rf(60)),
            ("gb".into(), gb()),
            ("ridge".into(), ridge()),
            ("knn7".into(), knn()),
        ],
    }
}

/// Split rows into search-train and internal-validation index sets.
fn holdout(n: usize) -> (Vec<usize>, Vec<usize>) {
    let cut = (n as f64 * 0.8) as usize;
    ((0..cut).collect(), (cut..n).collect())
}

/// Run one AutoML tool end to end.
pub fn run_automl(
    tool: &ToolProfile,
    train: &Table,
    test: &Table,
    target: &str,
    task: TaskKind,
    cfg: &AutoMlConfig,
) -> AutoMlOutcome {
    let started = Instant::now();
    if task.is_classification() && !tool.supports_classification {
        return AutoMlOutcome::Unsupported("classification not supported");
    }
    if task == TaskKind::Regression && !tool.supports_regression {
        return AutoMlOutcome::Unsupported("regression not supported");
    }

    let featurizer = match BasicFeaturizer::fit(train, target) {
        Ok(f) => f,
        Err(e) => return AutoMlOutcome::NoModels(e.to_string()),
    };
    let x_train = match featurizer.transform(train, target) {
        Ok(m) => m,
        Err(e) => return AutoMlOutcome::NoModels(e.to_string()),
    };
    let x_test = match featurizer.transform(test, target) {
        Ok(m) => m,
        Err(e) => return AutoMlOutcome::NoModels(e.to_string()),
    };
    // Memory envelope: internal copies scale the working set ~6×.
    let cells = x_train.rows() * x_train.cols() * 6;
    if cells > tool.max_cells {
        return AutoMlOutcome::OutOfMemory;
    }

    let (fit_idx, val_idx) = holdout(x_train.rows());
    let x_fit = x_train.take_rows(&fit_idx);
    let x_val = x_train.take_rows(&val_idx);

    let budget = cfg.time_budget_seconds;
    let mut overhead_spent = 0.0;

    if task.is_classification() {
        let (y_train, y_test, k) = match featurizer.labels(train, test, target) {
            Ok(v) => v,
            Err(e) => return AutoMlOutcome::NoModels(e.to_string()),
        };
        let y_fit: Vec<usize> = fit_idx.iter().map(|&i| y_train[i]).collect();
        let y_val: Vec<usize> = val_idx.iter().map(|&i| y_train[i]).collect();
        let mut best: Option<(f64, String, Box<dyn ClassifierModel>)> = None;
        let mut stack: Vec<Box<dyn ClassifierModel>> = Vec::new();
        let mut evaluated = 0;
        for (name, cand) in classifier_candidates(tool.strategy, cfg.seed, cfg.split_mode) {
            overhead_spent += tool.per_candidate_overhead;
            if started.elapsed().as_secs_f64() + overhead_spent > budget && evaluated > 0 {
                break;
            }
            let Ok(model) = cand.fit(&x_fit, &y_fit, k) else { continue };
            evaluated += 1;
            let Ok(proba) = model.predict_proba(&x_val) else { continue };
            let score = metrics::auc_macro_ovr(&y_val, &proba, k);
            if tool.strategy == SearchStrategy::Stacking {
                stack.push(model);
            } else if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
                best = Some((score, name, model));
            }
            if started.elapsed().as_secs_f64() + overhead_spent > budget {
                break;
            }
        }
        let score_with = |proba_train: Vec<Vec<f64>>, proba_test: Vec<Vec<f64>>, name: String| {
            let pred_train: Vec<usize> = proba_train.iter().map(|p| catdb_ml::argmax(p)).collect();
            let pred_test: Vec<usize> = proba_test.iter().map(|p| catdb_ml::argmax(p)).collect();
            AutoMlOutcome::Success {
                train_score: metrics::auc_macro_ovr(&y_train, &proba_train, k),
                test_score: metrics::auc_macro_ovr(&y_test, &proba_test, k),
                train_accuracy_pct: metrics::accuracy(&y_train, &pred_train) * 100.0,
                test_accuracy_pct: metrics::accuracy(&y_test, &pred_test) * 100.0,
                best_model: name,
                candidates_evaluated: evaluated,
                elapsed_seconds: started.elapsed().as_secs_f64() + overhead_spent,
            }
        };
        if tool.strategy == SearchStrategy::Stacking && !stack.is_empty() {
            let avg = |x: &Matrix| -> Vec<Vec<f64>> {
                let mut acc = vec![vec![0.0; k]; x.rows()];
                for m in &stack {
                    if let Ok(p) = m.predict_proba(x) {
                        for (a, row) in acc.iter_mut().zip(p) {
                            for (ai, v) in a.iter_mut().zip(row) {
                                *ai += v;
                            }
                        }
                    }
                }
                let denom = stack.len() as f64;
                for row in &mut acc {
                    row.iter_mut().for_each(|v| *v /= denom);
                }
                acc
            };
            return score_with(avg(&x_train), avg(&x_test), format!("stack_{}", stack.len()));
        }
        match best {
            Some((_, name, model)) => {
                let Ok(pt) = model.predict_proba(&x_train) else {
                    return AutoMlOutcome::NoModels("prediction failed".into());
                };
                let Ok(pe) = model.predict_proba(&x_test) else {
                    return AutoMlOutcome::NoModels("prediction failed".into());
                };
                score_with(pt, pe, name)
            }
            None => {
                if started.elapsed().as_secs_f64() + overhead_spent >= budget {
                    AutoMlOutcome::Timeout
                } else {
                    AutoMlOutcome::NoModels("no candidate finished".into())
                }
            }
        }
    } else {
        let (y_train, y_test) = match featurizer.regression_targets(train, test, target) {
            Ok(v) => v,
            Err(e) => return AutoMlOutcome::NoModels(e.to_string()),
        };
        let y_fit: Vec<f64> = fit_idx.iter().map(|&i| y_train[i]).collect();
        let y_val: Vec<f64> = val_idx.iter().map(|&i| y_train[i]).collect();
        let mut best: Option<(f64, String, Box<dyn RegressorModel>)> = None;
        let mut stack: Vec<Box<dyn RegressorModel>> = Vec::new();
        let mut evaluated = 0;
        for (name, cand) in regressor_candidates(tool.strategy, cfg.seed, cfg.split_mode) {
            overhead_spent += tool.per_candidate_overhead;
            if started.elapsed().as_secs_f64() + overhead_spent > budget && evaluated > 0 {
                break;
            }
            let Ok(model) = cand.fit(&x_fit, &y_fit) else { continue };
            evaluated += 1;
            let Ok(pred) = model.predict(&x_val) else { continue };
            let score = metrics::r2(&y_val, &pred);
            if tool.strategy == SearchStrategy::Stacking {
                stack.push(model);
            } else if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
                best = Some((score, name, model));
            }
        }
        let finish = |pred_train: Vec<f64>, pred_test: Vec<f64>, name: String| {
            let train_r2 = metrics::r2(&y_train, &pred_train);
            let test_r2 = metrics::r2(&y_test, &pred_test);
            AutoMlOutcome::Success {
                train_score: train_r2,
                test_score: test_r2,
                train_accuracy_pct: train_r2.max(0.0) * 100.0,
                test_accuracy_pct: test_r2.max(0.0) * 100.0,
                best_model: name,
                candidates_evaluated: evaluated,
                elapsed_seconds: started.elapsed().as_secs_f64() + overhead_spent,
            }
        };
        if tool.strategy == SearchStrategy::Stacking && !stack.is_empty() {
            let avg = |x: &Matrix| -> Vec<f64> {
                let mut acc = vec![0.0; x.rows()];
                for m in &stack {
                    if let Ok(p) = m.predict(x) {
                        for (a, v) in acc.iter_mut().zip(p) {
                            *a += v;
                        }
                    }
                }
                acc.iter().map(|v| v / stack.len() as f64).collect()
            };
            return finish(avg(&x_train), avg(&x_test), format!("stack_{}", stack.len()));
        }
        match best {
            Some((_, name, model)) => {
                let (Ok(pt), Ok(pe)) = (model.predict(&x_train), model.predict(&x_test)) else {
                    return AutoMlOutcome::NoModels("prediction failed".into());
                };
                finish(pt, pe, name)
            }
            None => {
                if started.elapsed().as_secs_f64() + overhead_spent >= budget {
                    AutoMlOutcome::Timeout
                } else {
                    AutoMlOutcome::NoModels("no candidate finished".into())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdb_table::Column;

    fn dataset(n: usize) -> (Table, Table) {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let g: Vec<&str> = (0..n).map(|i| ["a", "b", "c"][i % 3]).collect();
        let y: Vec<&str> = (0..n).map(|i| if i < n / 2 { "n" } else { "p" }).collect();
        let t = Table::from_columns(vec![
            ("x", Column::from_f64(x)),
            ("g", Column::from_strings(g)),
            ("y", Column::from_strings(y)),
        ])
        .unwrap();
        t.train_test_split(0.7, 1).unwrap()
    }

    #[test]
    fn all_tools_succeed_on_clean_small_classification() {
        let (train, test) = dataset(400);
        for tool in ToolProfile::all() {
            let out = run_automl(
                &tool,
                &train,
                &test,
                "y",
                TaskKind::BinaryClassification,
                &AutoMlConfig::default(),
            );
            match out {
                AutoMlOutcome::Success { test_score, .. } => {
                    assert!(test_score > 0.85, "{}: {test_score}", tool.name)
                }
                other => panic!("{} failed: {:?}", tool.name, other.cell()),
            }
        }
    }

    #[test]
    fn h2o_declines_regression() {
        let (train, test) = dataset(200);
        let out = run_automl(
            &ToolProfile::h2o(),
            &train,
            &test,
            "x",
            TaskKind::Regression,
            &AutoMlConfig::default(),
        );
        assert!(matches!(out, AutoMlOutcome::Unsupported(_)));
        assert_eq!(out.cell(), "N/A");
    }

    #[test]
    fn auto_sklearn_ooms_on_wide_data() {
        // 2000 rows × 60 cols × 6 copies exceeds the 600k-cell envelope.
        let n = 2000;
        let mut cols: Vec<(String, Column)> = (0..60)
            .map(|c| {
                (
                    format!("f{c}"),
                    Column::from_f64((0..n).map(|i| ((i * (c + 1)) % 17) as f64).collect()),
                )
            })
            .collect();
        cols.push((
            "y".to_string(),
            Column::from_strings(
                (0..n).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect::<Vec<_>>(),
            ),
        ));
        let t = Table::from_columns(cols).unwrap();
        let (train, test) = t.train_test_split(0.7, 1).unwrap();
        let out = run_automl(
            &ToolProfile::auto_sklearn(),
            &train,
            &test,
            "y",
            TaskKind::BinaryClassification,
            &AutoMlConfig::default(),
        );
        assert!(matches!(out, AutoMlOutcome::OutOfMemory));
        assert_eq!(out.cell(), "OOM");
    }

    #[test]
    fn tiny_budget_limits_candidates() {
        let (train, test) = dataset(600);
        let cfg = AutoMlConfig { time_budget_seconds: 0.021, ..Default::default() };
        let out = run_automl(
            &ToolProfile::auto_sklearn(),
            &train,
            &test,
            "y",
            TaskKind::BinaryClassification,
            &cfg,
        );
        match out {
            AutoMlOutcome::Success { candidates_evaluated, .. } => {
                assert!(candidates_evaluated <= 2, "evaluated {candidates_evaluated}")
            }
            AutoMlOutcome::Timeout => {}
            other => panic!("unexpected {:?}", other.cell()),
        }
    }

    #[test]
    fn regression_tools_fit_linear_data() {
        let n = 300;
        let x: Vec<f64> = (0..n).map(|i| (i % 37) as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 5.0).collect();
        let t = Table::from_columns(vec![("x", Column::from_f64(x)), ("y", Column::from_f64(y))])
            .unwrap();
        let (train, test) = t.train_test_split(0.7, 1).unwrap();
        for tool in [ToolProfile::flaml(), ToolProfile::autogluon(), ToolProfile::auto_sklearn()] {
            let out = run_automl(
                &tool,
                &train,
                &test,
                "y",
                TaskKind::Regression,
                &AutoMlConfig::default(),
            );
            match out {
                AutoMlOutcome::Success { test_score, .. } => {
                    assert!(test_score > 0.9, "{}: {test_score}", tool.name)
                }
                other => panic!("{} failed: {}", tool.name, other.cell()),
            }
        }
    }
}

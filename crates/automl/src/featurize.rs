//! The *basic* internal preprocessing every AutoML tool applies: median /
//! most-frequent imputation and ordinal encoding of strings. This is
//! deliberately not data-centric — dirty category variants ("F" vs
//! "Female") become distinct codes, outliers pass straight through —
//! which is exactly why the paper's AutoML baselines degrade on dirty
//! data (Table 5, Figure 14) while CatDB's generated pipelines do not.

use catdb_ml::{
    featurize, regression_target, ImputeStrategy, Imputer, LabelEncoder, Matrix, MlError,
    OrdinalEncoder, Transform,
};
use catdb_table::{DataType, Table};

/// Fitted basic preprocessing, reusable on the test split.
pub struct BasicFeaturizer {
    imputers: Vec<Imputer>,
    encoders: Vec<OrdinalEncoder>,
}

impl BasicFeaturizer {
    /// Fit on the training table (ignoring the target column).
    pub fn fit(train: &Table, target: &str) -> Result<BasicFeaturizer, MlError> {
        let mut imputers = Vec::new();
        let mut encoders = Vec::new();
        for (field, col) in train.iter_columns() {
            if field.name == target {
                continue;
            }
            if col.null_count() > 0 {
                let strategy = if field.dtype.is_numeric() {
                    ImputeStrategy::Median
                } else {
                    ImputeStrategy::MostFrequent
                };
                let mut imp = Imputer::new(field.name.clone(), strategy);
                imp.fit(train).map_err(|e| MlError::Unsupported(e.to_string()))?;
                imputers.push(imp);
            }
            if field.dtype == DataType::Str {
                let mut enc = OrdinalEncoder::new(field.name.clone());
                enc.fit(train).map_err(|e| MlError::Unsupported(e.to_string()))?;
                encoders.push(enc);
            }
        }
        Ok(BasicFeaturizer { imputers, encoders })
    }

    /// Apply to any split and produce the model matrix.
    pub fn transform(&self, table: &Table, target: &str) -> Result<Matrix, MlError> {
        let mut t = table.clone();
        for imp in &self.imputers {
            if t.schema().contains(&imp.column) {
                t = imp.transform(&t).map_err(|e| MlError::Unsupported(e.to_string()))?;
            }
        }
        for enc in &self.encoders {
            if t.schema().contains(&enc.column) {
                t = enc.transform(&t).map_err(|e| MlError::Unsupported(e.to_string()))?;
            }
        }
        // Remaining nulls (e.g. test-only missing cells in columns that
        // were clean during fit) become zeros — AutoML tools silently
        // coerce here rather than failing.
        let (mut m, _) = featurize_with_nan_to_zero(&t, target)?;
        sanitize(&mut m);
        Ok(m)
    }

    /// Encoded classification labels shared across splits.
    pub fn labels(
        &self,
        train: &Table,
        other: &Table,
        target: &str,
    ) -> Result<(Vec<usize>, Vec<usize>, usize), MlError> {
        let enc = LabelEncoder::fit(train, target)?;
        let y_train = enc.encode(train, target)?;
        // Unseen test labels map to class 0 (tools score them wrong but
        // do not crash).
        let y_other = match enc.encode(other, target) {
            Ok(y) => y,
            Err(_) => {
                let col = other.column(target).map_err(|e| MlError::Unsupported(e.to_string()))?;
                (0..col.len())
                    .map(|i| {
                        let v = col.get(i).render();
                        enc.classes().iter().position(|c| c == &v).unwrap_or(0)
                    })
                    .collect()
            }
        };
        Ok((y_train, y_other, enc.n_classes()))
    }

    pub fn regression_targets(
        &self,
        train: &Table,
        other: &Table,
        target: &str,
    ) -> Result<(Vec<f64>, Vec<f64>), MlError> {
        let clean = |t: &Table| -> Result<Vec<f64>, MlError> {
            match regression_target(t, target) {
                Ok(y) => Ok(y),
                Err(_) => {
                    // Coerce nulls to the mean (tools do not crash on a few
                    // missing labels; they drop or impute them).
                    let vals = t
                        .column(target)
                        .map_err(|e| MlError::Unsupported(e.to_string()))?
                        .to_f64_vec();
                    let present: Vec<f64> = vals.iter().flatten().copied().collect();
                    if present.is_empty() {
                        return Err(MlError::EmptyInput);
                    }
                    let mean = present.iter().sum::<f64>() / present.len() as f64;
                    Ok(vals.into_iter().map(|v| v.unwrap_or(mean)).collect())
                }
            }
        };
        Ok((clean(train)?, clean(other)?))
    }
}

fn featurize_with_nan_to_zero(t: &Table, target: &str) -> Result<(Matrix, Vec<String>), MlError> {
    featurize(t, target)
}

fn sanitize(m: &mut Matrix) {
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            let v = m.get(r, c);
            if !v.is_finite() {
                m.set(r, c, 0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdb_table::Column;

    fn dirty_table() -> Table {
        Table::from_columns(vec![
            ("x", Column::Float(vec![Some(1.0), None, Some(3.0), Some(4.0)])),
            (
                "g",
                Column::Str(vec![Some("F".into()), Some("Female".into()), None, Some("M".into())]),
            ),
            ("y", Column::from_strings(vec!["a", "b", "a", "b"])),
        ])
        .unwrap()
    }

    #[test]
    fn basic_featurizer_produces_numeric_matrix() {
        let t = dirty_table();
        let f = BasicFeaturizer::fit(&t, "y").unwrap();
        let m = f.transform(&t, "y").unwrap();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 2);
        for r in 0..m.rows() {
            assert!(m.row(r).iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn dirty_variants_get_distinct_codes() {
        // "F" and "Female" become different ordinal codes — the basic
        // preprocessing does not merge them (unlike CatDB's refinement).
        let t = dirty_table();
        let f = BasicFeaturizer::fit(&t, "y").unwrap();
        let m = f.transform(&t, "y").unwrap();
        let g_codes: Vec<f64> = (0..4).map(|r| m.get(r, 1)).collect();
        assert_ne!(g_codes[0], g_codes[1], "F and Female should stay distinct");
    }

    #[test]
    fn labels_tolerate_unseen_classes() {
        let t = dirty_table();
        let f = BasicFeaturizer::fit(&t, "y").unwrap();
        let other = Table::from_columns(vec![
            ("x", Column::from_f64(vec![1.0])),
            ("g", Column::from_strings(vec!["F"])),
            ("y", Column::from_strings(vec!["zzz"])),
        ])
        .unwrap();
        let (y_train, y_other, k) = f.labels(&t, &other, "y").unwrap();
        assert_eq!(k, 2);
        assert_eq!(y_train.len(), 4);
        assert_eq!(y_other, vec![0]);
    }
}

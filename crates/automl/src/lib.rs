//! # catdb-automl — AutoML baseline simulations
//!
//! Behavioural re-implementations of the paper's AutoML baselines —
//! Auto-Sklearn (1/2), H2O AutoML, FLAML, AutoGluon — as time-budgeted
//! model searches over the `catdb-ml` estimators, each with its signature
//! search strategy and its failure envelope (OOM / TO / N/A cells from
//! Tables 5 and 7). All tools share the same deliberately *basic* internal
//! preprocessing ([`BasicFeaturizer`]): imputation + ordinal encoding, no
//! data-centric cleaning — which is why they degrade on dirty data while
//! CatDB's generated pipelines do not.

mod featurize;
mod tools;

pub use featurize::BasicFeaturizer;
pub use tools::{run_automl, AutoMlConfig, AutoMlOutcome, SearchStrategy, ToolProfile};

//! Table → matrix conversion, label encoding, and the task descriptor that
//! links a table to a supervised learning problem.
//!
//! `featurize` is deliberately strict: a remaining *string* column raises
//! the scikit-learn-style "could not convert string to float" error, and
//! remaining nulls become NaN, which the estimators reject. Both are the
//! runtime errors a generated pipeline produces when it skipped encoding
//! or imputation — the signal CatDB's error-management loop runs on.

use crate::estimator::MlError;
use crate::matrix::Matrix;
use catdb_table::{column_dict, DataType, Table, NULL_CODE};
use std::collections::HashMap;

/// Supervised task types, matching the paper's dataset table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    BinaryClassification,
    MulticlassClassification,
    Regression,
}

impl TaskKind {
    pub fn is_classification(self) -> bool {
        !matches!(self, TaskKind::Regression)
    }

    pub fn label(self) -> &'static str {
        match self {
            TaskKind::BinaryClassification => "binary_classification",
            TaskKind::MulticlassClassification => "multiclass_classification",
            TaskKind::Regression => "regression",
        }
    }

    pub fn parse(s: &str) -> Option<TaskKind> {
        match s {
            "binary_classification" | "binary" => Some(TaskKind::BinaryClassification),
            "multiclass_classification" | "multiclass" => Some(TaskKind::MulticlassClassification),
            "regression" => Some(TaskKind::Regression),
            _ => None,
        }
    }
}

/// Mapping from class label strings to indices, fitted on training data.
#[derive(Debug, Clone, Default)]
pub struct LabelEncoder {
    classes: Vec<String>,
    index: HashMap<String, usize>,
}

impl LabelEncoder {
    /// Fit over the target column's rendered values (nulls skipped).
    pub fn fit(table: &Table, target: &str) -> Result<LabelEncoder, MlError> {
        let col = table
            .column(target)
            .map_err(|_| MlError::Unsupported(format!("target column '{target}' not found")))?;
        // First-appearance class order, recovered from the column
        // dictionary: each distinct label is rendered exactly once and the
        // per-row scan only touches integer codes.
        let dict = column_dict(col);
        let mut classes: Vec<String> = Vec::new();
        let mut index = HashMap::new();
        let mut seen = vec![false; dict.n_distinct()];
        for &code in dict.codes() {
            if code == NULL_CODE || seen[code as usize] {
                continue;
            }
            seen[code as usize] = true;
            let key = dict.value_of(code).unwrap_or_default().to_string();
            index.insert(key.clone(), classes.len());
            classes.push(key);
        }
        if classes.len() < 2 {
            return Err(MlError::Unsupported(format!(
                "target '{target}' has {} distinct value(s); need at least 2",
                classes.len()
            )));
        }
        Ok(LabelEncoder { classes, index })
    }

    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Encode the target column leniently: unseen labels (and nulls) map
    /// to the out-of-range index `n_classes`, which no model ever
    /// predicts, so those rows simply score as wrong — matching how the
    /// paper's baselines evaluate on labels absent from training.
    pub fn encode_lossy(&self, table: &Table, target: &str) -> Result<Vec<usize>, MlError> {
        let col = table
            .column(target)
            .map_err(|_| MlError::Unsupported(format!("target column '{target}' not found")))?;
        let dict = column_dict(col);
        // Resolve each distinct label against the fitted classes once.
        let code_to_class: Vec<usize> = dict
            .values()
            .iter()
            .map(|v| self.index.get(v).copied().unwrap_or(self.classes.len()))
            .collect();
        Ok(dict
            .codes()
            .iter()
            .map(|&c| if c == NULL_CODE { self.classes.len() } else { code_to_class[c as usize] })
            .collect())
    }

    /// Encode the target column; unseen labels and nulls are errors
    /// (a test row with an unknown class cannot be scored).
    pub fn encode(&self, table: &Table, target: &str) -> Result<Vec<usize>, MlError> {
        let col = table
            .column(target)
            .map_err(|_| MlError::Unsupported(format!("target column '{target}' not found")))?;
        let dict = column_dict(col);
        let code_to_class: Vec<Option<usize>> =
            dict.values().iter().map(|v| self.index.get(v).copied()).collect();
        let mut out = Vec::with_capacity(dict.codes().len());
        for &c in dict.codes() {
            if c == NULL_CODE {
                return Err(MlError::NonFinite { location: "target labels" });
            }
            match code_to_class[c as usize] {
                Some(idx) => out.push(idx),
                None => {
                    return Err(MlError::Unsupported(format!(
                        "unseen class label '{}' in target '{target}'",
                        dict.value_of(c).unwrap_or_default()
                    )))
                }
            }
        }
        Ok(out)
    }
}

/// Convert all non-target columns to an `n × d` matrix. String columns are
/// an error; bool → 0/1; nulls → NaN (estimators reject them loudly).
/// Returns the matrix and the feature names in column order.
pub fn featurize(table: &Table, target: &str) -> Result<(Matrix, Vec<String>), MlError> {
    let mut names = Vec::new();
    let mut cols: Vec<Vec<Option<f64>>> = Vec::new();
    for (field, col) in table.iter_columns() {
        if field.name == target {
            continue;
        }
        if field.dtype == DataType::Str {
            // Find an example value for a realistic error message.
            let example = (0..col.len())
                .find(|&i| !col.is_null_at(i))
                .map(|i| col.get(i).render())
                .unwrap_or_default();
            return Err(MlError::Unsupported(format!(
                "could not convert string to float: '{example}' (column '{}')",
                field.name
            )));
        }
        names.push(field.name.clone());
        cols.push(col.to_f64_vec());
    }
    if names.is_empty() {
        return Err(MlError::EmptyInput);
    }
    let n = table.n_rows();
    let mut m = Matrix::zeros(n, names.len());
    for (c, col) in cols.iter().enumerate() {
        for (r, v) in col.iter().enumerate() {
            m.set(r, c, v.unwrap_or(f64::NAN));
        }
    }
    Ok((m, names))
}

/// Extract the numeric regression target; nulls or non-numeric → error.
pub fn regression_target(table: &Table, target: &str) -> Result<Vec<f64>, MlError> {
    let col = table
        .column(target)
        .map_err(|_| MlError::Unsupported(format!("target column '{target}' not found")))?;
    let vals = col.to_f64_vec();
    let mut out = Vec::with_capacity(vals.len());
    for v in vals {
        match v {
            Some(v) if v.is_finite() => out.push(v),
            _ => return Err(MlError::NonFinite { location: "regression target" }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdb_table::Column;

    fn clean_table() -> Table {
        Table::from_columns(vec![
            ("a", Column::from_f64(vec![1.0, 2.0])),
            ("b", Column::from_i64(vec![3, 4])),
            ("y", Column::from_strings(vec!["yes", "no"])),
        ])
        .unwrap()
    }

    #[test]
    fn featurize_excludes_target_and_orders_names() {
        let t = clean_table();
        let (m, names) = featurize(&t, "y").unwrap();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn string_feature_raises_convert_error() {
        let t = Table::from_columns(vec![
            ("s", Column::from_strings(vec!["hello"])),
            ("y", Column::from_i64(vec![1])),
        ])
        .unwrap();
        let err = featurize(&t, "y").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("could not convert string to float"), "{msg}");
        assert!(msg.contains("hello"));
    }

    #[test]
    fn nulls_become_nan() {
        let t = Table::from_columns(vec![
            ("a", Column::Float(vec![Some(1.0), None])),
            ("y", Column::from_i64(vec![0, 1])),
        ])
        .unwrap();
        let (m, _) = featurize(&t, "y").unwrap();
        assert!(m.get(1, 0).is_nan());
    }

    #[test]
    fn label_encoder_round_trips() {
        let t = clean_table();
        let enc = LabelEncoder::fit(&t, "y").unwrap();
        assert_eq!(enc.n_classes(), 2);
        assert_eq!(enc.encode(&t, "y").unwrap(), vec![0, 1]);
    }

    #[test]
    fn label_encoder_rejects_unseen_and_constant() {
        let t = clean_table();
        let enc = LabelEncoder::fit(&t, "y").unwrap();
        let other = Table::from_columns(vec![
            ("a", Column::from_f64(vec![0.0])),
            ("b", Column::from_i64(vec![0])),
            ("y", Column::from_strings(vec!["maybe"])),
        ])
        .unwrap();
        assert!(enc.encode(&other, "y").is_err());
        let constant =
            Table::from_columns(vec![("y", Column::from_strings(vec!["same", "same"]))]).unwrap();
        assert!(LabelEncoder::fit(&constant, "y").is_err());
    }

    #[test]
    fn regression_target_requires_numbers() {
        let t = Table::from_columns(vec![("y", Column::from_f64(vec![1.0, 2.0]))]).unwrap();
        assert_eq!(regression_target(&t, "y").unwrap(), vec![1.0, 2.0]);
        let with_null =
            Table::from_columns(vec![("y", Column::Float(vec![Some(1.0), None]))]).unwrap();
        assert!(regression_target(&with_null, "y").is_err());
    }

    #[test]
    fn task_kind_labels_round_trip() {
        for k in [
            TaskKind::BinaryClassification,
            TaskKind::MulticlassClassification,
            TaskKind::Regression,
        ] {
            assert_eq!(TaskKind::parse(k.label()), Some(k));
        }
        assert_eq!(TaskKind::parse("bogus"), None);
    }
}

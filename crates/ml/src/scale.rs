//! Numeric feature scaling: standard (z-score), min-max, and decimal
//! scaling (the "DS" primitive from Learn2Clean used in Table 7).

use crate::transform::{require_column, Result, Transform, TransformError};
use catdb_table::{Column, Table};
use serde::{Deserialize, Serialize};

/// Scaling methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleMethod {
    /// `(x − mean) / std`.
    Standard,
    /// `(x − min) / (max − min)`, clipped to [0, 1] at transform time
    /// (sklearn's `MinMaxScaler(clip=True)`): out-of-range values seen at
    /// inference — e.g. injected outliers — cannot explode the feature.
    MinMax,
    /// `x / 10^j` with the smallest `j` making `|x| ≤ 1`.
    Decimal,
}

impl ScaleMethod {
    pub fn label(self) -> &'static str {
        match self {
            ScaleMethod::Standard => "standard",
            ScaleMethod::MinMax => "minmax",
            ScaleMethod::Decimal => "decimal",
        }
    }
}

/// Fitted scaling parameters.
#[derive(Debug, Clone, Copy)]
enum ScaleParams {
    Standard { mean: f64, std: f64 },
    MinMax { min: f64, range: f64 },
    Decimal { divisor: f64 },
}

/// Scale one numeric column (output is always a float column).
#[derive(Debug, Clone)]
pub struct Scaler {
    pub column: String,
    pub method: ScaleMethod,
    params: Option<ScaleParams>,
}

impl Scaler {
    pub fn new(column: impl Into<String>, method: ScaleMethod) -> Scaler {
        Scaler { column: column.into(), method, params: None }
    }
}

impl Transform for Scaler {
    fn name(&self) -> String {
        format!("scale({}, {})", self.column, self.method.label())
    }

    fn fit(&mut self, table: &Table) -> Result<()> {
        let col = require_column(table, &self.column)?;
        if !col.dtype().is_numeric() {
            return Err(TransformError::WrongType {
                column: self.column.clone(),
                expected: "numeric",
            });
        }
        let vals: Vec<f64> = col.to_f64_vec().into_iter().flatten().collect();
        if vals.is_empty() {
            return Err(TransformError::Invalid(format!(
                "column '{}' has no non-null values to fit a scaler",
                self.column
            )));
        }
        let n = vals.len() as f64;
        self.params = Some(match self.method {
            ScaleMethod::Standard => {
                let mean = vals.iter().sum::<f64>() / n;
                let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
                let std = var.sqrt();
                ScaleParams::Standard { mean, std: if std < 1e-12 { 1.0 } else { std } }
            }
            ScaleMethod::MinMax => {
                let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let range = max - min;
                ScaleParams::MinMax { min, range: if range < 1e-12 { 1.0 } else { range } }
            }
            ScaleMethod::Decimal => {
                let max_abs = vals.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
                let mut divisor = 1.0;
                while max_abs / divisor > 1.0 {
                    divisor *= 10.0;
                }
                ScaleParams::Decimal { divisor }
            }
        });
        Ok(())
    }

    fn transform(&self, table: &Table) -> Result<Table> {
        let params = self.params.ok_or(TransformError::NotFitted("scaler"))?;
        let col = require_column(table, &self.column)?;
        let scaled: Vec<Option<f64>> = col
            .to_f64_vec()
            .into_iter()
            .map(|v| {
                v.map(|x| match params {
                    ScaleParams::Standard { mean, std } => (x - mean) / std,
                    ScaleParams::MinMax { min, range } => ((x - min) / range).clamp(0.0, 1.0),
                    ScaleParams::Decimal { divisor } => x / divisor,
                })
            })
            .collect();
        let mut out = table.clone();
        out.replace_column(&self.column, Column::Float(scaled))?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdb_table::Value;

    fn numeric_table() -> Table {
        Table::from_columns(vec![(
            "x",
            Column::Float(vec![Some(0.0), Some(10.0), Some(20.0), None]),
        )])
        .unwrap()
    }

    #[test]
    fn standard_scaling_centers() {
        let mut s = Scaler::new("x", ScaleMethod::Standard);
        let out = s.fit_transform(&numeric_table()).unwrap();
        let vals = out.column("x").unwrap().to_f64_vec();
        let mean: f64 = vals.iter().flatten().sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
        // Nulls survive scaling untouched.
        assert_eq!(out.value(3, "x").unwrap(), Value::Null);
    }

    #[test]
    fn minmax_scaling_hits_unit_interval() {
        let mut s = Scaler::new("x", ScaleMethod::MinMax);
        let out = s.fit_transform(&numeric_table()).unwrap();
        assert_eq!(out.value(0, "x").unwrap(), Value::Float(0.0));
        assert_eq!(out.value(2, "x").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn decimal_scaling_divides_by_power_of_ten() {
        let mut s = Scaler::new("x", ScaleMethod::Decimal);
        let out = s.fit_transform(&numeric_table()).unwrap();
        assert_eq!(out.value(2, "x").unwrap(), Value::Float(0.2)); // 20 / 100
    }

    #[test]
    fn string_column_is_rejected() {
        let t = Table::from_columns(vec![("s", Column::from_strings(vec!["a", "b"]))]).unwrap();
        let mut s = Scaler::new("s", ScaleMethod::Standard);
        assert!(matches!(s.fit(&t), Err(TransformError::WrongType { .. })));
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let t = Table::from_columns(vec![("x", Column::from_f64(vec![5.0, 5.0]))]).unwrap();
        let mut s = Scaler::new("x", ScaleMethod::Standard);
        let out = s.fit_transform(&t).unwrap();
        assert_eq!(out.value(0, "x").unwrap(), Value::Float(0.0));
    }
}

//! Gradient boosting over shallow regression trees: squared loss for
//! regression, one-vs-rest logistic loss for classification.

use crate::estimator::{
    check_finite, validate_classification, validate_regression, Classifier, ClassifierModel,
    Regressor, RegressorModel, Result,
};
use crate::matrix::Matrix;
use crate::tree::{binned_for, fit_reg_tree, SplitMode, TreeConfig, TreeRegressorModel};

/// Boosting hyper-parameters.
#[derive(Debug, Clone)]
pub struct BoostConfig {
    pub n_rounds: usize,
    pub learning_rate: f64,
    pub max_depth: usize,
    pub seed: u64,
    /// Split-search strategy shared by every stage tree.
    pub split_mode: SplitMode,
}

impl Default for BoostConfig {
    fn default() -> Self {
        BoostConfig {
            n_rounds: 60,
            learning_rate: 0.15,
            max_depth: 4,
            seed: 11,
            split_mode: SplitMode::Exact,
        }
    }
}

fn stage_config(cfg: &BoostConfig, round: u64) -> TreeConfig {
    TreeConfig {
        max_depth: cfg.max_depth,
        min_samples_leaf: 3,
        max_thresholds: 16,
        feature_subsample: None,
        seed: cfg.seed ^ round.wrapping_mul(0x51D_7EAD),
        split_mode: cfg.split_mode,
    }
}

/// Gradient-boosted regressor (squared loss; each stage fits residuals).
#[derive(Debug, Clone, Default)]
pub struct GradientBoostingRegressor {
    pub config: BoostConfig,
}

struct BoostRegModel {
    base: f64,
    stages: Vec<TreeRegressorModel>,
    learning_rate: f64,
}

impl Regressor for GradientBoostingRegressor {
    fn name(&self) -> &'static str {
        "gradient_boosting"
    }

    fn fit(&self, x: &Matrix, y: &[f64]) -> Result<Box<dyn RegressorModel>> {
        validate_regression(x, y)?;
        let base = y.iter().sum::<f64>() / y.len() as f64;
        let mut pred = vec![base; y.len()];
        let mut stages = Vec::with_capacity(self.config.n_rounds);
        // The feature matrix never changes across rounds: quantize once.
        let binned = binned_for(x, &stage_config(&self.config, 0));
        for round in 0..self.config.n_rounds {
            let residuals: Vec<f64> = y.iter().zip(&pred).map(|(t, p)| t - p).collect();
            let tree = fit_reg_tree(
                x,
                &residuals,
                (0..x.rows()).collect(),
                &stage_config(&self.config, round as u64),
                binned.as_ref(),
            );
            let update = tree.predict_unchecked(x);
            for (p, u) in pred.iter_mut().zip(&update) {
                *p += self.config.learning_rate * u;
            }
            stages.push(tree);
        }
        Ok(Box::new(BoostRegModel { base, stages, learning_rate: self.config.learning_rate }))
    }
}

impl RegressorModel for BoostRegModel {
    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        check_finite(x, "prediction features")?;
        let mut pred = vec![self.base; x.rows()];
        for tree in &self.stages {
            for (p, u) in pred.iter_mut().zip(tree.predict_unchecked(x)) {
                *p += self.learning_rate * u;
            }
        }
        Ok(pred)
    }
}

/// Gradient-boosted classifier: per-class logistic boosting on the
/// one-vs-rest targets, probabilities via softmax over class margins.
#[derive(Debug, Clone, Default)]
pub struct GradientBoostingClassifier {
    pub config: BoostConfig,
}

struct BoostClassModel {
    /// Per-class (prior logit, stages).
    classes: Vec<(f64, Vec<TreeRegressorModel>)>,
    learning_rate: f64,
    n_classes: usize,
}

impl Classifier for GradientBoostingClassifier {
    fn name(&self) -> &'static str {
        "gradient_boosting"
    }

    fn fit(&self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<Box<dyn ClassifierModel>> {
        validate_classification(x, y, n_classes)?;
        let n = x.rows() as f64;
        // Rounds within a class are sequential (each stage fits the
        // previous margin's gradient), but the one-vs-rest classes are
        // independent: train them in parallel on the shared runtime.
        // Stage seeds depend only on (class, round), so the ensemble is
        // identical no matter how many threads participate.
        let class_ids: Vec<usize> = (0..n_classes).collect();
        let limit = catdb_runtime::pool_size().saturating_add(1);
        // One shared quantization across every class and round.
        let binned = binned_for(x, &stage_config(&self.config, 0));
        let classes = catdb_runtime::parallel_map(limit, &class_ids, |_, &c| {
            let targets: Vec<f64> = y.iter().map(|&l| (l == c) as usize as f64).collect();
            let pos = targets.iter().sum::<f64>().clamp(1.0, n - 1.0);
            let prior = (pos / (n - pos)).ln();
            let mut margin = vec![prior; y.len()];
            let mut stages = Vec::with_capacity(self.config.n_rounds);
            for round in 0..self.config.n_rounds {
                // Negative gradient of logistic loss: t − σ(margin).
                let grad: Vec<f64> = targets
                    .iter()
                    .zip(&margin)
                    .map(|(t, m)| t - 1.0 / (1.0 + (-m).exp()))
                    .collect();
                let tree = fit_reg_tree(
                    x,
                    &grad,
                    (0..x.rows()).collect(),
                    &stage_config(&self.config, (c * self.config.n_rounds + round) as u64),
                    binned.as_ref(),
                );
                for (m, u) in margin.iter_mut().zip(tree.predict_unchecked(x)) {
                    *m += self.config.learning_rate * u;
                }
                stages.push(tree);
            }
            (prior, stages)
        });
        Ok(Box::new(BoostClassModel {
            classes,
            learning_rate: self.config.learning_rate,
            n_classes,
        }))
    }
}

impl ClassifierModel for BoostClassModel {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<Vec<f64>>> {
        check_finite(x, "prediction features")?;
        let mut margins = vec![vec![0.0; self.n_classes]; x.rows()];
        for (c, (prior, stages)) in self.classes.iter().enumerate() {
            let mut m = vec![*prior; x.rows()];
            for tree in stages {
                for (mi, u) in m.iter_mut().zip(tree.predict_unchecked(x)) {
                    *mi += self.learning_rate * u;
                }
            }
            for (row, mi) in margins.iter_mut().zip(m) {
                row[c] = mi;
            }
        }
        // Softmax over class margins.
        for row in &mut margins {
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        Ok(margins)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, r2};

    #[test]
    fn boosting_fits_nonlinear_regression() {
        let rows: Vec<Vec<f64>> = (0..150).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| (r[0]).sin() * 5.0 + r[0]).collect();
        let x = Matrix::from_rows(&rows);
        let model = GradientBoostingRegressor::default().fit(&x, &y).unwrap();
        let pred = model.predict(&x).unwrap();
        assert!(r2(&y, &pred) > 0.95);
    }

    #[test]
    fn boosting_classifies_rings() {
        // Inner square class 0, outer ring class 1.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let a = (i as f64 - 10.0) / 10.0;
                let b = (j as f64 - 10.0) / 10.0;
                rows.push(vec![a, b]);
                y.push(((a * a + b * b) > 0.5) as usize);
            }
        }
        let x = Matrix::from_rows(&rows);
        let cfg = BoostConfig { n_rounds: 30, ..Default::default() };
        let model = GradientBoostingClassifier { config: cfg }.fit(&x, &y, 2).unwrap();
        let pred = model.predict(&x).unwrap();
        assert!(accuracy(&y, &pred) > 0.93);
    }

    #[test]
    fn boosting_multiclass_probabilities_normalize() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let x = Matrix::from_rows(&rows);
        let cfg = BoostConfig { n_rounds: 10, ..Default::default() };
        let model = GradientBoostingClassifier { config: cfg }.fit(&x, &y, 3).unwrap();
        for p in model.predict_proba(&x).unwrap() {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        let pred = model.predict(&x).unwrap();
        assert!(accuracy(&y, &pred) > 0.9);
    }
}

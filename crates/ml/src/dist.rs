//! Blocked Euclidean distance kernel shared by k-NN prediction and the
//! LOF outlier scorer.
//!
//! The naive formulation walks one (query, train) pair at a time and
//! re-streams the full training matrix per query, falling out of cache as
//! soon as the training set outgrows L2. This kernel tiles train rows ×
//! features so a `TRAIN_TILE × FEAT_TILE` working set stays hot in L1/L2
//! while every query in the batch is swept over it.
//!
//! Bit-compatibility: for each (query, train) pair the squared differences
//! are accumulated in ascending feature order into a single accumulator
//! that is carried across feature tiles — exactly the addition sequence of
//! the naive `zip(..).map(..).sum()` loop — so distances (and everything
//! downstream: neighbour order, inverse-distance weights) are
//! byte-identical to the per-query rescan this replaces.

/// Train rows per block (64 rows × 128 features ≈ 64 KiB of f64, L1/L2
/// resident alongside the query tile).
const TRAIN_TILE: usize = 64;
/// Features per block.
const FEAT_TILE: usize = 128;

/// Euclidean distances between every query and every train row.
///
/// `train` and `queries` are row-major flattened with `d` columns;
/// `out[q * n_train + t]` receives `‖queries[q] − train[t]‖₂`.
pub(crate) fn euclidean_block(
    train: &[f64],
    n_train: usize,
    queries: &[f64],
    n_queries: usize,
    d: usize,
    out: &mut [f64],
) {
    debug_assert_eq!(train.len(), n_train * d);
    debug_assert_eq!(queries.len(), n_queries * d);
    debug_assert_eq!(out.len(), n_queries * n_train);
    out.fill(0.0);
    for t0 in (0..n_train).step_by(TRAIN_TILE) {
        let t1 = (t0 + TRAIN_TILE).min(n_train);
        for f0 in (0..d).step_by(FEAT_TILE) {
            let f1 = (f0 + FEAT_TILE).min(d);
            for q in 0..n_queries {
                let qrow = &queries[q * d + f0..q * d + f1];
                let orow = &mut out[q * n_train..(q + 1) * n_train];
                for t in t0..t1 {
                    let trow = &train[t * d + f0..t * d + f1];
                    let mut acc = orow[t];
                    for (a, b) in trow.iter().zip(qrow) {
                        let diff = a - b;
                        acc += diff * diff;
                    }
                    orow[t] = acc;
                }
            }
        }
    }
    for v in out.iter_mut() {
        *v = v.sqrt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(train: &[Vec<f64>], q: &[f64]) -> Vec<f64> {
        train
            .iter()
            .map(|t| t.iter().zip(q).map(|(a, b)| (a - b).powi(2)).sum::<f64>().sqrt())
            .collect()
    }

    #[test]
    fn blocked_matches_naive_bitwise() {
        // Sizes straddling both tile boundaries.
        for (n_train, n_queries, d) in [(3, 2, 5), (70, 9, 130), (130, 65, 257), (1, 1, 1)] {
            let mut state = 1u64;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64) / ((1u64 << 31) as f64) * 10.0 - 5.0
            };
            let train: Vec<Vec<f64>> =
                (0..n_train).map(|_| (0..d).map(|_| next()).collect()).collect();
            let queries: Vec<Vec<f64>> =
                (0..n_queries).map(|_| (0..d).map(|_| next()).collect()).collect();
            let train_flat: Vec<f64> = train.iter().flatten().copied().collect();
            let q_flat: Vec<f64> = queries.iter().flatten().copied().collect();
            let mut out = vec![0.0; n_queries * n_train];
            euclidean_block(&train_flat, n_train, &q_flat, n_queries, d, &mut out);
            for (qi, q) in queries.iter().enumerate() {
                let expect = naive(&train, q);
                for (t, e) in expect.iter().enumerate() {
                    assert_eq!(
                        out[qi * n_train + t].to_bits(),
                        e.to_bits(),
                        "mismatch at query {qi} train {t} ({n_train}x{n_queries}x{d})"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_features_give_zero_distances() {
        let mut out = vec![1.0; 4];
        euclidean_block(&[], 2, &[], 2, 0, &mut out);
        assert_eq!(out, vec![0.0; 4]);
    }
}

//! k-nearest-neighbour classifier and regressor (brute force, internally
//! standardized, inverse-distance weighting).
//!
//! Distances run through the blocked kernel in [`crate::dist`]: prediction
//! batches queries per parallel chunk and sweeps them over train-row ×
//! feature tiles instead of re-streaming the whole training set per query.
//! The kernel accumulates in the same feature order as the old per-query
//! rescan, so predictions are byte-identical.

use crate::dist::euclidean_block;
use crate::estimator::{
    check_finite, validate_classification, validate_regression, Classifier, ClassifierModel,
    Regressor, RegressorModel, Result,
};
use crate::matrix::Matrix;

/// Shared k-NN hyper-parameters.
#[derive(Debug, Clone)]
pub struct KnnConfig {
    pub k: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig { k: 5 }
    }
}

/// Column means / stds for internal standardization (duplicated rather than
/// shared with `linear` to keep the modules self-contained).
fn fit_scaling(x: &Matrix) -> (Vec<f64>, Vec<f64>) {
    let n = x.rows() as f64;
    let d = x.cols();
    let mut means = vec![0.0; d];
    for r in 0..x.rows() {
        for (m, v) in means.iter_mut().zip(x.row(r)) {
            *m += v;
        }
    }
    means.iter_mut().for_each(|m| *m /= n);
    let mut stds = vec![0.0; d];
    for r in 0..x.rows() {
        for ((s, v), m) in stds.iter_mut().zip(x.row(r)).zip(&means) {
            *s += (v - m).powi(2);
        }
    }
    for s in &mut stds {
        *s = (*s / n).sqrt();
        if *s < 1e-12 {
            *s = 1.0;
        }
    }
    (means, stds)
}

fn scale_row(row: &[f64], means: &[f64], stds: &[f64]) -> Vec<f64> {
    row.iter().zip(means).zip(stds).map(|((v, m), s)| (v - m) / s).collect()
}

/// Standardized training rows, flattened row-major for the blocked kernel.
struct TrainSet {
    flat: Vec<f64>,
    n: usize,
    d: usize,
}

impl TrainSet {
    fn fit(x: &Matrix, means: &[f64], stds: &[f64]) -> TrainSet {
        let (n, d) = (x.rows(), x.cols());
        let mut flat = Vec::with_capacity(n * d);
        for r in 0..n {
            flat.extend(scale_row(x.row(r), means, stds));
        }
        TrainSet { flat, n, d }
    }

    /// Distances from each scaled query row to every training row
    /// (`out[q * n + t]`), via the blocked kernel.
    fn distances(&self, queries: &[f64], n_queries: usize) -> Vec<f64> {
        let mut out = vec![0.0; n_queries * self.n];
        euclidean_block(&self.flat, self.n, queries, n_queries, self.d, &mut out);
        out
    }
}

/// Indices and distances of the k nearest training rows given one query's
/// distance row. Stable sort keeps ties in index order, matching the old
/// per-query scan.
fn neighbours(dist_row: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut dists: Vec<(usize, f64)> = dist_row.iter().enumerate().map(|(i, &d)| (i, d)).collect();
    dists.sort_by(|a, b| a.1.total_cmp(&b.1));
    dists.truncate(k.max(1));
    dists
}

/// k-NN classifier.
#[derive(Debug, Clone, Default)]
pub struct KnnClassifier {
    pub config: KnnConfig,
}

struct KnnClassModel {
    train: TrainSet,
    labels: Vec<usize>,
    means: Vec<f64>,
    stds: Vec<f64>,
    k: usize,
    n_classes: usize,
}

impl Classifier for KnnClassifier {
    fn name(&self) -> &'static str {
        "knn"
    }

    fn fit(&self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<Box<dyn ClassifierModel>> {
        validate_classification(x, y, n_classes)?;
        let (means, stds) = fit_scaling(x);
        let train = TrainSet::fit(x, &means, &stds);
        Ok(Box::new(KnnClassModel {
            train,
            labels: y.to_vec(),
            means,
            stds,
            k: self.config.k,
            n_classes,
        }))
    }
}

/// Rows per parallel prediction chunk. Fixed (not derived from the
/// thread count) so the flattened output is identical for any pool size.
const PREDICT_CHUNK: usize = 64;

impl ClassifierModel for KnnClassModel {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<Vec<f64>>> {
        check_finite(x, "prediction features")?;
        let limit = catdb_runtime::pool_size().saturating_add(1);
        let chunks = catdb_runtime::parallel_chunks(limit, x.rows(), PREDICT_CHUNK, |range| {
            let rows: Vec<usize> = range.collect();
            let mut queries = Vec::with_capacity(rows.len() * self.train.d);
            for &r in &rows {
                queries.extend(scale_row(x.row(r), &self.means, &self.stds));
            }
            let dists = self.train.distances(&queries, rows.len());
            rows.iter()
                .enumerate()
                .map(|(qi, _)| {
                    let nn = neighbours(&dists[qi * self.train.n..(qi + 1) * self.train.n], self.k);
                    let mut probs = vec![0.0; self.n_classes];
                    let mut total = 0.0;
                    for (i, d) in nn {
                        let w = 1.0 / (d + 1e-9);
                        probs[self.labels[i]] += w;
                        total += w;
                    }
                    for p in &mut probs {
                        *p /= total;
                    }
                    probs
                })
                .collect::<Vec<_>>()
        });
        Ok(chunks.into_iter().flatten().collect())
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// k-NN regressor.
#[derive(Debug, Clone, Default)]
pub struct KnnRegressor {
    pub config: KnnConfig,
}

struct KnnRegModel {
    train: TrainSet,
    targets: Vec<f64>,
    means: Vec<f64>,
    stds: Vec<f64>,
    k: usize,
}

impl Regressor for KnnRegressor {
    fn name(&self) -> &'static str {
        "knn"
    }

    fn fit(&self, x: &Matrix, y: &[f64]) -> Result<Box<dyn RegressorModel>> {
        validate_regression(x, y)?;
        let (means, stds) = fit_scaling(x);
        let train = TrainSet::fit(x, &means, &stds);
        Ok(Box::new(KnnRegModel { train, targets: y.to_vec(), means, stds, k: self.config.k }))
    }
}

impl RegressorModel for KnnRegModel {
    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        check_finite(x, "prediction features")?;
        let limit = catdb_runtime::pool_size().saturating_add(1);
        let chunks = catdb_runtime::parallel_chunks(limit, x.rows(), PREDICT_CHUNK, |range| {
            let rows: Vec<usize> = range.collect();
            let mut queries = Vec::with_capacity(rows.len() * self.train.d);
            for &r in &rows {
                queries.extend(scale_row(x.row(r), &self.means, &self.stds));
            }
            let dists = self.train.distances(&queries, rows.len());
            rows.iter()
                .enumerate()
                .map(|(qi, _)| {
                    let nn = neighbours(&dists[qi * self.train.n..(qi + 1) * self.train.n], self.k);
                    let mut num = 0.0;
                    let mut den = 0.0;
                    for (i, d) in nn {
                        let w = 1.0 / (d + 1e-9);
                        num += w * self.targets[i];
                        den += w;
                    }
                    num / den
                })
                .collect::<Vec<_>>()
        });
        Ok(chunks.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn knn_memorizes_training_points() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0], vec![11.0]]);
        let y = vec![0, 0, 1, 1];
        let model = KnnClassifier { config: KnnConfig { k: 1 } }.fit(&x, &y, 2).unwrap();
        let pred = model.predict(&x).unwrap();
        assert_eq!(accuracy(&y, &pred), 1.0);
    }

    #[test]
    fn knn_regression_interpolates() {
        let x = Matrix::from_rows(&[vec![0.0], vec![2.0]]);
        let y = vec![0.0, 2.0];
        let model = KnnRegressor { config: KnnConfig { k: 2 } }.fit(&x, &y).unwrap();
        let pred = model.predict(&Matrix::from_rows(&[vec![1.0]])).unwrap();
        assert!((pred[0] - 1.0).abs() < 0.2);
    }

    #[test]
    fn probabilities_weighted_by_distance() {
        let x = Matrix::from_rows(&[vec![0.0], vec![5.0]]);
        let y = vec![0, 1];
        let model = KnnClassifier { config: KnnConfig { k: 2 } }.fit(&x, &y, 2).unwrap();
        let p = model.predict_proba(&Matrix::from_rows(&[vec![0.5]])).unwrap();
        assert!(p[0][0] > p[0][1]);
    }
}

//! Row-set transforms (train-only): outlier removal (IQR, z-score, LOF),
//! duplicate removal (exact and approximate), row dropping, and
//! high-missing column dropping.

use crate::transform::{require_column, Result, Transform, TransformError};
use catdb_table::{column_dict, Table, NULL_CODE};
use std::collections::{HashMap, HashSet};

/// Outlier detection methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutlierMethod {
    /// Inter-quartile range fence: keep `Q1 − k·IQR ≤ x ≤ Q3 + k·IQR`.
    Iqr(f64),
    /// Keep `|z| ≤ k`.
    ZScore(f64),
    /// Local outlier factor (simplified): remove rows whose mean distance
    /// to their k nearest neighbours exceeds `factor ×` the dataset median.
    Lof { k: usize, factor: f64 },
}

impl OutlierMethod {
    pub fn label(&self) -> &'static str {
        match self {
            OutlierMethod::Iqr(_) => "iqr",
            OutlierMethod::ZScore(_) => "zscore",
            OutlierMethod::Lof { .. } => "lof",
        }
    }
}

/// Remove outlier rows based on the numeric columns. Train-only.
#[derive(Debug, Clone)]
pub struct OutlierRemover {
    /// Restrict to these columns; empty = all numeric columns.
    pub columns: Vec<String>,
    pub method: OutlierMethod,
}

impl OutlierRemover {
    pub fn new(columns: Vec<String>, method: OutlierMethod) -> OutlierRemover {
        OutlierRemover { columns, method }
    }

    fn numeric_targets(&self, table: &Table) -> Result<Vec<String>> {
        if self.columns.is_empty() {
            Ok(table
                .iter_columns()
                .filter(|(f, _)| f.dtype.is_numeric())
                .map(|(f, _)| f.name.clone())
                .collect())
        } else {
            for c in &self.columns {
                let col = require_column(table, c)?;
                if !col.dtype().is_numeric() {
                    return Err(TransformError::WrongType {
                        column: c.clone(),
                        expected: "numeric",
                    });
                }
            }
            Ok(self.columns.clone())
        }
    }
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (pos - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

impl Transform for OutlierRemover {
    fn name(&self) -> String {
        format!("outliers({})", self.method.label())
    }

    fn fit(&mut self, table: &Table) -> Result<()> {
        self.numeric_targets(table).map(|_| ())
    }

    fn transform(&self, table: &Table) -> Result<Table> {
        let targets = self.numeric_targets(table)?;
        if targets.is_empty() || table.n_rows() == 0 {
            return Ok(table.clone());
        }
        let mut keep = vec![true; table.n_rows()];
        match self.method {
            OutlierMethod::Iqr(k) => {
                for name in &targets {
                    let vals = table.column(name).expect("validated").to_f64_vec();
                    let mut sorted: Vec<f64> = vals.iter().flatten().copied().collect();
                    sorted.sort_by(|a, b| a.total_cmp(b));
                    if sorted.is_empty() {
                        continue;
                    }
                    let q1 = quantile(&sorted, 0.25);
                    let q3 = quantile(&sorted, 0.75);
                    let iqr = q3 - q1;
                    let (lo, hi) = (q1 - k * iqr, q3 + k * iqr);
                    for (i, v) in vals.iter().enumerate() {
                        if let Some(v) = v {
                            if *v < lo || *v > hi {
                                keep[i] = false;
                            }
                        }
                    }
                }
            }
            OutlierMethod::ZScore(k) => {
                for name in &targets {
                    let vals = table.column(name).expect("validated").to_f64_vec();
                    let present: Vec<f64> = vals.iter().flatten().copied().collect();
                    if present.is_empty() {
                        continue;
                    }
                    let n = present.len() as f64;
                    let mean = present.iter().sum::<f64>() / n;
                    let std = (present.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt();
                    if std < 1e-12 {
                        continue;
                    }
                    for (i, v) in vals.iter().enumerate() {
                        if let Some(v) = v {
                            if ((v - mean) / std).abs() > k {
                                keep[i] = false;
                            }
                        }
                    }
                }
            }
            OutlierMethod::Lof { k, factor } => {
                // Build rows over the numeric targets (nulls as 0 for the
                // distance computation; LOF is a coarse filter here).
                let cols: Vec<Vec<Option<f64>>> = targets
                    .iter()
                    .map(|n| table.column(n).expect("validated").to_f64_vec())
                    .collect();
                let rows: Vec<Vec<f64>> = (0..table.n_rows())
                    .map(|i| cols.iter().map(|c| c[i].unwrap_or(0.0)).collect())
                    .collect();
                // Cap the pairwise computation (LOF is O(n²)).
                let n = rows.len().min(4000);
                let k = k.max(1).min(n.saturating_sub(1)).max(1);
                let d = rows.first().map_or(0, |r| r.len());
                // Blocked kernel over query chunks: same distances in the
                // same accumulation order as the old per-row rescan, but
                // cache-tiled and parallel over the runtime pool.
                let flat: Vec<f64> = rows[..n].iter().flatten().copied().collect();
                let limit = catdb_runtime::pool_size().saturating_add(1);
                let chunks = catdb_runtime::parallel_chunks(limit, n, 64, |range| {
                    let idx: Vec<usize> = range.collect();
                    let queries: Vec<f64> =
                        idx.iter().flat_map(|&i| flat[i * d..(i + 1) * d].to_vec()).collect();
                    let mut all = vec![0.0; idx.len() * n];
                    crate::dist::euclidean_block(&flat, n, &queries, idx.len(), d, &mut all);
                    idx.iter()
                        .enumerate()
                        .map(|(qi, &i)| {
                            let row = &all[qi * n..(qi + 1) * n];
                            let mut dists: Vec<f64> =
                                (0..n).filter(|&j| j != i).map(|j| row[j]).collect();
                            dists.sort_by(|a, b| a.total_cmp(b));
                            dists.iter().take(k).sum::<f64>() / k as f64
                        })
                        .collect::<Vec<_>>()
                });
                let mean_knn: Vec<f64> = chunks.into_iter().flatten().collect();
                let mut sorted = mean_knn.clone();
                sorted.sort_by(|a, b| a.total_cmp(b));
                let median = quantile(&sorted, 0.5).max(1e-12);
                for (i, &m) in mean_knn.iter().enumerate() {
                    if m / median > factor {
                        keep[i] = false;
                    }
                }
            }
        }
        // Never remove everything: degrade to a no-op instead of emptying
        // the training set.
        if keep.iter().all(|&k| !k) {
            return Ok(table.clone());
        }
        Ok(table.filter(|i| keep[i]))
    }

    fn train_only(&self) -> bool {
        true
    }
}

/// Remove duplicate rows. `approximate` normalizes strings
/// (lowercase/trim) before comparing, catching near-duplicates like
/// "Male " vs "male". Train-only.
#[derive(Debug, Clone)]
pub struct Deduplicator {
    pub approximate: bool,
}

impl Transform for Deduplicator {
    fn name(&self) -> String {
        format!("dedup({})", if self.approximate { "approx" } else { "exact" })
    }

    fn fit(&mut self, _table: &Table) -> Result<()> {
        Ok(())
    }

    fn transform(&self, table: &Table) -> Result<Table> {
        // Row keys are vectors of per-column dictionary codes, so each
        // distinct cell value is rendered (and normalized) once instead of
        // once per row. Codes are remapped per column so that rendered
        // equality — including a null rendering like the empty string, and
        // the approximate trim/lowercase collapse — matches the old
        // string-join keys exactly.
        let keyed: Vec<(Vec<u32>, Vec<u32>, u32)> = table
            .iter_columns()
            .map(|(_, col)| {
                let dict = column_dict(col);
                let mut ids: HashMap<String, u32> = HashMap::new();
                let remap: Vec<u32> = dict
                    .values()
                    .iter()
                    .map(|v| {
                        let norm =
                            if self.approximate { v.trim().to_lowercase() } else { v.clone() };
                        let next = ids.len() as u32;
                        *ids.entry(norm).or_insert(next)
                    })
                    .collect();
                let next = ids.len() as u32;
                let null_key = *ids.entry(String::new()).or_insert(next);
                (dict.codes().to_vec(), remap, null_key)
            })
            .collect();
        let mut seen = HashSet::new();
        Ok(table.filter(|i| {
            let key: Vec<u32> = keyed
                .iter()
                .map(
                    |(codes, remap, null_key)| {
                        if codes[i] == NULL_CODE {
                            *null_key
                        } else {
                            remap[codes[i] as usize]
                        }
                    },
                )
                .collect();
            seen.insert(key)
        }))
    }

    fn train_only(&self) -> bool {
        true
    }
}

/// Drop every row that contains any missing value (the "DROP" primitive
/// from Table 7). Train-only.
#[derive(Debug, Clone, Default)]
pub struct NullRowDropper;

impl Transform for NullRowDropper {
    fn name(&self) -> String {
        "drop_null_rows".into()
    }

    fn fit(&mut self, _table: &Table) -> Result<()> {
        Ok(())
    }

    fn transform(&self, table: &Table) -> Result<Table> {
        let filtered =
            table.filter(|i| !(0..table.n_cols()).any(|c| table.column_at(c).is_null_at(i)));
        // Keep at least something trainable.
        if filtered.n_rows() == 0 {
            return Ok(table.clone());
        }
        Ok(filtered)
    }

    fn train_only(&self) -> bool {
        true
    }
}

/// Drop a named column (applied to train and test alike).
#[derive(Debug, Clone)]
pub struct ColumnDropper {
    pub column: String,
}

impl Transform for ColumnDropper {
    fn name(&self) -> String {
        format!("drop({})", self.column)
    }

    fn fit(&mut self, table: &Table) -> Result<()> {
        require_column(table, &self.column).map(|_| ())
    }

    fn transform(&self, table: &Table) -> Result<Table> {
        require_column(table, &self.column)?;
        let mut out = table.clone();
        out.drop_column(&self.column)?;
        Ok(out)
    }
}

/// Drop columns whose missing fraction meets `threshold` (fitted on train,
/// reused on test; the paper drops columns with < 2 % non-null values).
#[derive(Debug, Clone)]
pub struct HighMissingDropper {
    pub threshold: f64,
    to_drop: Option<Vec<String>>,
}

impl HighMissingDropper {
    pub fn new(threshold: f64) -> HighMissingDropper {
        HighMissingDropper { threshold, to_drop: None }
    }

    pub fn dropped(&self) -> &[String] {
        self.to_drop.as_deref().unwrap_or(&[])
    }
}

impl Transform for HighMissingDropper {
    fn name(&self) -> String {
        format!("drop_high_missing({})", self.threshold)
    }

    fn fit(&mut self, table: &Table) -> Result<()> {
        let n = table.n_rows().max(1) as f64;
        self.to_drop = Some(
            table
                .iter_columns()
                .filter(|(_, c)| c.null_count() as f64 / n >= self.threshold)
                .map(|(f, _)| f.name.clone())
                .collect(),
        );
        Ok(())
    }

    fn transform(&self, table: &Table) -> Result<Table> {
        let drop =
            self.to_drop.as_ref().ok_or(TransformError::NotFitted("high-missing dropper"))?;
        let mut out = table.clone();
        for name in drop {
            if out.schema().contains(name) {
                out.drop_column(name)?;
            }
        }
        Ok(out)
    }
}

/// Drop columns that hold a single distinct non-null value (constant
/// features carry no signal; paper Section 3.4 removes them).
#[derive(Debug, Clone, Default)]
pub struct ConstantColumnDropper {
    to_drop: Option<Vec<String>>,
}

impl Transform for ConstantColumnDropper {
    fn name(&self) -> String {
        "drop_constant_columns".into()
    }

    fn fit(&mut self, table: &Table) -> Result<()> {
        let mut drop = Vec::new();
        for (field, col) in table.iter_columns() {
            if column_dict(col).n_distinct() <= 1 {
                drop.push(field.name.clone());
            }
        }
        self.to_drop = Some(drop);
        Ok(())
    }

    fn transform(&self, table: &Table) -> Result<Table> {
        let drop = self.to_drop.as_ref().ok_or(TransformError::NotFitted("constant dropper"))?;
        let mut out = table.clone();
        for name in drop {
            if out.schema().contains(name) && out.n_cols() > 1 {
                out.drop_column(name)?;
            }
        }
        Ok(out)
    }
}

/// Convenience: is the column numeric in this table?
pub fn is_numeric_column(table: &Table, name: &str) -> bool {
    table.column(name).map(|c| c.dtype().is_numeric()).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdb_table::Column;

    #[test]
    fn iqr_removes_extreme_values() {
        let mut vals: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        vals.push(1000.0);
        let t = Table::from_columns(vec![("x", Column::from_f64(vals))]).unwrap();
        let mut rem = OutlierRemover::new(vec!["x".into()], OutlierMethod::Iqr(1.5));
        let out = rem.fit_transform(&t).unwrap();
        assert_eq!(out.n_rows(), 100);
    }

    #[test]
    fn zscore_keeps_inliers() {
        let t =
            Table::from_columns(vec![("x", Column::from_f64(vec![0.0, 0.1, -0.1, 0.05, 50.0]))])
                .unwrap();
        let mut rem = OutlierRemover::new(vec![], OutlierMethod::ZScore(1.5));
        let out = rem.fit_transform(&t).unwrap();
        assert_eq!(out.n_rows(), 4);
    }

    #[test]
    fn lof_flags_isolated_point() {
        let mut rows: Vec<f64> = (0..50).map(|i| (i % 10) as f64).collect();
        rows.push(500.0);
        let t = Table::from_columns(vec![("x", Column::from_f64(rows))]).unwrap();
        let mut rem = OutlierRemover::new(vec![], OutlierMethod::Lof { k: 5, factor: 10.0 });
        let out = rem.fit_transform(&t).unwrap();
        assert_eq!(out.n_rows(), 50);
    }

    #[test]
    fn dedup_exact_and_approximate() {
        let t = Table::from_columns(vec![(
            "s",
            Column::from_strings(vec!["Male", "male ", "Male", "Female"]),
        )])
        .unwrap();
        let exact = Deduplicator { approximate: false }.transform(&t).unwrap();
        assert_eq!(exact.n_rows(), 3);
        let approx = Deduplicator { approximate: true }.transform(&t).unwrap();
        assert_eq!(approx.n_rows(), 2);
    }

    #[test]
    fn null_row_dropper() {
        let t = Table::from_columns(vec![
            ("a", Column::Int(vec![Some(1), None, Some(3)])),
            ("b", Column::Int(vec![Some(1), Some(2), Some(3)])),
        ])
        .unwrap();
        let out = NullRowDropper.transform(&t).unwrap();
        assert_eq!(out.n_rows(), 2);
    }

    #[test]
    fn high_missing_dropper_fitted_on_train_applies_to_test() {
        let train = Table::from_columns(vec![
            ("mostly_null", Column::Int(vec![None, None, None, Some(1)])),
            ("ok", Column::from_i64(vec![1, 2, 3, 4])),
        ])
        .unwrap();
        let mut d = HighMissingDropper::new(0.5);
        d.fit(&train).unwrap();
        assert_eq!(d.dropped(), &["mostly_null".to_string()]);
        let out = d.transform(&train).unwrap();
        assert_eq!(out.n_cols(), 1);
    }

    #[test]
    fn constant_dropper_removes_constants() {
        let t = Table::from_columns(vec![
            ("const", Column::from_i64(vec![7, 7, 7])),
            ("varies", Column::from_i64(vec![1, 2, 3])),
        ])
        .unwrap();
        let mut d = ConstantColumnDropper::default();
        let out = d.fit_transform(&t).unwrap();
        assert!(!out.schema().contains("const"));
        assert!(out.schema().contains("varies"));
    }

    #[test]
    fn outlier_remover_never_empties_table() {
        let t = Table::from_columns(vec![("x", Column::from_f64(vec![1.0, 2.0]))]).unwrap();
        let mut rem = OutlierRemover::new(vec![], OutlierMethod::ZScore(0.0));
        let out = rem.fit_transform(&t).unwrap();
        assert!(out.n_rows() > 0);
    }
}

//! Dense row-major matrix with the small amount of linear algebra the
//! estimators need (Cholesky solve for ridge regression, matrix-vector
//! products for the linear models).

/// Dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Build from row-major data. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix { data, rows, cols }
    }

    /// Build from a slice of rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { data, rows: n_rows, cols: n_cols }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Select a subset of rows (gather).
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.data[i * self.cols..(i + 1) * self.cols].copy_from_slice(self.row(r));
        }
        out
    }

    /// `self · v` (matrix-vector product). Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// Gram matrix `Xᵀ X` (cols × cols), the hot kernel of ridge regression.
    pub fn gram(&self) -> Matrix {
        let c = self.cols;
        let mut g = Matrix::zeros(c, c);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..c {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                for (j, xj) in row.iter().enumerate().skip(i) {
                    g.data[i * c + j] += xi * xj;
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..c {
            for j in 0..i {
                g.data[i * c + j] = g.data[j * c + i];
            }
        }
        g
    }

    /// `Xᵀ y`. Panics if `y.len() != rows`.
    pub fn t_matvec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for (r, &w) in y.iter().enumerate() {
            let row = self.row(r);
            if w == 0.0 {
                continue;
            }
            for (o, x) in out.iter_mut().zip(row) {
                *o += w * x;
            }
        }
        out
    }
}

/// Column-major copy of a [`Matrix`]: each column is a contiguous slice,
/// which is what per-feature kernels (quantization, per-feature statistics)
/// want to stream. Replaces the old `Matrix::col` gather-per-call accessor.
#[derive(Debug, Clone)]
pub struct ColMajor {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl ColMajor {
    /// Transpose `m` once; `col()` is then a free slice borrow.
    pub fn from_matrix(m: &Matrix) -> ColMajor {
        let (rows, cols) = (m.rows, m.cols);
        let mut data = vec![0.0; rows * cols];
        for r in 0..rows {
            let row = m.row(r);
            for c in 0..cols {
                data[c * rows + r] = row[c];
            }
        }
        ColMajor { data, rows, cols }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Column `c` as a contiguous slice.
    #[inline]
    pub fn col(&self, c: usize) -> &[f64] {
        &self.data[c * self.rows..(c + 1) * self.rows]
    }
}

/// Solve the symmetric positive-definite system `A x = b` in place via
/// Cholesky decomposition. Returns `None` if `A` is not positive definite
/// (callers add a ridge term to guarantee it in practice).
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!(b.len(), n);
    // Decompose A = L Lᵀ.
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward solve L z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * z[k];
        }
        z[i] = sum / l[i * n + i];
    }
    // Back solve Lᵀ x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        let by_col = ColMajor::from_matrix(&m);
        assert_eq!(by_col.col(1), &[2.0, 4.0]);
        assert_eq!((by_col.rows(), by_col.cols()), (2, 2));
    }

    #[test]
    fn matvec_and_transpose_products() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(m.t_matvec(&[1.0, 0.0, 1.0]), vec![6.0, 8.0]);
        let g = m.gram();
        assert_eq!(g.get(0, 0), 35.0); // 1+9+25
        assert_eq!(g.get(0, 1), 44.0); // 2+12+30
        assert_eq!(g.get(1, 0), 44.0);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2.0]
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let x = cholesky_solve(&a, &[10.0, 9.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(cholesky_solve(&a, &[1.0, 1.0]).is_none());
    }

    #[test]
    fn take_rows_gathers() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let t = m.take_rows(&[2, 0]);
        assert_eq!(ColMajor::from_matrix(&t).col(0), &[3.0, 1.0]);
    }
}

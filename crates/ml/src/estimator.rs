//! Estimator traits shared by every model in the crate.
//!
//! Fitting validates its input aggressively: NaNs in the feature matrix are
//! rejected (`MlError::NonFinite`) exactly like scikit-learn's
//! `Input contains NaN` — this is the runtime error a generated pipeline
//! hits when it forgot an imputation step, and the CatDB error-management
//! loop depends on models *failing loudly* rather than silently degrading
//! (the paper's "no silent errors" guarantee).

use crate::matrix::Matrix;
use std::fmt;

/// Errors raised by model fitting and prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// The input contains NaN / infinity (typically missed imputation).
    NonFinite { location: &'static str },
    /// Zero rows or zero features.
    EmptyInput,
    /// X / y shapes disagree.
    ShapeMismatch { x_rows: usize, y_len: usize },
    /// A label index ≥ the declared class count.
    BadLabel { label: usize, n_classes: usize },
    /// The model does not support this task or input regime
    /// (e.g. TabPFN on regression, or beyond its sample/feature limits).
    Unsupported(String),
    /// Simulated resource exhaustion (memory envelope exceeded).
    ResourceLimit(String),
    /// Numerical failure during optimization (singular system, divergence).
    Numerical(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::NonFinite { location } => {
                write!(f, "input contains NaN or infinity ({location})")
            }
            MlError::EmptyInput => write!(f, "empty input"),
            MlError::ShapeMismatch { x_rows, y_len } => {
                write!(f, "X has {x_rows} rows but y has {y_len} entries")
            }
            MlError::BadLabel { label, n_classes } => {
                write!(f, "label {label} out of range for {n_classes} classes")
            }
            MlError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            MlError::ResourceLimit(msg) => write!(f, "resource limit exceeded: {msg}"),
            MlError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

pub type Result<T> = std::result::Result<T, MlError>;

/// A fitted classification model.
pub trait ClassifierModel: Send + Sync {
    /// Per-row class probability vectors (length = `n_classes`).
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<Vec<f64>>>;

    fn n_classes(&self) -> usize;

    /// Hard predictions by arg-max over probabilities.
    fn predict(&self, x: &Matrix) -> Result<Vec<usize>> {
        Ok(self.predict_proba(x)?.into_iter().map(|p| argmax(&p)).collect())
    }
}

/// A fitted regression model.
pub trait RegressorModel: Send + Sync {
    fn predict(&self, x: &Matrix) -> Result<Vec<f64>>;
}

/// A classification learning algorithm (unfitted).
pub trait Classifier: Send + Sync {
    fn name(&self) -> &'static str;
    fn fit(&self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<Box<dyn ClassifierModel>>;
}

/// A regression learning algorithm (unfitted).
pub trait Regressor: Send + Sync {
    fn name(&self) -> &'static str;
    fn fit(&self, x: &Matrix, y: &[f64]) -> Result<Box<dyn RegressorModel>>;
}

/// Index of the largest element (ties resolve to the first).
pub fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate().skip(1) {
        if x > v[best] {
            best = i;
        }
    }
    best
}

/// Shared input validation for classifier `fit` implementations.
pub fn validate_classification(x: &Matrix, y: &[usize], n_classes: usize) -> Result<()> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(MlError::EmptyInput);
    }
    if x.rows() != y.len() {
        return Err(MlError::ShapeMismatch { x_rows: x.rows(), y_len: y.len() });
    }
    if n_classes < 2 {
        return Err(MlError::Unsupported("need at least two classes".into()));
    }
    if let Some(&bad) = y.iter().find(|&&l| l >= n_classes) {
        return Err(MlError::BadLabel { label: bad, n_classes });
    }
    check_finite(x, "training features")
}

/// Shared input validation for regressor `fit` implementations.
pub fn validate_regression(x: &Matrix, y: &[f64]) -> Result<()> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(MlError::EmptyInput);
    }
    if x.rows() != y.len() {
        return Err(MlError::ShapeMismatch { x_rows: x.rows(), y_len: y.len() });
    }
    if y.iter().any(|v| !v.is_finite()) {
        return Err(MlError::NonFinite { location: "training target" });
    }
    check_finite(x, "training features")
}

/// Reject NaN / infinity anywhere in the matrix.
pub fn check_finite(x: &Matrix, location: &'static str) -> Result<()> {
    for r in 0..x.rows() {
        if x.row(r).iter().any(|v| !v.is_finite()) {
            return Err(MlError::NonFinite { location });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_prefers_first_on_tie() {
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
    }

    #[test]
    fn validation_catches_nan() {
        let x = Matrix::from_rows(&[vec![1.0], vec![f64::NAN]]);
        let err = validate_classification(&x, &[0, 1], 2).unwrap_err();
        assert!(matches!(err, MlError::NonFinite { .. }));
    }

    #[test]
    fn validation_catches_shape_and_labels() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        assert!(matches!(validate_classification(&x, &[0], 2), Err(MlError::ShapeMismatch { .. })));
        assert!(matches!(validate_classification(&x, &[0, 5], 2), Err(MlError::BadLabel { .. })));
        assert!(matches!(
            validate_regression(&x, &[1.0, f64::INFINITY]),
            Err(MlError::NonFinite { .. })
        ));
    }
}

//! TabPFN surrogate.
//!
//! The real TabPFN (Hollmann et al., ICLR'23) is a transformer that solves
//! *small* tabular classification problems in one forward pass, with hard
//! input limits (≈1000 training samples, ≈100 features, ≤10 classes,
//! classification only). CAAFE uses it as its fixed model, which is why
//! CAAFE fails on the paper's large datasets ("Out of Mem.", "Doesn't
//! support" cells in Tables 5 and 7).
//!
//! The surrogate reproduces the *behavioural envelope*: identical hard
//! limits (violations raise the corresponding error), strong accuracy on
//! small clean data (an ensemble of distance-weighted prototype predictors
//! over feature subsets — cheap, deterministic, and competitive at
//! TabPFN-scale), and one-pass "training" cost.

use crate::estimator::{
    check_finite, validate_classification, Classifier, ClassifierModel, MlError, Result,
};
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hard input limits copied from the published TabPFN constraints.
pub const TABPFN_MAX_SAMPLES: usize = 1000;
pub const TABPFN_MAX_FEATURES: usize = 100;
pub const TABPFN_MAX_CLASSES: usize = 10;

/// TabPFN surrogate classifier (see module docs).
#[derive(Debug, Clone)]
pub struct TabPfnSurrogate {
    /// Number of feature-subset ensemble members.
    pub n_members: usize,
    pub seed: u64,
}

impl Default for TabPfnSurrogate {
    fn default() -> Self {
        TabPfnSurrogate { n_members: 8, seed: 3 }
    }
}

struct Member {
    features: Vec<usize>,
    /// Standardized training rows restricted to `features`.
    train: Vec<Vec<f64>>,
    labels: Vec<usize>,
    means: Vec<f64>,
    stds: Vec<f64>,
}

struct TabPfnModel {
    members: Vec<Member>,
    n_classes: usize,
}

impl Classifier for TabPfnSurrogate {
    fn name(&self) -> &'static str {
        "tabpfn"
    }

    fn fit(&self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<Box<dyn ClassifierModel>> {
        validate_classification(x, y, n_classes)?;
        if x.rows() > TABPFN_MAX_SAMPLES {
            return Err(MlError::ResourceLimit(format!(
                "TabPFN supports at most {TABPFN_MAX_SAMPLES} training samples, got {}",
                x.rows()
            )));
        }
        if x.cols() > TABPFN_MAX_FEATURES {
            return Err(MlError::Unsupported(format!(
                "TabPFN supports at most {TABPFN_MAX_FEATURES} features, got {}",
                x.cols()
            )));
        }
        if n_classes > TABPFN_MAX_CLASSES {
            return Err(MlError::Unsupported(format!(
                "TabPFN supports at most {TABPFN_MAX_CLASSES} classes, got {n_classes}"
            )));
        }
        let d = x.cols();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let subset_size = ((d as f64 * 0.7).ceil() as usize).clamp(1, d);
        let mut members = Vec::with_capacity(self.n_members);
        for _ in 0..self.n_members {
            let mut features: Vec<usize> = (0..d).collect();
            features.shuffle(&mut rng);
            features.truncate(subset_size);
            features.sort_unstable();
            // Standardize within the subset.
            let n = x.rows() as f64;
            let mut means = vec![0.0; features.len()];
            for r in 0..x.rows() {
                for (m, &f) in means.iter_mut().zip(&features) {
                    *m += x.get(r, f);
                }
            }
            means.iter_mut().for_each(|m| *m /= n);
            let mut stds = vec![0.0; features.len()];
            for r in 0..x.rows() {
                for ((s, &f), m) in stds.iter_mut().zip(&features).zip(&means) {
                    *s += (x.get(r, f) - m).powi(2);
                }
            }
            for s in &mut stds {
                *s = (*s / n).sqrt();
                if *s < 1e-12 {
                    *s = 1.0;
                }
            }
            let train: Vec<Vec<f64>> = (0..x.rows())
                .map(|r| {
                    features
                        .iter()
                        .zip(&means)
                        .zip(&stds)
                        .map(|((&f, m), s)| (x.get(r, f) - m) / s)
                        .collect()
                })
                .collect();
            members.push(Member { features, train, labels: y.to_vec(), means, stds });
        }
        Ok(Box::new(TabPfnModel { members, n_classes }))
    }
}

impl Member {
    fn proba(&self, row: &[f64], n_classes: usize) -> Vec<f64> {
        let q: Vec<f64> = self
            .features
            .iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((&f, m), s)| (row[f] - m) / s)
            .collect();
        // Softmax-weighted vote over all training points (attention-like).
        let mut probs = vec![1e-9; n_classes];
        for (t, &label) in self.train.iter().zip(&self.labels) {
            let d2: f64 = t.iter().zip(&q).map(|(a, b)| (a - b).powi(2)).sum();
            let w = (-d2 / q.len().max(1) as f64).exp();
            probs[label] += w;
        }
        let total: f64 = probs.iter().sum();
        probs.iter().map(|p| p / total).collect()
    }
}

impl ClassifierModel for TabPfnModel {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<Vec<f64>>> {
        check_finite(x, "prediction features")?;
        let mut out = Vec::with_capacity(x.rows());
        for r in 0..x.rows() {
            let row = x.row(r);
            let mut acc = vec![0.0; self.n_classes];
            for m in &self.members {
                for (a, p) in acc.iter_mut().zip(m.proba(row, self.n_classes)) {
                    *a += p;
                }
            }
            let k = self.members.len() as f64;
            acc.iter_mut().for_each(|a| *a /= k);
            out.push(acc);
        }
        Ok(out)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn surrogate_enforces_tabpfn_limits() {
        let big_x = Matrix::zeros(1001, 2);
        let y = vec![0; 1001];
        assert!(matches!(
            TabPfnSurrogate::default().fit(&big_x, &y, 2),
            Err(MlError::ResourceLimit(_))
        ));

        let wide_x = Matrix::zeros(10, 101);
        let y = vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        assert!(matches!(
            TabPfnSurrogate::default().fit(&wide_x, &y, 2),
            Err(MlError::Unsupported(_))
        ));
    }

    #[test]
    fn surrogate_learns_small_problems_well() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let t = i as f64 / 10.0;
            rows.push(vec![t.sin(), t.cos()]);
            y.push((t.sin() > 0.0) as usize);
        }
        let x = Matrix::from_rows(&rows);
        let model = TabPfnSurrogate::default().fit(&x, &y, 2).unwrap();
        let pred = model.predict(&x).unwrap();
        assert!(accuracy(&y, &pred) > 0.9);
    }

    #[test]
    fn surrogate_caps_classes() {
        let x = Matrix::from_rows(&(0..22).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let y: Vec<usize> = (0..22).map(|i| i / 2).collect(); // 11 classes
        assert!(TabPfnSurrogate::default().fit(&x, &y, 11).is_err());
    }
}

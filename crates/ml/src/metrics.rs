//! Evaluation metrics used by the CatDB evaluation: accuracy, macro-F1,
//! AUC (binary and macro one-vs-rest multiclass), R², RMSE, and log loss.
//!
//! Classification labels are class indices `0..n_classes`; probabilistic
//! predictions are per-row probability vectors.

/// Fraction of exactly correct predictions.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let correct = y_true.iter().zip(y_pred).filter(|(a, b)| a == b).count();
    correct as f64 / y_true.len() as f64
}

/// Macro-averaged F1 over the classes present in `y_true`.
pub fn f1_macro(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    let mut f1_sum = 0.0;
    let mut present = 0usize;
    for c in 0..n_classes {
        let tp = y_true.iter().zip(y_pred).filter(|(t, p)| **t == c && **p == c).count() as f64;
        let fp = y_true.iter().zip(y_pred).filter(|(t, p)| **t != c && **p == c).count() as f64;
        let fn_ = y_true.iter().zip(y_pred).filter(|(t, p)| **t == c && **p != c).count() as f64;
        if tp + fn_ == 0.0 {
            continue; // class absent from y_true
        }
        present += 1;
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = tp / (tp + fn_);
        if precision + recall > 0.0 {
            f1_sum += 2.0 * precision * recall / (precision + recall);
        }
    }
    if present == 0 {
        0.0
    } else {
        f1_sum / present as f64
    }
}

/// Binary ROC AUC from positive-class scores, computed by the rank
/// statistic (equivalent to the Mann–Whitney U). Ties share ranks.
/// Returns 0.5 when one class is absent (undefined AUC).
pub fn auc_binary(y_true: &[usize], scores: &[f64]) -> f64 {
    assert_eq!(y_true.len(), scores.len());
    let n_pos = y_true.iter().filter(|&&y| y == 1).count();
    let n_neg = y_true.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank all scores (average rank for ties).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 =
        y_true.iter().zip(&ranks).filter(|(&y, _)| y == 1).map(|(_, &r)| r).sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Macro one-vs-rest AUC for multiclass problems; with `n_classes == 2`
/// it reduces to [`auc_binary`] on class-1 probabilities.
pub fn auc_macro_ovr(y_true: &[usize], proba: &[Vec<f64>], n_classes: usize) -> f64 {
    assert_eq!(y_true.len(), proba.len());
    if n_classes == 2 {
        let scores: Vec<f64> = proba.iter().map(|p| p[1]).collect();
        return auc_binary(y_true, &scores);
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for c in 0..n_classes {
        let bin: Vec<usize> = y_true.iter().map(|&y| (y == c) as usize).collect();
        if bin.iter().all(|&b| b == 0) || bin.iter().all(|&b| b == 1) {
            continue;
        }
        let scores: Vec<f64> = proba.iter().map(|p| p.get(c).copied().unwrap_or(0.0)).collect();
        total += auc_binary(&bin, &scores);
        counted += 1;
    }
    if counted == 0 {
        0.5
    } else {
        total / counted as f64
    }
}

/// Coefficient of determination. 1.0 is perfect; 0.0 matches the mean
/// predictor; negative values are worse than the mean.
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let mean: f64 = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = y_true.iter().zip(y_pred).map(|(y, p)| (y - p).powi(2)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            return 1.0;
        }
        return 0.0;
    }
    1.0 - ss_res / ss_tot
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let mse: f64 =
        y_true.iter().zip(y_pred).map(|(y, p)| (y - p).powi(2)).sum::<f64>() / y_true.len() as f64;
    mse.sqrt()
}

/// Multiclass cross-entropy with probability clipping.
pub fn log_loss(y_true: &[usize], proba: &[Vec<f64>]) -> f64 {
    assert_eq!(y_true.len(), proba.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let eps = 1e-15;
    let total: f64 = y_true
        .iter()
        .zip(proba)
        .map(|(&y, p)| -(p.get(y).copied().unwrap_or(eps).clamp(eps, 1.0 - eps)).ln())
        .sum();
    total / y_true.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn perfect_auc() {
        let y = [0, 0, 1, 1];
        let s = [0.1, 0.2, 0.8, 0.9];
        assert_eq!(auc_binary(&y, &s), 1.0);
        let rev = [0.9, 0.8, 0.2, 0.1];
        assert_eq!(auc_binary(&y, &rev), 0.0);
    }

    #[test]
    fn random_auc_is_half_under_ties() {
        let y = [0, 1, 0, 1];
        let s = [0.5, 0.5, 0.5, 0.5];
        assert_eq!(auc_binary(&y, &s), 0.5);
    }

    #[test]
    fn degenerate_auc_returns_half() {
        assert_eq!(auc_binary(&[1, 1], &[0.3, 0.9]), 0.5);
    }

    #[test]
    fn macro_ovr_reduces_to_binary() {
        let y = [0, 1, 1];
        let p = vec![vec![0.9, 0.1], vec![0.2, 0.8], vec![0.3, 0.7]];
        let macro_auc = auc_macro_ovr(&y, &p, 2);
        let bin = auc_binary(&y, &[0.1, 0.8, 0.7]);
        assert_eq!(macro_auc, bin);
    }

    #[test]
    fn multiclass_macro_auc() {
        // Perfectly separable three-class case.
        let y = [0, 1, 2];
        let p = vec![vec![0.8, 0.1, 0.1], vec![0.1, 0.8, 0.1], vec![0.1, 0.1, 0.8]];
        assert_eq!(auc_macro_ovr(&y, &p, 3), 1.0);
    }

    #[test]
    fn r2_behaviour() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(r2(&y, &[1.0, 2.0, 3.0]), 1.0);
        assert_eq!(r2(&y, &[2.0, 2.0, 2.0]), 0.0); // mean predictor
        assert!(r2(&y, &[3.0, 3.0, 3.0]) < 0.0);
        assert_eq!(r2(&[5.0, 5.0], &[5.0, 5.0]), 1.0); // constant target
    }

    #[test]
    fn f1_macro_ignores_absent_classes() {
        let y_true = [0, 0, 1, 1];
        let y_pred = [0, 0, 1, 0];
        let f1 = f1_macro(&y_true, &y_pred, 3); // class 2 absent
                                                // class0: p=2/3 r=1 f1=0.8 ; class1: p=1 r=0.5 f1=2/3
        assert!((f1 - (0.8 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn log_loss_clips() {
        let y = [0usize];
        let p = vec![vec![0.0, 1.0]]; // catastrophic but clipped
        assert!(log_loss(&y, &p).is_finite());
    }

    #[test]
    fn rmse_simple() {
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }
}

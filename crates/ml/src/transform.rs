//! The `Transform` trait: fitted, reusable table-to-table preprocessing
//! steps. Transforms are fitted on training data and then applied to both
//! train and test tables; transforms that change the *row set* (outlier
//! removal, deduplication, augmentation) advertise `train_only()` and are
//! applied exclusively to the training table, matching the paper's
//! evaluation protocol ("preprocessing was only done on the training set").

use catdb_table::{Table, TableError};
use std::fmt;

/// Errors raised by transform fitting and application.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformError {
    /// The referenced column does not exist (a hallucinated feature).
    ColumnNotFound(String),
    /// The column has the wrong physical type for this transform.
    WrongType { column: String, expected: &'static str },
    /// Transform was applied before being fitted.
    NotFitted(&'static str),
    /// Invalid configuration or data regime.
    Invalid(String),
    /// Underlying table failure.
    Table(TableError),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::ColumnNotFound(c) => write!(f, "column not found: '{c}'"),
            TransformError::WrongType { column, expected } => {
                write!(f, "column '{column}' is not {expected}")
            }
            TransformError::NotFitted(name) => write!(f, "{name} used before fit"),
            TransformError::Invalid(msg) => write!(f, "{msg}"),
            TransformError::Table(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TransformError {}

impl From<TableError> for TransformError {
    fn from(e: TableError) -> Self {
        TransformError::Table(e)
    }
}

pub type Result<T> = std::result::Result<T, TransformError>;

/// A fittable, reusable preprocessing step.
pub trait Transform: Send + Sync {
    /// Short identifier used in logs and generated-pipeline listings.
    fn name(&self) -> String;

    /// Learn parameters from the training table.
    fn fit(&mut self, table: &Table) -> Result<()>;

    /// Apply the fitted transform to a table.
    fn transform(&self, table: &Table) -> Result<Table>;

    /// Row-set-changing transforms return true and are applied only to
    /// training data.
    fn train_only(&self) -> bool {
        false
    }

    /// Fit on `table` and immediately transform it.
    fn fit_transform(&mut self, table: &Table) -> Result<Table> {
        self.fit(table)?;
        self.transform(table)
    }
}

/// Look up a column or produce the transform-level error.
pub(crate) fn require_column<'t>(table: &'t Table, name: &str) -> Result<&'t catdb_table::Column> {
    table.column(name).map_err(|_| TransformError::ColumnNotFound(name.to_string()))
}

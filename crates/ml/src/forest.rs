//! Random forests: bagged CART trees with per-split feature subsampling.
//! Trees are trained in parallel on the shared `catdb-runtime` pool; the
//! per-tree seeds are drawn sequentially up front, so predictions are
//! identical for every `n_threads` value.

use crate::estimator::{
    check_finite, validate_classification, validate_regression, Classifier, ClassifierModel,
    Regressor, RegressorModel, Result,
};
use crate::matrix::Matrix;
use crate::tree::{binned_for, fit_class_tree_on, fit_reg_tree, SplitMode, TreeConfig};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Shared forest hyper-parameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    pub n_trees: usize,
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    pub seed: u64,
    /// Worker threads for tree training (1 = sequential).
    pub n_threads: usize,
    /// Split-search strategy shared by every tree.
    pub split_mode: SplitMode,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 50,
            max_depth: 12,
            min_samples_leaf: 2,
            seed: 7,
            n_threads: 4,
            split_mode: SplitMode::Exact,
        }
    }
}

fn bootstrap_rows(n: usize, rng: &mut StdRng) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

fn tree_config(cfg: &ForestConfig, n_features: usize, tree_seed: u64) -> TreeConfig {
    TreeConfig {
        max_depth: cfg.max_depth,
        min_samples_leaf: cfg.min_samples_leaf,
        max_thresholds: 16,
        feature_subsample: Some(((n_features as f64).sqrt().ceil() as usize).max(1)),
        seed: tree_seed,
        split_mode: cfg.split_mode,
    }
}

/// Random-forest classifier.
#[derive(Debug, Clone, Default)]
pub struct RandomForestClassifier {
    pub config: ForestConfig,
}

struct ForestClassifierModel {
    trees: Vec<crate::tree::TreeClassifierModel>,
    n_classes: usize,
}

impl Classifier for RandomForestClassifier {
    fn name(&self) -> &'static str {
        "random_forest"
    }

    fn fit(&self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<Box<dyn ClassifierModel>> {
        validate_classification(x, y, n_classes)?;
        let cfg = &self.config;
        let n = x.rows();
        // Pre-draw bootstrap samples sequentially for determinism, then
        // train trees in parallel.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let samples: Vec<Vec<usize>> =
            (0..cfg.n_trees).map(|_| bootstrap_rows(n, &mut rng)).collect();
        // Quantize once; every tree shares the same codes and bin edges.
        let binned = binned_for(x, &tree_config(cfg, x.cols(), cfg.seed));
        let trees = catdb_runtime::parallel_map(cfg.n_threads, &samples, |t, sample| {
            let tc = tree_config(cfg, x.cols(), cfg.seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
            fit_class_tree_on(x, y, sample.clone(), n_classes, &tc, binned.as_ref())
        });
        Ok(Box::new(ForestClassifierModel { trees, n_classes }))
    }
}

impl ClassifierModel for ForestClassifierModel {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<Vec<f64>>> {
        check_finite(x, "prediction features")?;
        let mut acc = vec![vec![0.0; self.n_classes]; x.rows()];
        for tree in &self.trees {
            for (row_acc, p) in acc.iter_mut().zip(tree.predict_proba(x)?) {
                for (a, v) in row_acc.iter_mut().zip(p) {
                    *a += v;
                }
            }
        }
        let k = self.trees.len() as f64;
        for row in &mut acc {
            for v in row.iter_mut() {
                *v /= k;
            }
        }
        Ok(acc)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// Random-forest regressor.
#[derive(Debug, Clone, Default)]
pub struct RandomForestRegressor {
    pub config: ForestConfig,
}

struct ForestRegressorModel {
    trees: Vec<crate::tree::TreeRegressorModel>,
}

impl Regressor for RandomForestRegressor {
    fn name(&self) -> &'static str {
        "random_forest"
    }

    fn fit(&self, x: &Matrix, y: &[f64]) -> Result<Box<dyn RegressorModel>> {
        validate_regression(x, y)?;
        let cfg = &self.config;
        let n = x.rows();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let samples: Vec<Vec<usize>> =
            (0..cfg.n_trees).map(|_| bootstrap_rows(n, &mut rng)).collect();
        let binned = binned_for(x, &tree_config(cfg, x.cols(), cfg.seed));
        let trees = catdb_runtime::parallel_map(cfg.n_threads, &samples, |t, sample| {
            let tc = tree_config(cfg, x.cols(), cfg.seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
            fit_reg_tree(x, y, sample.clone(), &tc, binned.as_ref())
        });
        Ok(Box::new(ForestRegressorModel { trees }))
    }
}

impl RegressorModel for ForestRegressorModel {
    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        check_finite(x, "prediction features")?;
        let mut acc = vec![0.0; x.rows()];
        for tree in &self.trees {
            for (a, v) in acc.iter_mut().zip(tree.predict_unchecked(x)) {
                *a += v;
            }
        }
        let k = self.trees.len() as f64;
        for a in &mut acc {
            *a /= k;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, r2};
    use rand::Rng;

    #[test]
    fn forest_classifies_noisy_blobs() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..200 {
            let class = rng.gen_range(0..2usize);
            let cx = if class == 0 { 0.0 } else { 3.0 };
            rows.push(vec![cx + rng.gen::<f64>(), cx + rng.gen::<f64>()]);
            y.push(class);
        }
        let x = Matrix::from_rows(&rows);
        let cfg = ForestConfig { n_trees: 20, n_threads: 2, ..Default::default() };
        let model = RandomForestClassifier { config: cfg }.fit(&x, &y, 2).unwrap();
        let pred = model.predict(&x).unwrap();
        assert!(accuracy(&y, &pred) > 0.97);
    }

    #[test]
    fn forest_regression_beats_mean() {
        let rows: Vec<Vec<f64>> =
            (0..200).map(|i| vec![(i % 20) as f64, (i / 20) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 2.0 + r[1] * r[1]).collect();
        let x = Matrix::from_rows(&rows);
        let cfg = ForestConfig { n_trees: 20, n_threads: 2, ..Default::default() };
        let model = RandomForestRegressor { config: cfg }.fit(&x, &y).unwrap();
        let pred = model.predict(&x).unwrap();
        assert!(r2(&y, &pred) > 0.9);
    }

    #[test]
    fn forest_is_deterministic_for_fixed_seed() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i * 3 % 7) as f64]).collect();
        let y: Vec<usize> = (0..50).map(|i| (i % 2) as usize).collect();
        let x = Matrix::from_rows(&rows);
        let cfg = ForestConfig { n_trees: 8, n_threads: 3, seed: 99, ..Default::default() };
        let m1 = RandomForestClassifier { config: cfg.clone() }.fit(&x, &y, 2).unwrap();
        let m2 = RandomForestClassifier { config: cfg }.fit(&x, &y, 2).unwrap();
        assert_eq!(m1.predict_proba(&x).unwrap(), m2.predict_proba(&x).unwrap());
    }
}

//! # catdb-ml — from-scratch machine learning substrate
//!
//! Re-implements the modelling and preprocessing surface the CatDB paper's
//! generated pipelines use (scikit-learn in the original system):
//!
//! * **Estimators** — logistic regression, ridge regression, CART decision
//!   trees, random forests, gradient boosting, k-NN, Gaussian naive Bayes,
//!   and a TabPFN surrogate with the real TabPFN's hard input limits.
//! * **Transforms** — imputation, scaling, one-hot / ordinal / k-hot /
//!   hashed encodings, outlier removal (IQR, z-score, LOF), deduplication,
//!   SMOTE/ADASYN/SMOGN augmentation, top-k feature selection.
//! * **Metrics** — accuracy, macro-F1, binary & macro-OVR AUC, R², RMSE,
//!   log loss.
//!
//! Estimators fail loudly on NaNs and string features, which is the
//! substrate CatDB's error-management loop is built on.

pub mod augment;
pub mod binned;
pub mod boosting;
mod dist;
pub mod encode;
pub mod estimator;
pub mod featurize;
pub mod forest;
pub mod impute;
pub mod knn;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod naive_bayes;
pub mod rows;
pub mod scale;
pub mod select;
pub mod tabpfn;
pub mod transform;
mod tree;

pub use augment::{AugmentMethod, Augmenter};
pub use binned::BinnedDataset;
pub use boosting::{BoostConfig, GradientBoostingClassifier, GradientBoostingRegressor};
pub use encode::{FeatureHasher, KHotEncoder, OneHotEncoder, OrdinalEncoder};
pub use estimator::{argmax, Classifier, ClassifierModel, MlError, Regressor, RegressorModel};
pub use featurize::{featurize, regression_target, LabelEncoder, TaskKind};
pub use forest::{ForestConfig, RandomForestClassifier, RandomForestRegressor};
pub use impute::{ImputeStrategy, Imputer};
pub use knn::{KnnClassifier, KnnConfig, KnnRegressor};
pub use linear::{LogisticRegression, RidgeRegression};
pub use matrix::{ColMajor, Matrix};
pub use naive_bayes::GaussianNb;
pub use rows::{
    ColumnDropper, ConstantColumnDropper, Deduplicator, HighMissingDropper, NullRowDropper,
    OutlierMethod, OutlierRemover,
};
pub use scale::{ScaleMethod, Scaler};
pub use select::TopKSelector;
pub use tabpfn::{TabPfnSurrogate, TABPFN_MAX_CLASSES, TABPFN_MAX_FEATURES, TABPFN_MAX_SAMPLES};
pub use transform::{Transform, TransformError};
pub use tree::{DecisionTreeClassifier, DecisionTreeRegressor, SplitMode, TreeConfig};

//! CART decision trees for classification (Gini) and regression (variance
//! reduction), with capped threshold candidates and optional feature
//! subsampling so the trees double as random-forest base learners.
//!
//! Two split-search strategies share the same tree structure:
//!
//! * [`SplitMode::Exact`] — the original sorted-scan search, bit-identical
//!   to the seed implementation.
//! * [`SplitMode::Binned`] — LightGBM-style histogram search over a shared
//!   [`BinnedDataset`]: per-node histograms of (count, class counts |
//!   sum, sum-of-squares) are accumulated in one pass over `u8` codes, and
//!   each sibling's histogram is derived as parent − scanned-child instead
//!   of rescanned.

use crate::binned::{BinnedDataset, MAX_BINS};
use crate::estimator::{
    check_finite, validate_classification, validate_regression, Classifier, ClassifierModel,
    Regressor, RegressorModel, Result,
};
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// Split-search strategy for tree training.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SplitMode {
    /// Sorted-scan threshold search (bit-identical to the seed trees).
    #[default]
    Exact,
    /// Histogram search over quantized features (`2..=256` bins).
    Binned { bins: usize },
}

impl SplitMode {
    /// Parse `exact`, `binned`, or `binned:<bins>` (bins in `2..=256`).
    pub fn parse(s: &str) -> std::result::Result<SplitMode, String> {
        match s {
            "exact" => Ok(SplitMode::Exact),
            "binned" => Ok(SplitMode::Binned { bins: MAX_BINS }),
            other => match other.strip_prefix("binned:") {
                Some(n) => {
                    let bins: usize = n.parse().map_err(|_| format!("invalid bin count `{n}`"))?;
                    if !(2..=MAX_BINS).contains(&bins) {
                        return Err(format!("bins must be in 2..=256, got {bins}"));
                    }
                    Ok(SplitMode::Binned { bins })
                }
                None => Err(format!(
                    "unknown split mode `{other}` (expected `exact`, `binned`, or \
                     `binned:<bins>`)"
                )),
            },
        }
    }
}

impl fmt::Display for SplitMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitMode::Exact => write!(f, "exact"),
            SplitMode::Binned { bins } => write!(f, "binned:{bins}"),
        }
    }
}

/// Hyper-parameters shared by classification and regression trees.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    /// Cap on candidate thresholds per feature per node (quantile-strided;
    /// exact mode only — binned mode considers every bin edge).
    pub max_thresholds: usize,
    /// Features sampled per split; `None` = all (single trees),
    /// `Some(k)` for forests.
    pub feature_subsample: Option<usize>,
    pub seed: u64,
    /// Split-search strategy.
    pub split_mode: SplitMode,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 10,
            min_samples_leaf: 1,
            max_thresholds: 32,
            feature_subsample: None,
            seed: 0,
            split_mode: SplitMode::Exact,
        }
    }
}

enum Node {
    ClassLeaf(Vec<f64>),
    RegLeaf(f64),
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

enum Target<'a> {
    Class { y: &'a [usize], n_classes: usize },
    Reg { y: &'a [f64] },
}

impl Target<'_> {
    /// Impurity × count for the rows (so parent − children differences are
    /// comparable without re-normalizing): Gini for classes, SSE for
    /// regression.
    fn weighted_impurity(&self, rows: &[usize]) -> f64 {
        match self {
            Target::Class { y, n_classes } => {
                let mut counts = vec![0usize; *n_classes];
                for &r in rows {
                    counts[y[r]] += 1;
                }
                gini_weighted(&counts, rows.len())
            }
            Target::Reg { y } => {
                let n = rows.len() as f64;
                if rows.is_empty() {
                    return 0.0;
                }
                let mean: f64 = rows.iter().map(|&r| y[r]).sum::<f64>() / n;
                rows.iter().map(|&r| (y[r] - mean).powi(2)).sum()
            }
        }
    }

    fn leaf(&self, rows: &[usize]) -> Node {
        match self {
            Target::Class { y, n_classes } => {
                let mut counts = vec![0.0; *n_classes];
                for &r in rows {
                    counts[y[r]] += 1.0;
                }
                let total: f64 = counts.iter().sum();
                if total > 0.0 {
                    for c in &mut counts {
                        *c /= total;
                    }
                }
                Node::ClassLeaf(counts)
            }
            Target::Reg { y } => {
                let mean = if rows.is_empty() {
                    0.0
                } else {
                    rows.iter().map(|&r| y[r]).sum::<f64>() / rows.len() as f64
                };
                Node::RegLeaf(mean)
            }
        }
    }

    fn is_pure(&self, rows: &[usize]) -> bool {
        match self {
            Target::Class { y, .. } => rows.windows(2).all(|w| y[w[0]] == y[w[1]]),
            Target::Reg { y } => rows.windows(2).all(|w| (y[w[0]] - y[w[1]]).abs() < 1e-12),
        }
    }
}

fn gini_weighted(counts: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n_f = n as f64;
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64).powi(2)).sum();
    n_f * (1.0 - sum_sq / (n_f * n_f))
}

/// [`gini_weighted`] of the complement counts (`parent − left`) without
/// materializing them. Identical arithmetic to calling `gini_weighted`
/// on the right-side counts, since the differences are exact integers.
fn gini_weighted_rest(parent: &[usize], left: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n_f = n as f64;
    let sum_sq: f64 = parent.iter().zip(left).map(|(&p, &l)| ((p - l) as f64).powi(2)).sum();
    n_f * (1.0 - sum_sq / (n_f * n_f))
}

/// Sort `(value, row)` pairs for feature `f` into `vals` and collect the
/// boundaries between distinct values into `boundaries`. Returns `false`
/// when the feature is constant at this node (no candidates).
fn prepare_candidates(
    x: &Matrix,
    rows: &[usize],
    f: usize,
    vals: &mut Vec<(f64, usize)>,
    boundaries: &mut Vec<usize>,
) -> bool {
    vals.clear();
    vals.extend(rows.iter().map(|&r| (x.get(r, f), r)));
    vals.sort_by(|a, b| a.0.total_cmp(&b.0));
    if vals[0].0 == vals[vals.len() - 1].0 {
        return false;
    }
    boundaries.clear();
    for i in 1..vals.len() {
        if vals[i].0 > vals[i - 1].0 {
            boundaries.push(i);
        }
    }
    true
}

/// Flattened per-node histogram over all features of a [`BinnedDataset`]:
/// classification keeps per-(bin, class) counts, regression keeps per-bin
/// (count, Σy, Σy²). Sibling histograms subtract exactly (u32 counts are
/// exact; the f64 sums are deterministic but not order-identical to a
/// rescan, which binned mode accepts).
enum Hist {
    Class(Vec<u32>),
    Reg { count: Vec<u32>, sum: Vec<f64>, sumsq: Vec<f64> },
}

impl Hist {
    /// In-place `self −= child`, turning a parent histogram into the
    /// sibling of the scanned child.
    fn subtract(&mut self, child: &Hist) {
        match (self, child) {
            (Hist::Class(p), Hist::Class(c)) => {
                for (a, b) in p.iter_mut().zip(c) {
                    *a -= b;
                }
            }
            (Hist::Reg { count, sum, sumsq }, Hist::Reg { count: cc, sum: cs, sumsq: cq }) => {
                for (a, b) in count.iter_mut().zip(cc) {
                    *a -= b;
                }
                for (a, b) in sum.iter_mut().zip(cs) {
                    *a -= b;
                }
                for (a, b) in sumsq.iter_mut().zip(cq) {
                    *a -= b;
                }
            }
            _ => unreachable!("histogram kind mismatch"),
        }
    }
}

/// Allocate a zeroed histogram covering `bins` bins of the given target
/// kind (classification scales by the class count).
fn empty_hist(target: &Target, bins: usize) -> Hist {
    match target {
        Target::Class { n_classes, .. } => Hist::Class(vec![0; bins * n_classes]),
        Target::Reg { .. } => {
            Hist::Reg { count: vec![0; bins], sum: vec![0.0; bins], sumsq: vec![0.0; bins] }
        }
    }
}

/// `(base, width)` of feature `f`'s element range inside a flattened
/// histogram (element units, i.e. already scaled by the class count).
fn feature_range(target: &Target, b: &BinnedDataset, f: usize) -> (usize, usize) {
    let scale = match target {
        Target::Class { n_classes, .. } => *n_classes,
        Target::Reg { .. } => 1,
    };
    (b.bin_offset(f) * scale, b.n_bins(f) * scale)
}

/// Per-node training payload gathered once per histogram scan, so every
/// feature pass streams flat arrays (row index, label | target value)
/// instead of re-chasing `rows → y` through two indirections per feature.
enum NodePayload {
    Class(Vec<u32>),
    Reg(Vec<f64>),
}

/// Accumulate one feature's codes into `hist` starting at element offset
/// `base`. This is the monomorphic hot loop of binned training: one `u8`
/// gather plus one indexed add per row.
fn scan_feature(
    codes: &[u8],
    idx: &[u32],
    payload: &NodePayload,
    n_classes: usize,
    base: usize,
    hist: &mut Hist,
) {
    match (hist, payload) {
        (Hist::Class(h), NodePayload::Class(labels)) => {
            for (&r, &lab) in idx.iter().zip(labels) {
                h[base + codes[r as usize] as usize * n_classes + lab as usize] += 1;
            }
        }
        (Hist::Reg { count, sum, sumsq }, NodePayload::Reg(vals)) => {
            for (&r, &v) in idx.iter().zip(vals) {
                let bin = base + codes[r as usize] as usize;
                count[bin] += 1;
                sum[bin] += v;
                sumsq[bin] += v * v;
            }
        }
        _ => unreachable!("histogram kind mismatch"),
    }
}

/// Row-count × feature-count product above which a node's histogram scan
/// fans out per-feature on the shared runtime (each feature's bin range is
/// an independent output slice, so the merge is a plain input-ordered
/// concatenation and the result is identical at any thread count).
const PARALLEL_SCAN_CELLS: usize = 1 << 15;

struct Builder<'a> {
    x: &'a Matrix,
    target: Target<'a>,
    cfg: &'a TreeConfig,
    rng: StdRng,
    binned: Option<&'a BinnedDataset>,
    hist_builds: u64,
    hist_subtractions: u64,
}

impl Builder<'_> {
    fn fit(&mut self, rows: Vec<usize>) -> Node {
        match self.binned {
            Some(_) => self.build_binned(rows, 0, None),
            None => self.build(rows, 0),
        }
    }

    /// Build the full-feature histogram for a node in one pass over the u8
    /// codes. Large nodes fan out per feature on the runtime pool; each
    /// feature's bins land in a disjoint slice, so the input-ordered merge
    /// is a plain copy and the result is identical at any thread count.
    fn scan_hist(&mut self, rows: &[usize]) -> Hist {
        self.hist_builds += 1;
        let b = self.binned.expect("binned scan without dataset");
        let target = &self.target;
        // Gather the node's row indices and targets into flat arrays once;
        // the d feature passes then stream them sequentially.
        let idx: Vec<u32> = rows.iter().map(|&r| r as u32).collect();
        let (payload, n_classes) = match target {
            Target::Class { y, n_classes } => {
                (NodePayload::Class(rows.iter().map(|&r| y[r] as u32).collect()), *n_classes)
            }
            Target::Reg { y } => (NodePayload::Reg(rows.iter().map(|&r| y[r]).collect()), 1),
        };
        let mut hist = empty_hist(target, b.total_bins());
        if rows.len() * b.cols() >= PARALLEL_SCAN_CELLS && b.cols() > 1 {
            let feats: Vec<usize> = (0..b.cols()).collect();
            let limit = catdb_runtime::pool_size().saturating_add(1);
            let parts = catdb_runtime::parallel_map(limit, &feats, |_, &f| {
                let mut part = empty_hist(target, b.n_bins(f));
                scan_feature(b.col_codes(f), &idx, &payload, n_classes, 0, &mut part);
                part
            });
            for (f, part) in parts.into_iter().enumerate() {
                let (base, width) = feature_range(target, b, f);
                match (&mut hist, part) {
                    (Hist::Class(h), Hist::Class(p)) => {
                        h[base..base + width].copy_from_slice(&p);
                    }
                    (
                        Hist::Reg { count, sum, sumsq },
                        Hist::Reg { count: pc, sum: ps, sumsq: pq },
                    ) => {
                        count[base..base + width].copy_from_slice(&pc);
                        sum[base..base + width].copy_from_slice(&ps);
                        sumsq[base..base + width].copy_from_slice(&pq);
                    }
                    _ => unreachable!("histogram kind mismatch"),
                }
            }
        } else {
            for f in 0..b.cols() {
                let (base, _) = feature_range(target, b, f);
                scan_feature(b.col_codes(f), &idx, &payload, n_classes, base, &mut hist);
            }
        }
        hist
    }

    /// Histogram-based recursion: `hist`, when present, was derived by the
    /// parent (scan of the smaller sibling + subtraction), so each level
    /// scans the raw codes at most once for the smaller half of its rows.
    fn build_binned(&mut self, rows: Vec<usize>, depth: usize, hist: Option<Hist>) -> Node {
        if depth >= self.cfg.max_depth || rows.len() < 2 * self.cfg.min_samples_leaf {
            return self.target.leaf(&rows);
        }
        // One pass over the node's labels covers purity + parent impurity
        // (the exact path pays three passes here; with full-feature
        // histogram scans per node the savings are material).
        let parent_class_counts: Option<Vec<usize>> = match &self.target {
            Target::Class { y, n_classes } => {
                let mut counts = vec![0usize; *n_classes];
                for &r in &rows {
                    counts[y[r]] += 1;
                }
                if counts.iter().filter(|&&c| c > 0).count() <= 1 {
                    return self.target.leaf(&rows);
                }
                Some(counts)
            }
            Target::Reg { .. } => {
                if self.target.is_pure(&rows) {
                    return self.target.leaf(&rows);
                }
                None
            }
        };
        let parent_impurity = match &parent_class_counts {
            Some(counts) => gini_weighted(counts, rows.len()),
            None => self.target.weighted_impurity(&rows),
        };
        if parent_impurity <= 1e-12 {
            return self.target.leaf(&rows);
        }
        let binned = self.binned.expect("binned build without dataset");

        let d = self.x.cols();
        let mut features: Vec<usize> = (0..d).collect();
        if let Some(k) = self.cfg.feature_subsample {
            features.shuffle(&mut self.rng);
            features.truncate(k.max(1).min(d));
        }

        let hist = match hist {
            Some(h) => h,
            None => self.scan_hist(&rows),
        };

        // Cumulative left-to-right sweep over each feature's bins: split at
        // bin b sends codes ≤ b left, which is exactly `value ≤ edges[b]`.
        let mut best: Option<(f64, usize, usize)> = None; // (gain, feature, bin)
        match (&hist, &self.target) {
            (Hist::Class(h), Target::Class { n_classes, .. }) => {
                let nc = *n_classes;
                let parent_counts =
                    parent_class_counts.as_ref().expect("class counts computed above");
                let mut left_counts = vec![0usize; nc];
                for &f in &features {
                    let nb = binned.n_bins(f);
                    if nb < 2 {
                        continue; // constant feature
                    }
                    let base = binned.bin_offset(f) * nc;
                    left_counts.fill(0);
                    let mut left_n = 0usize;
                    for b in 0..nb - 1 {
                        let slot = &h[base + b * nc..base + (b + 1) * nc];
                        for (acc, &v) in left_counts.iter_mut().zip(slot) {
                            *acc += v as usize;
                            left_n += v as usize;
                        }
                        let right_n = rows.len() - left_n;
                        if left_n < self.cfg.min_samples_leaf.max(1)
                            || right_n < self.cfg.min_samples_leaf.max(1)
                        {
                            continue;
                        }
                        let child = gini_weighted(&left_counts, left_n)
                            + gini_weighted_rest(parent_counts, &left_counts, right_n);
                        let gain = parent_impurity - child;
                        if best.as_ref().is_none_or(|x| gain > x.0) && gain > 1e-12 {
                            best = Some((gain, f, b));
                        }
                    }
                }
            }
            (Hist::Reg { count, sum, sumsq }, Target::Reg { .. }) => {
                for &f in &features {
                    let nb = binned.n_bins(f);
                    if nb < 2 {
                        continue;
                    }
                    let base = binned.bin_offset(f);
                    let bins = base..base + nb;
                    let total_n: u32 = count[bins.clone()].iter().sum();
                    let total_sum: f64 = sum[bins.clone()].iter().sum();
                    let total_sumsq: f64 = sumsq[bins].iter().sum();
                    let mut left_n = 0u32;
                    let mut left_sum = 0.0f64;
                    let mut left_sumsq = 0.0f64;
                    for b in 0..nb - 1 {
                        left_n += count[base + b];
                        left_sum += sum[base + b];
                        left_sumsq += sumsq[base + b];
                        let right_n = total_n - left_n;
                        if (left_n as usize) < self.cfg.min_samples_leaf.max(1)
                            || (right_n as usize) < self.cfg.min_samples_leaf.max(1)
                        {
                            continue;
                        }
                        let left_sse = left_sumsq - left_sum * left_sum / left_n as f64;
                        let right_sum = total_sum - left_sum;
                        let right_sse =
                            (total_sumsq - left_sumsq) - right_sum * right_sum / right_n as f64;
                        let child = left_sse + right_sse;
                        let gain = parent_impurity - child;
                        if best.as_ref().is_none_or(|x| gain > x.0) && gain > 1e-12 {
                            best = Some((gain, f, b));
                        }
                    }
                }
            }
            _ => unreachable!("histogram kind mismatch"),
        }

        let Some((_, feature, bin)) = best else {
            return self.target.leaf(&rows);
        };
        let threshold = binned.edges(feature)[bin];
        let codes = binned.col_codes(feature);
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
            rows.into_iter().partition(|&r| codes[r] as usize <= bin);
        if left_rows.is_empty() || right_rows.is_empty() {
            // Histogram counts guarantee both sides are non-empty; keep the
            // exact path's defensive fallback anyway.
            let all: Vec<usize> = left_rows.into_iter().chain(right_rows).collect();
            return self.target.leaf(&all);
        }

        // Subtraction trick: scan only the smaller child, derive the larger
        // sibling as parent − child.
        let scan_left = left_rows.len() <= right_rows.len();
        let small = if scan_left { &left_rows } else { &right_rows };
        let small_hist = self.scan_hist(small);
        let mut large_hist = hist;
        large_hist.subtract(&small_hist);
        self.hist_subtractions += 1;
        let (left_hist, right_hist) =
            if scan_left { (small_hist, large_hist) } else { (large_hist, small_hist) };

        let left = Box::new(self.build_binned(left_rows, depth + 1, Some(left_hist)));
        let right = Box::new(self.build_binned(right_rows, depth + 1, Some(right_hist)));
        Node::Split { feature, threshold, left, right }
    }

    fn build(&mut self, rows: Vec<usize>, depth: usize) -> Node {
        if depth >= self.cfg.max_depth
            || rows.len() < 2 * self.cfg.min_samples_leaf
            || self.target.is_pure(&rows)
        {
            return self.target.leaf(&rows);
        }
        let parent_impurity = self.target.weighted_impurity(&rows);
        if parent_impurity <= 1e-12 {
            return self.target.leaf(&rows);
        }

        let d = self.x.cols();
        let mut features: Vec<usize> = (0..d).collect();
        if let Some(k) = self.cfg.feature_subsample {
            features.shuffle(&mut self.rng);
            features.truncate(k.max(1).min(d));
        }

        // Candidate scan. Split positions are boundaries between distinct
        // sorted values, strided to at most max_thresholds. Rather than
        // materializing left/right row sets and recomputing impurity from
        // scratch per candidate (O(n) each), the scan walks the sorted
        // order once: classification keeps incremental class counts (the
        // counts are exact integers, so the Gini floats are bit-identical
        // to the recomputing version), regression keeps a running prefix
        // sum for the left mean (same addition order as before) and only
        // touches each side once per candidate for the SSE.
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut vals: Vec<(f64, usize)> = Vec::with_capacity(rows.len());
        let mut boundaries: Vec<usize> = Vec::new();
        match &self.target {
            Target::Class { y, n_classes } => {
                let mut parent_counts = vec![0usize; *n_classes];
                for &r in &rows {
                    parent_counts[y[r]] += 1;
                }
                let mut left_counts = vec![0usize; *n_classes];
                for &f in &features {
                    if !prepare_candidates(self.x, &rows, f, &mut vals, &mut boundaries) {
                        continue; // constant feature at this node
                    }
                    let stride = (boundaries.len() / self.cfg.max_thresholds).max(1);
                    left_counts.fill(0);
                    let mut pos = 0usize;
                    for &cut in boundaries.iter().step_by(stride) {
                        while pos < cut {
                            left_counts[y[vals[pos].1]] += 1;
                            pos += 1;
                        }
                        if cut < self.cfg.min_samples_leaf
                            || vals.len() - cut < self.cfg.min_samples_leaf
                        {
                            continue;
                        }
                        let child = gini_weighted(&left_counts, cut)
                            + gini_weighted_rest(&parent_counts, &left_counts, vals.len() - cut);
                        let gain = parent_impurity - child;
                        if best.as_ref().is_none_or(|b| gain > b.0) && gain > 1e-12 {
                            let threshold = (vals[cut - 1].0 + vals[cut].0) / 2.0;
                            best = Some((gain, f, threshold));
                        }
                    }
                }
            }
            Target::Reg { y } => {
                for &f in &features {
                    if !prepare_candidates(self.x, &rows, f, &mut vals, &mut boundaries) {
                        continue; // constant feature at this node
                    }
                    let stride = (boundaries.len() / self.cfg.max_thresholds).max(1);
                    let mut pos = 0usize;
                    let mut left_sum = 0.0f64;
                    for &cut in boundaries.iter().step_by(stride) {
                        while pos < cut {
                            left_sum += y[vals[pos].1];
                            pos += 1;
                        }
                        if cut < self.cfg.min_samples_leaf
                            || vals.len() - cut < self.cfg.min_samples_leaf
                        {
                            continue;
                        }
                        let left_mean = left_sum / cut as f64;
                        let mut left_sse = 0.0f64;
                        for &(_, r) in &vals[..cut] {
                            left_sse += (y[r] - left_mean).powi(2);
                        }
                        let mut right_sum = 0.0f64;
                        for &(_, r) in &vals[cut..] {
                            right_sum += y[r];
                        }
                        let right_mean = right_sum / (vals.len() - cut) as f64;
                        let mut right_sse = 0.0f64;
                        for &(_, r) in &vals[cut..] {
                            right_sse += (y[r] - right_mean).powi(2);
                        }
                        let child = left_sse + right_sse;
                        let gain = parent_impurity - child;
                        if best.as_ref().is_none_or(|b| gain > b.0) && gain > 1e-12 {
                            let threshold = (vals[cut - 1].0 + vals[cut].0) / 2.0;
                            best = Some((gain, f, threshold));
                        }
                    }
                }
            }
        }

        let Some((_, feature, threshold)) = best else {
            return self.target.leaf(&rows);
        };
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
            rows.into_iter().partition(|&r| self.x.get(r, feature) <= threshold);
        if left_rows.is_empty() || right_rows.is_empty() {
            // Should not happen given boundary selection; fall back to a leaf
            // out of an abundance of caution.
            let all: Vec<usize> = left_rows.into_iter().chain(right_rows).collect();
            return self.target.leaf(&all);
        }
        let left = Box::new(self.build(left_rows, depth + 1));
        let right = Box::new(self.build(right_rows, depth + 1));
        Node::Split { feature, threshold, left, right }
    }
}

fn descend<'n>(mut node: &'n Node, row: &[f64]) -> &'n Node {
    loop {
        match node {
            Node::Split { feature, threshold, left, right } => {
                node = if row[*feature] <= *threshold { left } else { right };
            }
            _ => return node,
        }
    }
}

/// Decision-tree classifier.
#[derive(Debug, Clone, Default)]
pub struct DecisionTreeClassifier {
    pub config: TreeConfig,
}

pub(crate) struct TreeClassifierModel {
    root: Node,
    n_classes: usize,
}

impl Classifier for DecisionTreeClassifier {
    fn name(&self) -> &'static str {
        "decision_tree"
    }

    fn fit(&self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<Box<dyn ClassifierModel>> {
        validate_classification(x, y, n_classes)?;
        Ok(Box::new(fit_class_tree(x, y, n_classes, &self.config)))
    }
}

/// Build the quantized view a config asks for (`None` in exact mode).
/// Ensemble fits call this once and share the result across every tree.
pub(crate) fn binned_for(x: &Matrix, cfg: &TreeConfig) -> Option<BinnedDataset> {
    match cfg.split_mode {
        SplitMode::Binned { bins } => Some(BinnedDataset::build(x, bins)),
        SplitMode::Exact => None,
    }
}

/// Flush the per-fit histogram counters into the trace layer.
fn flush_hist_counters(builder: &Builder) {
    if builder.hist_builds > 0 {
        catdb_trace::add_counter("ml.hist_builds", builder.hist_builds as f64);
    }
    if builder.hist_subtractions > 0 {
        catdb_trace::add_counter("ml.hist_subtractions", builder.hist_subtractions as f64);
    }
}

/// Internal fit that skips validation (forests validate once up front).
pub(crate) fn fit_class_tree(
    x: &Matrix,
    y: &[usize],
    n_classes: usize,
    cfg: &TreeConfig,
) -> TreeClassifierModel {
    let local = binned_for(x, cfg);
    fit_class_tree_on(x, y, (0..x.rows()).collect(), n_classes, cfg, local.as_ref())
}

/// Internal fit over a row subset (for bagging). `binned` must be the
/// quantization of `x` when the config selects binned mode; it is ignored
/// in exact mode.
pub(crate) fn fit_class_tree_on(
    x: &Matrix,
    y: &[usize],
    rows: Vec<usize>,
    n_classes: usize,
    cfg: &TreeConfig,
    binned: Option<&BinnedDataset>,
) -> TreeClassifierModel {
    let _span = catdb_trace::span("tree_fit");
    let binned = match cfg.split_mode {
        SplitMode::Binned { .. } => binned,
        SplitMode::Exact => None,
    };
    let mut builder = Builder {
        x,
        target: Target::Class { y, n_classes },
        cfg,
        rng: StdRng::seed_from_u64(cfg.seed),
        binned,
        hist_builds: 0,
        hist_subtractions: 0,
    };
    let root = builder.fit(rows);
    flush_hist_counters(&builder);
    TreeClassifierModel { root, n_classes }
}

impl ClassifierModel for TreeClassifierModel {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<Vec<f64>>> {
        check_finite(x, "prediction features")?;
        Ok((0..x.rows())
            .map(|r| match descend(&self.root, x.row(r)) {
                Node::ClassLeaf(p) => p.clone(),
                _ => vec![1.0 / self.n_classes as f64; self.n_classes],
            })
            .collect())
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// Decision-tree regressor.
#[derive(Debug, Clone, Default)]
pub struct DecisionTreeRegressor {
    pub config: TreeConfig,
}

pub(crate) struct TreeRegressorModel {
    root: Node,
}

impl Regressor for DecisionTreeRegressor {
    fn name(&self) -> &'static str {
        "decision_tree"
    }

    fn fit(&self, x: &Matrix, y: &[f64]) -> Result<Box<dyn RegressorModel>> {
        validate_regression(x, y)?;
        let local = binned_for(x, &self.config);
        Ok(Box::new(fit_reg_tree(x, y, (0..x.rows()).collect(), &self.config, local.as_ref())))
    }
}

/// Internal regression-tree fit over a row subset. `binned` must be the
/// quantization of `x` when the config selects binned mode.
pub(crate) fn fit_reg_tree(
    x: &Matrix,
    y: &[f64],
    rows: Vec<usize>,
    cfg: &TreeConfig,
    binned: Option<&BinnedDataset>,
) -> TreeRegressorModel {
    let _span = catdb_trace::span("tree_fit");
    let binned = match cfg.split_mode {
        SplitMode::Binned { .. } => binned,
        SplitMode::Exact => None,
    };
    let mut builder = Builder {
        x,
        target: Target::Reg { y },
        cfg,
        rng: StdRng::seed_from_u64(cfg.seed),
        binned,
        hist_builds: 0,
        hist_subtractions: 0,
    };
    let root = builder.fit(rows);
    flush_hist_counters(&builder);
    TreeRegressorModel { root }
}

impl RegressorModel for TreeRegressorModel {
    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        check_finite(x, "prediction features")?;
        Ok((0..x.rows())
            .map(|r| match descend(&self.root, x.row(r)) {
                Node::RegLeaf(v) => *v,
                _ => 0.0,
            })
            .collect())
    }
}

impl TreeRegressorModel {
    /// Prediction without the finite check (hot path inside boosting, where
    /// the ensemble validated inputs once).
    pub(crate) fn predict_unchecked(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows())
            .map(|r| match descend(&self.root, x.row(r)) {
                Node::RegLeaf(v) => *v,
                _ => 0.0,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, r2};

    fn xor_data() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                let a = i as f64 / 8.0;
                let b = j as f64 / 8.0;
                rows.push(vec![a, b]);
                y.push(((a > 0.5) ^ (b > 0.5)) as usize);
            }
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn tree_learns_xor() {
        let (x, y) = xor_data();
        let model = DecisionTreeClassifier::default().fit(&x, &y, 2).unwrap();
        let pred = model.predict(&x).unwrap();
        assert!(accuracy(&y, &pred) > 0.95);
    }

    #[test]
    fn depth_one_tree_cannot_learn_xor() {
        let (x, y) = xor_data();
        let cfg = TreeConfig { max_depth: 1, ..Default::default() };
        let model = DecisionTreeClassifier { config: cfg }.fit(&x, &y, 2).unwrap();
        let pred = model.predict(&x).unwrap();
        let acc = accuracy(&y, &pred);
        assert!(acc < 0.8, "xor should not be separable at depth 1, got {acc}");
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let x = Matrix::from_rows(&rows);
        let model = DecisionTreeRegressor::default().fit(&x, &y).unwrap();
        let pred = model.predict(&x).unwrap();
        assert!(r2(&y, &pred) > 0.99);
    }

    #[test]
    fn probabilities_reflect_leaf_distribution() {
        // One feature, mixed labels on the left.
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![0.0], vec![10.0]]);
        let y = vec![0, 0, 1, 1];
        let cfg = TreeConfig { max_depth: 1, min_samples_leaf: 1, ..Default::default() };
        let model = DecisionTreeClassifier { config: cfg }.fit(&x, &y, 2).unwrap();
        let proba = model.predict_proba(&x).unwrap();
        assert!((proba[0][0] - 2.0 / 3.0).abs() < 1e-9);
        assert!((proba[3][1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_features_yield_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]);
        let y = vec![0, 1, 0, 1];
        let model = DecisionTreeClassifier::default().fit(&x, &y, 2).unwrap();
        let proba = model.predict_proba(&x).unwrap();
        assert!((proba[0][0] - 0.5).abs() < 1e-9);
    }
}
